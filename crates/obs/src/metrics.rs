//! The unified metrics registry: counter/gauge/histogram handles plus
//! Prometheus text rendering.
//!
//! Two registration styles cover the two shapes of state the engine has:
//!
//! * **owned handles** ([`Registry::counter`] / [`Registry::gauge`] /
//!   [`Registry::histogram`]) for new counters that live *in* the registry —
//!   incrementing is one relaxed atomic op;
//! * **collectors** ([`Registry::counter_fn`] / [`Registry::gauge_fn`]) for
//!   the pre-existing stat families (pool, index manager, IVM, embedding
//!   caches, frame cache): a closure reads the source at scrape time, so the
//!   hot paths that maintain those stats pay nothing new.
//!
//! [`Registry::value`] looks a metric up by name, which is how the serving
//! layer's legacy `STATS` line becomes a *view* over the registry instead of
//! bespoke plumbing.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle.  Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (register it via [`Registry::counter`]
    /// or use it stand-alone).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.  Cloning shares the
/// cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave: 4 fraction bits, so each bucket
/// spans a ratio of `2^(1/16) ≈ 4.4%` and values below 32 are exact.
const SUB_BUCKETS: usize = 16;
/// Bucket 0 holds zeros; the rest cover the full `u64` range.
const BUCKETS: usize = 64 * SUB_BUCKETS + 1;

/// Bucket index of a sample: 0 for zero, else `floor(log2 v)` octaves of
/// [`SUB_BUCKETS`] refined by the next four mantissa bits.  Monotone in `v`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let exp = 63 - v.leading_zeros() as usize;
    let frac = if exp >= 4 {
        ((v >> (exp - 4)) & 0xF) as usize
    } else {
        ((v << (4 - exp)) & 0xF) as usize
    };
    exp * SUB_BUCKETS + frac + 1
}

/// Smallest sample value mapping into bucket `idx` — the representative a
/// quantile lookup returns (so small integer samples round-trip exactly).
fn bucket_lower(idx: usize) -> u64 {
    if idx == 0 {
        return 0;
    }
    let exp = (idx - 1) / SUB_BUCKETS;
    let frac = (idx - 1) % SUB_BUCKETS;
    let lower = ((16 + frac) as u128) << exp >> 4;
    lower.min(u64::MAX as u128) as u64
}

/// Largest sample value mapping into bucket `idx` (inclusive) — what the
/// Prometheus `le` label of the bucket reports.  Below 16 several adjacent
/// sub-bucket indices collapse to the same lower bound (only one of them is
/// reachable), so the upper bound is found by scanning to the next strictly
/// greater lower bound rather than assuming `idx + 1` differs.
fn bucket_upper(idx: usize) -> u64 {
    let lower = bucket_lower(idx);
    let mut next = idx + 1;
    while next < BUCKETS && bucket_lower(next) <= lower {
        next += 1;
    }
    if next >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(next) - 1
    }
}

/// A fixed log-bucketed, mergeable histogram with bounded memory
/// (`1025 × u64` buckets) and lock-free recording.  Cloning shares the
/// cells.  Percentiles are *exact-enough*: a returned quantile is the lower
/// bound of the bucket the nearest-rank sample fell into, at most one
/// bucket width (≈4.4%) below the true sample, and exact for samples < 32.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("bucket count is fixed"));
        Self {
            inner: Arc::new(HistogramInner {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample — tracked exactly, outside the buckets.
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (nearest-rank over the buckets), clamped to
    /// [`Histogram::max`].  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.inner.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_lower(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Folds another histogram's buckets into this one (mergeability is
    /// what lets per-worker recordings aggregate without contention).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner.count.fetch_add(other.count(), Ordering::Relaxed);
        self.inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.inner.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Drops every recorded sample (load generators reset between phases).
    pub fn reset(&self) {
        for bucket in self.inner.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner.sum.store(0, Ordering::Relaxed);
        self.inner.max.store(0, Ordering::Relaxed);
    }

    /// Non-empty `(upper_bound, cumulative_count)` pairs, ascending — the
    /// Prometheus `_bucket{le=…}` series.
    fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (idx, bucket) in self.inner.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                out.push((bucket_upper(idx), cumulative));
            }
        }
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max())
            .finish()
    }
}

/// A scrape-time collector closure.
type ValueFn = Arc<dyn Fn() -> u64 + Send + Sync>;

enum Source {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    CounterFn(ValueFn),
    GaugeFn(ValueFn),
}

struct Metric {
    name: String,
    help: String,
    source: Source,
}

#[derive(Default)]
struct RegistryInner {
    metrics: Vec<Metric>,
    by_name: HashMap<String, usize>,
}

/// A named collection of metrics that renders as one Prometheus text
/// exposition.  Registration is idempotent by name (the first registration
/// wins and later calls return the existing handle), so handles are
/// registered once per process — or once per server: the serving layer
/// builds one registry per server instance so concurrently running test
/// servers stay isolated.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, source: Source) -> Option<Source> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&idx) = inner.by_name.get(name) {
            return Some(match &inner.metrics[idx].source {
                Source::Counter(c) => Source::Counter(c.clone()),
                Source::Gauge(g) => Source::Gauge(g.clone()),
                Source::Histogram(h) => Source::Histogram(h.clone()),
                Source::CounterFn(f) => Source::CounterFn(f.clone()),
                Source::GaugeFn(f) => Source::GaugeFn(f.clone()),
            });
        }
        let idx = inner.metrics.len();
        inner.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            source,
        });
        inner.by_name.insert(name.to_string(), idx);
        None
    }

    /// Registers (or retrieves) a counter by name.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let fresh = Counter::new();
        match self.register(name, help, Source::Counter(fresh.clone())) {
            Some(Source::Counter(existing)) => existing,
            _ => fresh,
        }
    }

    /// Registers (or retrieves) a gauge by name.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let fresh = Gauge::new();
        match self.register(name, help, Source::Gauge(fresh.clone())) {
            Some(Source::Gauge(existing)) => existing,
            _ => fresh,
        }
    }

    /// Registers (or retrieves) a histogram by name.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let fresh = Histogram::new();
        match self.register(name, help, Source::Histogram(fresh.clone())) {
            Some(Source::Histogram(existing)) => existing,
            _ => fresh,
        }
    }

    /// Registers an existing histogram handle under `name` (the latency
    /// recorder owns its histogram but still scrapes through the registry).
    pub fn histogram_handle(&self, name: &str, help: &str, histogram: Histogram) {
        self.register(name, help, Source::Histogram(histogram));
    }

    /// Registers a counter whose value is read from `f` at scrape time —
    /// zero cost on the path that maintains the underlying stat.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(name, help, Source::CounterFn(Arc::new(f)));
    }

    /// Registers a gauge whose value is read from `f` at scrape time.
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(name, help, Source::GaugeFn(Arc::new(f)));
    }

    /// The current value of a metric by name (histograms report their
    /// sample count).  This lookup is what re-sources legacy stat lines
    /// from the registry.
    pub fn value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let idx = *inner.by_name.get(name)?;
        Some(match &inner.metrics[idx].source {
            Source::Counter(c) => c.get(),
            Source::Gauge(g) => g.get(),
            Source::Histogram(h) => h.count(),
            Source::CounterFn(f) | Source::GaugeFn(f) => f(),
        })
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, in registration order.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for metric in &inner.metrics {
            let name = &metric.name;
            let _ = writeln!(out, "# HELP {name} {}", metric.help);
            match &metric.source {
                Source::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Source::CounterFn(f) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", f());
                }
                Source::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Source::GaugeFn(f) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", f());
                }
                Source::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    for (upper, cumulative) in h.cumulative_buckets() {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry")
            .field("metrics", &inner.metrics.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_small_values_are_exact() {
        let mut last = 0;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone at {v}");
            last = idx;
            assert!(
                bucket_lower(idx) <= v && v <= bucket_upper(idx),
                "v={v} outside bucket [{}, {}]",
                bucket_lower(idx),
                bucket_upper(idx)
            );
        }
        for v in 0..32u64 {
            assert_eq!(bucket_lower(bucket_index(v)), v, "small values are exact");
        }
        // the top of the range must land in the last bucket, not overflow
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_exact_enough() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50);
        // within one bucket width (≈4.4%) below the exact nearest-rank value
        let close =
            |got: u64, exact: u64| got <= exact && (got as f64) >= (exact as f64) * 0.95 - 1.0;
        assert!(close(h.quantile(0.50), 50), "p50 {}", h.quantile(0.50));
        assert!(close(h.quantile(0.95), 95), "p95 {}", h.quantile(0.95));
        assert!(close(h.quantile(0.99), 99), "p99 {}", h.quantile(0.99));
        h.reset();
        assert_eq!((h.count(), h.quantile(0.5), h.max()), (0, 0, 0));
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 2, 3] {
            a.observe(v);
        }
        for v in [1000u64, 2000] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 2000);
        assert_eq!(a.sum(), 3006);
    }

    #[test]
    fn parallel_increments_sum_exactly() {
        let registry = std::sync::Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let registry = registry.clone();
            handles.push(std::thread::spawn(move || {
                // every thread re-registers by name and gets the same cell
                let counter = registry.counter("test_total", "concurrency test");
                let histogram = registry.histogram("test_us", "concurrency test");
                for i in 0..10_000u64 {
                    counter.inc();
                    histogram.observe(i % 97);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(registry.value("test_total"), Some(80_000));
        assert_eq!(registry.value("test_us"), Some(80_000));
    }

    #[test]
    fn renders_prometheus_text() {
        let registry = Registry::new();
        let c = registry.counter("cej_things_total", "things that happened");
        c.add(3);
        registry.gauge_fn("cej_depth", "queue depth", || 7);
        let h = registry.histogram("cej_wait_us", "wait time");
        h.observe(10);
        h.observe(1000);
        let text = registry.render();
        assert!(text.contains("# TYPE cej_things_total counter"), "{text}");
        assert!(text.contains("cej_things_total 3"), "{text}");
        assert!(text.contains("# TYPE cej_depth gauge"), "{text}");
        assert!(text.contains("cej_depth 7"), "{text}");
        assert!(text.contains("# TYPE cej_wait_us histogram"), "{text}");
        assert!(text.contains("cej_wait_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("cej_wait_us_sum 1010"), "{text}");
        assert!(text.contains("cej_wait_us_count 2"), "{text}");
    }
}
