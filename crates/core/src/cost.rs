//! The abstract cost model of Section IV.
//!
//! The paper expresses operator costs in terms of four relative parameters:
//! `A` (per-tuple data access), `M` (per-tuple model invocation), `C`
//! (per-pair similarity computation), and `I_probe` (per-probe index
//! traversal).  The formulas below are the paper's equations verbatim:
//!
//! * E-Selection:            `|R| · (A + M + C)`
//! * E-NL Join (naive):      `|R| · |S| · (A + M + C)`
//! * E-NLJ + prefetch:       `|R| · |S| · (A + C) + (|R| + |S|) · M`
//! * E-Index Join:           `|R| · I_probe(S) · (A + C)`
//!
//! Costs are unitless; what matters for optimisation decisions is their
//! *ratios*, which is why [`CostParameters`] is expressed relative to `A = 1`.

use serde::{Deserialize, Serialize};

/// Relative cost parameters (normalised to `access_cost = 1.0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParameters {
    /// Per-tuple data access cost `A`.
    pub access_cost: f64,
    /// Per-tuple model invocation cost `M` (typically ≫ `A`).
    pub model_cost: f64,
    /// Per-pair similarity computation cost `C`; scales with dimensionality.
    pub compute_cost: f64,
    /// Per-probe index traversal cost `I_probe`, expressed as the equivalent
    /// number of per-pair computations one probe costs (graph traversal +
    /// random access, amortised).
    pub index_probe_cost: f64,
}

impl Default for CostParameters {
    fn default() -> Self {
        // Defaults calibrated to the relative magnitudes discussed in the
        // paper: model access is orders of magnitude more expensive than a
        // single vector comparison, and one HNSW probe costs the equivalent
        // of tens of thousands of *scan-side* comparisons because the scan
        // side runs as cache-friendly blocked GEMM while the probe performs
        // `ef · log(|S|)` random accesses.  The value is chosen so the
        // advisor's top-1 crossover lands in the paper's 20-30 % selectivity
        // band for the 10k × 1M workload of Figure 15.
        Self {
            access_cost: 1.0,
            model_cost: 1_000.0,
            compute_cost: 4.0,
            index_probe_cost: 17_000.0,
        }
    }
}

impl CostParameters {
    /// Scales the per-pair compute cost with the embedding dimensionality
    /// (the `C` term grows linearly in `d`).
    pub fn with_dimension(mut self, dim: usize) -> Self {
        self.compute_cost = (dim as f64 / 25.0).max(0.1);
        self
    }
}

/// The closed-form cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostModel {
    /// The relative cost parameters.
    pub params: CostParameters,
}

impl CostModel {
    /// Creates a cost model with explicit parameters.
    pub fn new(params: CostParameters) -> Self {
        Self { params }
    }

    /// Cost of a context-enhanced selection over `n` tuples
    /// (`|R| · (A + M + C)`).
    pub fn e_selection(&self, n: usize) -> f64 {
        n as f64 * (self.params.access_cost + self.params.model_cost + self.params.compute_cost)
    }

    /// Cost of the naive E-NLJ (`|R| · |S| · (A + M + C)`): the model is
    /// invoked for every *pair*.
    pub fn e_nlj_naive(&self, r: usize, s: usize) -> f64 {
        (r as f64)
            * (s as f64)
            * (self.params.access_cost + self.params.model_cost + self.params.compute_cost)
    }

    /// Cost of the prefetch-optimised E-NLJ
    /// (`|R| · |S| · (A + C) + (|R| + |S|) · M`).
    pub fn e_nlj_prefetch(&self, r: usize, s: usize) -> f64 {
        (r as f64) * (s as f64) * (self.params.access_cost + self.params.compute_cost)
            + (r + s) as f64 * self.params.model_cost
    }

    /// Cost of the index join (`|R| · I_probe(S) · (A + C)`), where the probe
    /// cost grows logarithmically with the indexed cardinality.  Embedding
    /// the probe side still costs `|R| · M`.
    pub fn e_index_join(&self, r: usize, s: usize) -> f64 {
        let probe = self.params.index_probe_cost * (1.0 + (s.max(2) as f64).ln());
        (r as f64) * probe * (self.params.access_cost + self.params.compute_cost)
            + r as f64 * self.params.model_cost
    }

    /// The model-invocation *count* of the naive join (`|R| · |S|`) — used by
    /// tests to validate operators against the model, independent of the
    /// relative cost constants.
    pub fn naive_model_calls(r: usize, s: usize) -> u64 {
        (r as u64) * (s as u64)
    }

    /// The model-invocation count of every prefetch-based operator
    /// (`|R| + |S|`).
    pub fn prefetch_model_calls(r: usize, s: usize) -> u64 {
        (r + s) as u64
    }

    /// Ratio of naive to prefetch cost — the speed-up the logical
    /// optimisation alone is expected to deliver (orders of magnitude for
    /// model-dominated workloads, per Figure 8).
    pub fn prefetch_speedup(&self, r: usize, s: usize) -> f64 {
        self.e_nlj_naive(r, s) / self.e_nlj_prefetch(r, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_are_model_dominated() {
        let p = CostParameters::default();
        assert!(p.model_cost > 100.0 * p.access_cost);
        assert!(p.model_cost > p.compute_cost);
    }

    #[test]
    fn selection_cost_is_linear() {
        let m = CostModel::default();
        assert!((m.e_selection(200) - 2.0 * m.e_selection(100)).abs() < 1e-9);
    }

    #[test]
    fn naive_join_cost_is_quadratic_in_inputs() {
        let m = CostModel::default();
        let base = m.e_nlj_naive(100, 100);
        let doubled = m.e_nlj_naive(200, 200);
        assert!((doubled / base - 4.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_is_never_worse_than_naive_beyond_trivial_inputs() {
        // For any inputs where |R|·|S| >= |R| + |S| (i.e. everything except
        // degenerate single-tuple relations) the prefetch formulation cannot
        // lose, because it strictly reduces the number of model invocations.
        let m = CostModel::default();
        for (r, s) in [(2, 2), (10, 10), (100, 1000), (1000, 10), (7, 3)] {
            assert!(m.e_nlj_prefetch(r, s) <= m.e_nlj_naive(r, s) + 1e-9);
        }
    }

    #[test]
    fn prefetch_speedup_grows_with_input_size() {
        let m = CostModel::default();
        assert!(m.prefetch_speedup(1000, 1000) > m.prefetch_speedup(10, 10));
        // with model-dominated costs the speed-up is orders of magnitude
        assert!(m.prefetch_speedup(1000, 1000) > 50.0);
    }

    #[test]
    fn model_call_counts() {
        assert_eq!(CostModel::naive_model_calls(10, 20), 200);
        assert_eq!(CostModel::prefetch_model_calls(10, 20), 30);
    }

    #[test]
    fn index_join_cheaper_for_selective_small_probe_sets() {
        let m = CostModel::default();
        // few probes against a huge indexed relation: probing wins
        let r = 10;
        let s = 1_000_000;
        assert!(m.e_index_join(r, s) < m.e_nlj_prefetch(r, s));
        // many probes against a small relation: scanning wins
        let r = 100_000;
        let s = 1_000;
        assert!(m.e_index_join(r, s) > m.e_nlj_prefetch(r, s));
    }

    #[test]
    fn dimension_scaling_affects_compute_cost() {
        let low = CostParameters::default().with_dimension(25);
        let high = CostParameters::default().with_dimension(400);
        assert!(high.compute_cost > low.compute_cost);
        let tiny = CostParameters::default().with_dimension(1);
        assert!(tiny.compute_cost > 0.0);
    }
}
