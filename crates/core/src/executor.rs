//! Execution of [`PhysicalPlan`] trees against session-owned shared state.
//!
//! The executor is deliberately dumb: every decision (operator choice, access
//! path, persistent-vs-ephemeral index) was already made by the
//! [`crate::planner::Planner`] and is recorded in the plan, so executing the
//! same [`PhysicalPlan`] twice performs the same physical work — minus
//! whatever the shared state already holds:
//!
//! * [`EmbeddingCachePool`] — one counting [`CachedEmbedder`] per model,
//!   owned by the session and shared by every query, so repeated executions
//!   re-pay zero model calls for already-embedded strings;
//! * [`crate::index_manager::IndexManager`] — persistent HNSW indexes keyed
//!   by `(table, column, model, params)`, so warm index-join runs perform no
//!   HNSW construction at all.
//!
//! Per-run statistics ([`RunStats`]) are reported as *deltas* over the shared
//! counters, so `ExecutionReport::embedding_stats` keeps its familiar
//! meaning: model calls paid by *this* execution.

use cej_embedding::{CachedEmbedder, Embedder, EmbeddingStats};
use cej_relational::{eval::evaluate_predicate, physical::ModelRegistry, Catalog};
use cej_storage::{Column, Field, Schema, SelectionBitmap, Table};
use cej_vector::Vector;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use crate::access_path::AccessPath;
use crate::batch_exec::ExecMode;
use crate::error::CoreError;
use crate::join::embed_all;
use crate::join::hash_join::{rename_columns, HashSide};
use crate::join::index_join::IndexJoin;
use crate::join::naive_nlj::NaiveNlJoin;
use crate::join::prefetch_nlj::PrefetchNlJoin;
use crate::join::tensor_join::TensorJoin;
use crate::physical_plan::{InnerInput, JoinNode, PhysicalJoinOp, PhysicalPlan};
use crate::result::{JoinResult, JoinStats};
use crate::Result;

/// Adapter so a shared `Arc<dyn Embedder>` can be wrapped by
/// [`CachedEmbedder`] (which needs an owned `Embedder`).
pub struct SharedEmbedder(Arc<dyn Embedder>);

impl Embedder for SharedEmbedder {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn embed(&self, input: &str) -> Vector {
        self.0.embed(input)
    }
}

/// The concrete cache type the pool hands out: a counting, memoising wrapper
/// around a registry model.
pub type SharedCache = CachedEmbedder<SharedEmbedder>;

/// A per-run counting view over a shared [`SharedCache`].
///
/// Join operators and the `Embed` node receive this instead of the raw
/// cache: every request still flows through (and fills) the shared memo,
/// but the hit/miss tally lands in run-local counters.  Under concurrent
/// executions on one shared session this is what keeps each
/// [`RunStats::embedding_stats`] *isolated* — diffing the shared cache's
/// global counters around a run would blame this run for calls made by
/// whichever queries happened to overlap with it.
pub struct RunEmbedder<'r> {
    cache: &'r SharedCache,
    model_calls: std::sync::atomic::AtomicU64,
    cache_hits: std::sync::atomic::AtomicU64,
}

impl<'r> RunEmbedder<'r> {
    /// Wraps a shared cache with fresh run-local counters.
    pub fn new(cache: &'r SharedCache) -> Self {
        Self {
            cache,
            model_calls: std::sync::atomic::AtomicU64::new(0),
            cache_hits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The calls this run paid and the hits it was served so far.
    pub fn stats(&self) -> EmbeddingStats {
        use std::sync::atomic::Ordering;
        EmbeddingStats {
            model_calls: self.model_calls.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }
}

impl Embedder for RunEmbedder<'_> {
    fn dim(&self) -> usize {
        self.cache.dim()
    }

    fn embed(&self, input: &str) -> Vector {
        use std::sync::atomic::Ordering;
        let (vector, paid) = self.cache.embed_counted(input);
        if paid {
            self.model_calls.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        vector
    }

    fn embed_batch(&self, inputs: &[String]) -> cej_vector::Matrix {
        use std::sync::atomic::Ordering;
        let (matrix, delta) = self.cache.embed_batch_counted(inputs);
        self.model_calls
            .fetch_add(delta.model_calls, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(delta.cache_hits, Ordering::Relaxed);
        matrix
    }
}

/// Session-owned pool of per-model embedding caches.
///
/// The cache for a model survives across queries (and is shared with every
/// prepared query), which is what makes warm executions free of model calls;
/// it is dropped when the model is re-registered.
#[derive(Default)]
pub struct EmbeddingCachePool {
    caches: RwLock<HashMap<String, Arc<SharedCache>>>,
}

impl std::fmt::Debug for EmbeddingCachePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingCachePool")
            .field("models", &self.caches.read().keys().len())
            .finish()
    }
}

impl EmbeddingCachePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared cache for `model`, creating it from the registry on first
    /// use.
    ///
    /// # Errors
    /// Returns [`cej_relational::RelationalError::UnknownModel`] (wrapped)
    /// when the registry has no such model.
    pub fn cache(&self, model: &str, registry: &ModelRegistry) -> Result<Arc<SharedCache>> {
        if let Some(cache) = self.caches.read().get(model) {
            return Ok(cache.clone());
        }
        let resolved = registry.model(model).map_err(CoreError::from)?;
        let cache = Arc::new(CachedEmbedder::new(SharedEmbedder(resolved)));
        let mut write = self.caches.write();
        Ok(write.entry(model.to_string()).or_insert(cache).clone())
    }

    /// Drops the cache of one model (used when the model is re-registered,
    /// because memoised vectors came from the old model).
    pub fn invalidate(&self, model: &str) {
        self.caches.write().remove(model);
    }

    /// Drops every cache.
    pub fn clear(&self) {
        self.caches.write().clear();
    }

    /// Aggregate counters over every per-model cache.
    pub fn stats(&self) -> EmbeddingStats {
        let read = self.caches.read();
        let mut total = EmbeddingStats::default();
        for cache in read.values() {
            let s = cache.stats();
            total.model_calls += s.model_calls;
            total.cache_hits += s.cache_hits;
        }
        total
    }

    /// Total number of memoised embeddings across all models.
    pub fn cached_entries(&self) -> usize {
        self.caches
            .read()
            .values()
            .map(|c| c.cached_entries())
            .sum()
    }
}

/// Everything a [`PhysicalPlan`] needs to execute: the catalog, the model
/// registry, and the session-owned shared caches.  All references — a
/// context is cheap to construct per run and holds no per-query state.
pub struct ExecContext<'s> {
    /// Table catalog to scan from.
    pub catalog: &'s Catalog,
    /// Model registry plans resolve model names against.
    pub registry: &'s ModelRegistry,
    /// Shared per-model embedding caches.
    pub embeddings: &'s EmbeddingCachePool,
    /// Shared persistent HNSW indexes.
    pub indexes: &'s crate::index_manager::IndexManager,
    /// Worker-pool budget for intra-query parallelism (morsel-driven batch
    /// pipelines, partitioned hash joins, parallel GEMM).  Defaults to the
    /// process-wide `CEJ_THREADS` budget; tests override it to sweep thread
    /// counts in-process.
    pub pool: cej_exec::ExecPool,
}

/// Statistics of one plan execution (deltas over the shared caches).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Operator-level statistics of the (outermost) join.
    pub join_stats: JoinStats,
    /// Model access performed by this run (run-local counters, exact even
    /// under concurrent executions on a shared session).
    pub embedding_stats: EmbeddingStats,
    /// Worker-pool activity across this run: tasks/steals/injections are
    /// process-wide deltas over the persistent scheduler (concurrent runs
    /// overlap in them — they are a *contention* signal, not an attribution),
    /// `queue_depth`/`workers` are sampled at run end.
    pub scheduler: cej_exec::PoolMetrics,
    /// The access path executed (None when the plan had no join).
    pub access_path: Option<AccessPath>,
    /// Number of joined pairs of the (outermost) join.
    pub matched_pairs: usize,
    /// HNSW indexes built during this run (cold index joins).
    pub index_builds: u64,
    /// Persistent HNSW indexes reused during this run (warm index joins).
    pub index_reuses: u64,
    /// Persistent HNSW indexes evicted by the memory budget during this run.
    pub index_evictions: u64,
}

/// Per-operator execution metrics, indexed by the operator's pre-order slot
/// (the order `explain_analyze` renders in).  All three vectors share that
/// slot space.
#[derive(Debug, Clone, Default)]
pub(crate) struct OpMetrics {
    /// Actual output rows (selected lanes, never batches).
    pub rows: Vec<u64>,
    /// Inclusive wall time in microseconds: an operator's time includes its
    /// inputs'.  Operators fused into one morsel-parallel pipeline all
    /// report the pipeline's wall-clock time (they execute interleaved per
    /// morsel, so per-stage attribution would report summed CPU time, not
    /// elapsed time).
    pub micros: Vec<u64>,
    /// Morsels (selection-vector batches) the operator processed — the
    /// parallelism-granularity counter: `1` per operator under the row
    /// executor, `ceil(rows / batch_rows)` under the batch executor.
    pub morsels: Vec<u64>,
}

impl OpMetrics {
    /// Metrics sized for `operators` pre-order slots, all zero.
    pub fn with_slots(operators: usize) -> Self {
        Self {
            rows: vec![0; operators],
            micros: vec![0; operators],
            morsels: vec![0; operators],
        }
    }

    /// Claims the next pre-order slot (row-executor protocol: claim before
    /// recursing into inputs).
    pub fn claim(&mut self) -> usize {
        let slot = self.rows.len();
        self.rows.push(0);
        self.micros.push(0);
        self.morsels.push(0);
        slot
    }

    /// Adds inclusive wall time to a slot.
    pub fn add_time(&mut self, slot: usize, elapsed: std::time::Duration) {
        self.micros[slot] += elapsed.as_micros() as u64;
    }
}

/// The outcome of executing a physical plan.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The materialised output table.
    pub table: Table,
    /// Execution statistics.
    pub stats: RunStats,
    /// Actual output rows of every operator, in the pre-order the plan
    /// renders in — the "actual" side of
    /// [`PhysicalPlan::explain_analyze`].  Length equals
    /// [`PhysicalPlan::operator_count`].
    pub operator_rows: Vec<u64>,
    /// Inclusive per-operator wall time in microseconds, same slot order as
    /// `operator_rows`.  Timing, not semantics: excluded from byte-identity
    /// contracts.
    pub operator_micros: Vec<u64>,
    /// Morsels processed per operator, same slot order — how finely the
    /// operator's work was split for the worker pool.
    pub operator_morsels: Vec<u64>,
}

impl PhysicalPlan {
    /// Executes the plan against the given context, recording the actual
    /// output rows of every operator alongside the usual run statistics.
    ///
    /// Runs under the default [`ExecMode`] — the vectorized batch executor
    /// (`CEJ_BATCH_ROWS` tunes the batch size).  Batch and row execution are
    /// byte-identical; use [`PhysicalPlan::execute_with`] to pick explicitly.
    ///
    /// # Errors
    /// Propagates catalog, evaluation, embedding, index, and join errors.
    pub fn execute(&self, ctx: &ExecContext<'_>) -> Result<ExecOutcome> {
        self.execute_with(ctx, ExecMode::default())
    }

    /// Executes the plan under an explicit [`ExecMode`].
    ///
    /// # Errors
    /// Propagates catalog, evaluation, embedding, index, and join errors.
    pub fn execute_with(&self, ctx: &ExecContext<'_>, mode: ExecMode) -> Result<ExecOutcome> {
        match mode {
            ExecMode::Row => self.execute_rows(ctx),
            ExecMode::Batch { batch_rows } => {
                crate::batch_exec::execute_batched(self, ctx, batch_rows)
            }
        }
    }

    /// The materialize-everything row executor (the reference
    /// implementation the batch executor is checked against).
    fn execute_rows(&self, ctx: &ExecContext<'_>) -> Result<ExecOutcome> {
        let mut stats = RunStats::default();
        let pool_before = cej_exec::ExecPool::metrics();
        let mut metrics = OpMetrics::default();
        let table = execute_node(self, ctx, &mut stats, &mut metrics)?;
        stats.scheduler = cej_exec::ExecPool::metrics().delta_since(&pool_before);
        Ok(ExecOutcome {
            table,
            stats,
            operator_rows: metrics.rows,
            operator_micros: metrics.micros,
            operator_morsels: metrics.morsels,
        })
    }
}

fn execute_node(
    plan: &PhysicalPlan,
    ctx: &ExecContext<'_>,
    stats: &mut RunStats,
    metrics: &mut OpMetrics,
) -> Result<Table> {
    // Claim this operator's pre-order slot before recursing, so the recorded
    // vector lines up with the order `explain_analyze` renders operators in.
    let slot = metrics.claim();
    let start = std::time::Instant::now();
    let table = match plan {
        PhysicalPlan::TableScan { table, .. } => ctx
            .catalog
            .table(table)
            .map_err(CoreError::from)?
            .as_ref()
            .clone(),
        PhysicalPlan::Filter {
            predicate, input, ..
        } => {
            let table = execute_node(input, ctx, stats, metrics)?;
            let selection = evaluate_predicate(predicate, &table).map_err(CoreError::from)?;
            table.filter(&selection).map_err(CoreError::from)?
        }
        PhysicalPlan::Project { columns, input, .. } => {
            let table = execute_node(input, ctx, stats, metrics)?;
            let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
            table.project(&names).map_err(CoreError::from)?
        }
        PhysicalPlan::Embed { spec, input, .. } => {
            let table = execute_node(input, ctx, stats, metrics)?;
            // Route `E_µ` through the shared per-model cache (not the raw
            // registry model) so warm prepared runs re-pay nothing, tallying
            // through a run-local counter so concurrent executions on the
            // shared session report isolated stats.
            let cache = ctx.embeddings.cache(&spec.model, ctx.registry)?;
            let run = RunEmbedder::new(cache.as_ref());
            let strings = table
                .column_by_name(&spec.input_column)
                .map_err(CoreError::from)?
                .as_utf8()?;
            let matrix = embed_all(&run, strings)?;
            let delta = run.stats();
            stats.embedding_stats.model_calls += delta.model_calls;
            stats.embedding_stats.cache_hits += delta.cache_hits;
            table
                .with_column(&spec.output_column, Column::Vector(matrix))
                .map_err(CoreError::from)?
        }
        PhysicalPlan::Join(node) => execute_join(node, ctx, stats, metrics)?,
        PhysicalPlan::HashJoin(node) => {
            let left = execute_node(&node.left, ctx, stats, metrics)?;
            let right = execute_node(&node.right, ctx, stats, metrics)?;
            let side = HashSide::build_with_pool(right, &node.right_column, &ctx.pool)?;
            side.probe(&left, &node.left_column)?
        }
        PhysicalPlan::Rename { columns, input, .. } => {
            let table = execute_node(input, ctx, stats, metrics)?;
            rename_columns(&table, columns)?
        }
    };
    metrics.rows[slot] = table.num_rows() as u64;
    metrics.morsels[slot] = 1;
    metrics.add_time(slot, start.elapsed());
    Ok(table)
}

fn execute_join(
    node: &JoinNode,
    ctx: &ExecContext<'_>,
    stats: &mut RunStats,
    metrics: &mut OpMetrics,
) -> Result<Table> {
    let outer_table = execute_node(&node.outer, ctx, stats, metrics)?;
    let left_strings = outer_table
        .column_by_name(&node.left_column)
        .map_err(CoreError::from)?
        .as_utf8()?;

    // Materialise the inner subplan (if any) *before* snapshotting the cache
    // counters: a nested join or embed inside it accounts for its own model
    // calls, and this join's delta must not double-count them.
    let materialized_inner = match &node.inner {
        InnerInput::Plan(inner) => Some(execute_node(inner, ctx, stats, metrics)?),
        InnerInput::Indexed(_) => None,
    };

    let cache = ctx.embeddings.cache(&node.model, ctx.registry)?;
    // All of this join's embedding goes through a run-local counting view,
    // so the reported stats are exact per-run deltas even while other
    // executions share (and race on) the same cache.
    let run = RunEmbedder::new(cache.as_ref());

    let (result, right_view) = match (&node.op, &node.inner) {
        (PhysicalJoinOp::Index(config), InnerInput::Indexed(indexed)) => {
            // epoch first, then the table read: a re-registration landing
            // between the two is detected at publication time, so an index
            // built from the rows snapshotted here can never be cached past
            // an invalidation of its own table or model
            let epoch = ctx.indexes.publication_epoch(&indexed.key);
            let base = ctx
                .catalog
                .table(&indexed.key.table)
                .map_err(CoreError::from)?;
            let inner_strings = base
                .column_by_name(&indexed.key.column)
                .map_err(CoreError::from)?
                .as_utf8()?;
            let join = IndexJoin::new(*config);
            // tracked variant: evictions this call performed are attributed
            // to this run, not diffed off the shared manager's global
            // counter; single-flight means a losing racer pays no embedding
            // or build cost here at all
            let (index, built, evicted) =
                ctx.indexes
                    .get_or_build_tracked_from(epoch, &indexed.key, || {
                        let matrix = embed_all(&run, inner_strings)?;
                        join.build_index(&matrix)
                    })?;
            if built {
                stats.index_builds += 1;
            } else {
                stats.index_reuses += 1;
            }
            stats.index_evictions += evicted;

            let mut inner_filter: Option<SelectionBitmap> = None;
            for expr in &indexed.filters {
                let bitmap = evaluate_predicate(expr, &base).map_err(CoreError::from)?;
                inner_filter = Some(match inner_filter {
                    None => bitmap,
                    Some(acc) => acc.and(&bitmap).map_err(CoreError::from)?,
                });
            }

            let outer_matrix = embed_all(&run, left_strings)?;
            let result = join.probe_join(
                &outer_matrix,
                &index,
                node.predicate,
                None,
                inner_filter.as_ref(),
            )?;
            let right_view = match &indexed.projection {
                Some(columns) => {
                    let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                    base.project(&names).map_err(CoreError::from)?
                }
                None => base.as_ref().clone(),
            };
            (result, right_view)
        }
        (op, InnerInput::Plan(_)) => {
            let inner_table = materialized_inner.expect("materialised above");
            let right_strings = inner_table
                .column_by_name(&node.right_column)
                .map_err(CoreError::from)?
                .as_utf8()?;
            let model: &dyn Embedder = &run;
            let result = match op {
                PhysicalJoinOp::NaiveNlj => {
                    NaiveNlJoin::new().join(model, left_strings, right_strings, node.predicate)?
                }
                PhysicalJoinOp::PrefetchNlj(config) => PrefetchNlJoin::new(*config).join(
                    model,
                    left_strings,
                    right_strings,
                    node.predicate,
                )?,
                PhysicalJoinOp::Tensor(config) => TensorJoin::new(*config).join(
                    model,
                    left_strings,
                    right_strings,
                    node.predicate,
                )?,
                PhysicalJoinOp::Index(config) => {
                    stats.index_builds += 1;
                    IndexJoin::new(*config).join(
                        model,
                        left_strings,
                        right_strings,
                        node.predicate,
                    )?
                }
            };
            (result, inner_table)
        }
        (op, InnerInput::Indexed(_)) => {
            return Err(CoreError::InvalidInput(format!(
                "planner bug: {} cannot consume a persistent-index inner input",
                op.name()
            )))
        }
    };

    let delta = run.stats();
    stats.embedding_stats.model_calls += delta.model_calls;
    stats.embedding_stats.cache_hits += delta.cache_hits;

    let mut join_stats = result.stats;
    join_stats.model_calls = delta.model_calls;
    stats.join_stats = join_stats;
    stats.access_path = Some(node.access_path);
    stats.matched_pairs = result.len();

    materialize_output(&outer_table, &right_view, &result)
}

/// Builds the join output table: `l_*` columns, `r_*` columns, `similarity`.
pub(crate) fn materialize_output(
    left: &Table,
    right: &Table,
    result: &JoinResult,
) -> Result<Table> {
    let pairs = result.sorted_pairs();
    let left_indices: Vec<usize> = pairs.iter().map(|p| p.left).collect();
    let right_indices: Vec<usize> = pairs.iter().map(|p| p.right).collect();
    let scores: Vec<f64> = pairs.iter().map(|p| p.score as f64).collect();

    let left_taken = left.take(&left_indices).map_err(CoreError::from)?;
    let right_taken = right.take(&right_indices).map_err(CoreError::from)?;

    let mut fields: Vec<Field> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();
    for (field, column) in left_taken
        .schema()
        .fields()
        .iter()
        .zip(left_taken.columns())
    {
        fields.push(Field::new(format!("l_{}", field.name), field.data_type));
        columns.push(column.clone());
    }
    for (field, column) in right_taken
        .schema()
        .fields()
        .iter()
        .zip(right_taken.columns())
    {
        fields.push(Field::new(format!("r_{}", field.name), field.data_type));
        columns.push(column.clone());
    }
    fields.push(Field::new("similarity", cej_storage::DataType::Float64));
    columns.push(Column::Float64(scores));

    let schema = Schema::new(fields).map_err(CoreError::from)?;
    Table::new(schema, columns).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_path::AccessPathAdvisor;
    use crate::index_manager::IndexManager;
    use crate::planner::Planner;
    use crate::session::JoinStrategy;
    use cej_embedding::{FastTextConfig, FastTextModel};
    use cej_relational::{col, lit_i64, EmbedSpec, LogicalPlan};
    use cej_storage::TableBuilder;

    struct Fixture {
        catalog: Catalog,
        registry: ModelRegistry,
        embeddings: EmbeddingCachePool,
        indexes: IndexManager,
    }

    impl Fixture {
        fn new() -> Self {
            let catalog = Catalog::new();
            catalog.register(
                "photos",
                TableBuilder::new()
                    .int64("id", vec![1, 2, 3])
                    .utf8(
                        "caption",
                        vec!["bbq party".into(), "database talk".into(), "grill".into()],
                    )
                    .build()
                    .unwrap(),
            );
            let mut registry = ModelRegistry::new();
            let model = FastTextModel::new(FastTextConfig {
                dim: 16,
                buckets: 1000,
                ..FastTextConfig::default()
            })
            .unwrap();
            registry.register("fasttext", Arc::new(model));
            Self {
                catalog,
                registry,
                embeddings: EmbeddingCachePool::new(),
                indexes: IndexManager::new(),
            }
        }

        fn ctx(&self) -> ExecContext<'_> {
            ExecContext {
                catalog: &self.catalog,
                registry: &self.registry,
                embeddings: &self.embeddings,
                indexes: &self.indexes,
                pool: *cej_exec::ExecPool::global(),
            }
        }

        fn run(&self, plan: &LogicalPlan) -> Result<ExecOutcome> {
            let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
            let physical = planner.plan(plan, &self.catalog, &self.registry, &self.indexes)?;
            physical.execute(&self.ctx())
        }
    }

    #[test]
    fn scan_filter_project_execute() {
        let f = Fixture::new();
        let plan = LogicalPlan::scan("photos")
            .select(col("id").gt(lit_i64(1)))
            .project(&["caption"]);
        let out = f.run(&plan).unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(out.table.num_columns(), 1);
        assert!(out.stats.access_path.is_none());
    }

    #[test]
    fn embed_node_appends_vector_column_through_the_shared_cache() {
        let f = Fixture::new();
        let plan = LogicalPlan::scan("photos").embed(EmbedSpec::new("caption", "fasttext"));
        let out = f.run(&plan).unwrap();
        assert_eq!(out.table.num_columns(), 3);
        assert!(out.table.schema().field("caption_emb").is_ok());
        // the embed operator pays one model call per distinct string...
        assert_eq!(out.stats.embedding_stats.model_calls, 3);
        // ...and a warm re-run of the same plan pays none
        let warm = f.run(&plan).unwrap();
        assert_eq!(warm.stats.embedding_stats.model_calls, 0);
        assert_eq!(warm.table.num_columns(), 3);
    }

    #[test]
    fn nested_join_model_calls_are_not_double_counted() {
        let f = Fixture::new();
        // inner side is itself an EJoin; its model calls must be counted once
        let inner = LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("photos"),
            "caption",
            "caption",
            "fasttext",
            cej_relational::SimilarityPredicate::TopK(1),
        );
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            inner,
            "caption",
            "l_caption",
            "fasttext",
            cej_relational::SimilarityPredicate::TopK(1),
        );
        let out = f.run(&plan).unwrap();
        // 3 distinct captions across every side: exactly 3 real model calls
        assert_eq!(out.stats.embedding_stats.model_calls, 3);
    }

    #[test]
    fn cache_pool_shares_and_invalidates() {
        let f = Fixture::new();
        let a = f.embeddings.cache("fasttext", &f.registry).unwrap();
        let b = f.embeddings.cache("fasttext", &f.registry).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(f.embeddings.cache("missing", &f.registry).is_err());
        a.embed("hello");
        assert_eq!(f.embeddings.stats().model_calls, 1);
        assert_eq!(f.embeddings.cached_entries(), 1);
        f.embeddings.invalidate("fasttext");
        let c = f.embeddings.cache("fasttext", &f.registry).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(f.embeddings.cached_entries(), 0);
        f.embeddings.clear();
        assert_eq!(f.embeddings.stats().model_calls, 0);
        assert!(format!("{:?}", f.embeddings).contains("EmbeddingCachePool"));
    }

    #[test]
    fn self_join_via_planner_reports_delta_stats() {
        let f = Fixture::new();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("photos"),
            "caption",
            "caption",
            "fasttext",
            cej_relational::SimilarityPredicate::TopK(1),
        );
        let cold = f.run(&plan).unwrap();
        assert_eq!(cold.stats.embedding_stats.model_calls, 3);
        assert_eq!(cold.stats.matched_pairs, 3);
        let warm = f.run(&plan).unwrap();
        assert_eq!(warm.stats.embedding_stats.model_calls, 0);
        assert!(warm.stats.embedding_stats.cache_hits > 0);
    }
}
