//! Session-owned registry of persistent HNSW indexes.
//!
//! The paper's index-join analysis (Section IV-B) charges the HNSW build
//! cost against the probe path only "when no index exists" — which assumes an
//! engine that can *keep* an index across queries.  [`IndexManager`] is that
//! piece: it caches built [`HnswIndex`] handles keyed by
//! [`IndexKey`] `(table, column, model, params)` so a prepared query probes
//! the same graph on every execution instead of rebuilding it, and it
//! invalidates all indexes of a table when the table is re-registered.
//!
//! A server holding many `(table, column, model, params)` combinations also
//! needs bounded memory: the manager enforces an optional byte budget with
//! least-recently-used eviction (sized by [`HnswIndex::memory_bytes`]),
//! configured through the session builder or the `CEJ_INDEX_BUDGET`
//! environment variable (`bytes`, with optional `k`/`m`/`g` suffix).
//!
//! All methods take `&self` (interior mutability) so the cache can be shared
//! between a session and any number of live
//! [`crate::prepared::PreparedQuery`] handles.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cej_index::{HnswIndex, HnswParams};
use parking_lot::RwLock;

use crate::Result;

/// Identity of a persistent index: which base-table column it covers, under
/// which embedding model, built with which HNSW parameters.
///
/// Two queries share an index handle exactly when all four components agree;
/// [`HnswParams`] is part of the key because both the graph structure
/// (`M`, `efConstruction`, metric, seed) and the probe behaviour
/// (`efSearch`, beam width) are baked into a built [`HnswIndex`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey {
    /// Catalog name of the indexed base table.
    pub table: String,
    /// The context-rich string column the embeddings were derived from.
    pub column: String,
    /// Name of the embedding model in the session's registry.
    pub model: String,
    /// HNSW build/search parameters.
    pub params: HnswParams,
}

impl IndexKey {
    /// Creates a key.
    pub fn new(table: &str, column: &str, model: &str, params: HnswParams) -> Self {
        Self {
            table: table.to_string(),
            column: column.to_string(),
            model: model.to_string(),
            params,
        }
    }

    /// Short `table.column/model` label for plan rendering.
    pub fn label(&self) -> String {
        format!("{}.{}/{}", self.table, self.column, self.model)
    }
}

/// Cumulative counters of the manager's activity, observable by tests and
/// benchmarks (the "zero HNSW inserts on a warm run" guarantee is asserted
/// through [`IndexManagerStats::builds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexManagerStats {
    /// Number of indexes built (cache misses).
    pub builds: u64,
    /// Number of lookups served by an already-built index.
    pub hits: u64,
    /// Number of indexes dropped by table re-registration.
    pub invalidations: u64,
    /// Number of indexes evicted by the memory budget (LRU).
    pub evictions: u64,
    /// Number of indexes currently resident.
    pub resident: usize,
    /// Total bytes held by resident indexes.
    pub memory_bytes: usize,
}

/// One resident index plus its LRU clock stamp and (immutable) size,
/// computed once at insert so budget enforcement and stats never re-walk
/// the graph.
struct CachedIndex {
    index: Arc<HnswIndex>,
    bytes: usize,
    last_used: AtomicU64,
}

/// The session-owned cache of built [`HnswIndex`] handles.
#[derive(Default)]
pub struct IndexManager {
    indexes: RwLock<HashMap<IndexKey, CachedIndex>>,
    budget: RwLock<Option<usize>>,
    /// Keys with a build in flight — the single-flight gate that makes many
    /// threads racing on the same cold key yield exactly one build (`std`
    /// primitives because the build waiters need a condvar).
    building: Mutex<HashSet<IndexKey>>,
    build_done: Condvar,
    /// Per-table and per-model invalidation epochs.  Builds snapshot their
    /// key's pair before reading inputs and re-check it at publication: a
    /// build that overlapped an invalidation of *its own* table or model
    /// must not enter the cache (its graph may embed the replaced rows),
    /// though its handle still serves the building run.  Keyed per name so
    /// unrelated registrations (e.g. the server's per-connection probe
    /// tables) never discard other tables' in-flight builds.
    epochs: Mutex<EpochMaps>,
    builds: AtomicU64,
    hits: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    clock: AtomicU64,
}

/// The per-name invalidation counters behind [`PublicationEpoch`].
#[derive(Debug, Default)]
struct EpochMaps {
    tables: HashMap<String, u64>,
    models: HashMap<String, u64>,
}

/// A snapshot of one key's (table, model) invalidation epochs — see
/// [`IndexManager::publication_epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicationEpoch {
    table: u64,
    model: u64,
}

/// Clears a key's in-flight marker (and wakes waiters) even when the build
/// panics or errors, so a failed build never wedges later callers.
struct BuildGuard<'a> {
    manager: &'a IndexManager,
    key: &'a IndexKey,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        let mut building = self
            .manager
            .building
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        building.remove(self.key);
        drop(building);
        self.manager.build_done.notify_all();
    }
}

impl std::fmt::Debug for IndexManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("IndexManager")
            .field("resident", &stats.resident)
            .field("memory_bytes", &stats.memory_bytes)
            .field("builds", &stats.builds)
            .field("hits", &stats.hits)
            .field("invalidations", &stats.invalidations)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

/// Estimated resident footprint of a (not yet built) HNSW index over `rows`
/// vectors of `dim` f32 components: vectors, adjacency lists (≈ `M0` links
/// at layer 0 plus `M` across the geometric upper layers), and the level
/// array.  Used by the eviction-aware access-path check — it only needs to
/// be right to well under an order of magnitude to catch "this index can
/// never fit the budget".
pub fn estimate_index_bytes(rows: usize, dim: usize, params: &HnswParams) -> usize {
    let vectors = rows * dim * std::mem::size_of::<f32>();
    let adjacency = rows * (params.m0 + params.m) * std::mem::size_of::<u32>();
    let levels = rows * std::mem::size_of::<usize>();
    vectors + adjacency + levels
}

/// Parses a human-friendly byte budget: plain bytes, with an optional
/// trailing `b` and an optional `k` / `m` / `g` binary multiplier
/// (`"64m"`, `"512kb"`, `"2g"`, `"1048576"`).
pub fn parse_budget(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    let t = t.strip_suffix('b').unwrap_or(&t);
    let (digits, multiplier) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(prefix) => {
            let mult = match t.chars().last() {
                Some('k') => 1usize << 10,
                Some('m') => 1usize << 20,
                _ => 1usize << 30,
            };
            (prefix, mult)
        }
        None => (t, 1usize),
    };
    digits
        .trim()
        .parse::<usize>()
        .ok()
        .map(|n| n.saturating_mul(multiplier))
}

impl IndexManager {
    /// Creates an empty manager.  The memory budget defaults to unlimited,
    /// or to `CEJ_INDEX_BUDGET` when the environment variable is set.
    pub fn new() -> Self {
        let manager = Self::default();
        if let Some(budget) = std::env::var("CEJ_INDEX_BUDGET")
            .ok()
            .and_then(|s| parse_budget(&s))
        {
            *manager.budget.write() = Some(budget);
        }
        manager
    }

    /// Sets (or clears) the resident-memory budget in bytes and immediately
    /// evicts down to it.  A single index larger than the budget stays
    /// resident while in use — evicting it would only force a rebuild loop.
    pub fn set_budget(&self, bytes: Option<usize>) {
        *self.budget.write() = bytes;
        let mut write = self.indexes.write();
        self.enforce_budget(&mut write, None);
    }

    /// The configured resident-memory budget, if any.
    pub fn budget(&self) -> Option<usize> {
        *self.budget.read()
    }

    /// Whether an index for `key` is resident.
    pub fn contains(&self, key: &IndexKey) -> bool {
        self.indexes.read().contains_key(key)
    }

    /// The resident index for `key`, if any (does not count as a hit, but
    /// refreshes the entry's LRU position).
    pub fn get(&self, key: &IndexKey) -> Option<Arc<HnswIndex>> {
        let read = self.indexes.read();
        read.get(key).map(|entry| {
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            entry.index.clone()
        })
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Returns the resident index for `key`, building (and caching) it with
    /// `build` on a miss.  The boolean is `true` when the index was built by
    /// this call.  Inserting over budget evicts least-recently-used entries
    /// (never the one being returned).
    ///
    /// The build runs outside the lock; if two threads race on the same key
    /// the first inserted handle wins and both callers observe it.
    ///
    /// # Errors
    /// Propagates errors from `build`.
    pub fn get_or_build(
        &self,
        key: &IndexKey,
        build: impl FnOnce() -> Result<HnswIndex>,
    ) -> Result<(Arc<HnswIndex>, bool)> {
        let (index, built, _) = self.get_or_build_tracked(key, build)?;
        Ok((index, built))
    }

    /// [`IndexManager::get_or_build`] plus the number of LRU evictions this
    /// very call performed, so executions on a shared manager can attribute
    /// evictions run-locally instead of diffing the global counter (which
    /// would blame one run for a concurrent run's evictions).
    ///
    /// Builds are **single-flight**: when many threads race on the same cold
    /// key, exactly one runs `build` while the rest block and then share the
    /// built handle — a thundering herd of prepared queries costs one HNSW
    /// construction, not one per thread.
    ///
    /// # Errors
    /// Propagates errors from `build` (only to the caller whose closure ran;
    /// blocked waiters retry and trigger a fresh build).
    pub fn get_or_build_tracked(
        &self,
        key: &IndexKey,
        build: impl FnOnce() -> Result<HnswIndex>,
    ) -> Result<(Arc<HnswIndex>, bool, u64)> {
        self.get_or_build_tracked_from(self.publication_epoch(key), key, build)
    }

    /// The current invalidation epoch of `key`'s table and model.  Callers
    /// that read their build inputs (table rows) *before* calling
    /// [`IndexManager::get_or_build_tracked_from`] snapshot this first, so
    /// a re-registration landing between the input read and the build is
    /// still detected and the stale graph never enters the cache.  Epochs
    /// are per-name: registrations of unrelated tables never invalidate
    /// this key's build.
    pub fn publication_epoch(&self, key: &IndexKey) -> PublicationEpoch {
        let epochs = self.epochs.lock().unwrap_or_else(|e| e.into_inner());
        PublicationEpoch {
            table: epochs.tables.get(&key.table).copied().unwrap_or(0),
            model: epochs.models.get(&key.model).copied().unwrap_or(0),
        }
    }

    /// [`IndexManager::get_or_build_tracked`] with an explicit epoch
    /// snapshot (see [`IndexManager::publication_epoch`]).
    ///
    /// # Errors
    /// Propagates errors from `build`.
    pub fn get_or_build_tracked_from(
        &self,
        epoch: PublicationEpoch,
        key: &IndexKey,
        build: impl FnOnce() -> Result<HnswIndex>,
    ) -> Result<(Arc<HnswIndex>, bool, u64)> {
        // The epoch guard is symmetric.  Writes: a build whose inputs
        // predate an invalidation must not be cached.  Reads: a caller
        // whose *table snapshot* predates an invalidation must not use the
        // cache either — the resident index may cover newer rows than the
        // caller read, and probing it would return row ids the caller maps
        // into the wrong snapshot.  Such a straggler gets a private
        // ephemeral index over its own snapshot instead (epoch and hit are
        // checked under one `indexes` read guard: invalidations bump the
        // epoch under the `indexes` write lock, so the pair is atomic).
        enum Probe {
            Hit(Arc<HnswIndex>),
            Stale,
            Miss,
        }
        let probe_cache = || {
            let read = self.indexes.read();
            if self.publication_epoch(key) != epoch {
                return Probe::Stale;
            }
            match read.get(key) {
                Some(entry) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    entry.last_used.store(self.tick(), Ordering::Relaxed);
                    Probe::Hit(entry.index.clone())
                }
                None => Probe::Miss,
            }
        };
        loop {
            match probe_cache() {
                Probe::Hit(index) => return Ok((index, false, 0)),
                Probe::Stale => {
                    let built = Arc::new(build()?);
                    self.builds.fetch_add(1, Ordering::Relaxed);
                    return Ok((built, true, 0));
                }
                Probe::Miss => {}
            }
            let mut building = self.building.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the gate: a builder publishes to `indexes`
            // *before* clearing its marker, so a miss here while no build is
            // marked means this thread must build.
            match probe_cache() {
                Probe::Hit(index) => return Ok((index, false, 0)),
                Probe::Stale => {
                    drop(building);
                    let built = Arc::new(build()?);
                    self.builds.fetch_add(1, Ordering::Relaxed);
                    return Ok((built, true, 0));
                }
                Probe::Miss => {}
            }
            if building.contains(key) {
                let (guard, _timeout) = self
                    .build_done
                    .wait_timeout(building, std::time::Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                drop(guard);
                continue;
            }
            building.insert(key.clone());
            break;
        }
        let guard = BuildGuard { manager: self, key };
        // `epoch` was snapshotted before the caller read its build inputs:
        // if an invalidation (table or model re-registration) has landed
        // since, the result may embed replaced rows and must not be
        // published — later queries would silently probe a stale graph.
        let built = Arc::new(build()?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let tick = self.tick();
        let mut write = self.indexes.write();
        let mut evicted = 0;
        let resident = if self.publication_epoch(key) == epoch {
            let entry = write.entry(key.clone()).or_insert_with(|| CachedIndex {
                bytes: built.memory_bytes(),
                index: built.clone(),
                last_used: AtomicU64::new(0),
            });
            entry.last_used.store(tick, Ordering::Relaxed);
            let resident = entry.index.clone();
            evicted = self.enforce_budget(&mut write, Some(key));
            resident
        } else {
            // raced with an invalidation: serve this run, cache nothing
            built
        };
        drop(write);
        drop(guard); // publishes before waking waiters (guard order matters)
        Ok((resident, true, evicted))
    }

    /// Evicts least-recently-used entries until the resident set fits the
    /// budget, returning how many were evicted.  Two classes of entry are
    /// never evicted: `protect` (the entry being handed out right now) and
    /// any entry with outstanding `Arc` handles (a query is probing it —
    /// evicting it would only guarantee an immediate rebuild).  A resident
    /// set held entirely in-use may therefore exceed the budget transiently.
    fn enforce_budget(
        &self,
        write: &mut HashMap<IndexKey, CachedIndex>,
        protect: Option<&IndexKey>,
    ) -> u64 {
        let Some(budget) = *self.budget.read() else {
            return 0;
        };
        let mut total: usize = write.values().map(|e| e.bytes).sum();
        let mut evicted = 0u64;
        while total > budget {
            let victim = write
                .iter()
                .filter(|(key, entry)| {
                    Some(*key) != protect && Arc::strong_count(&entry.index) == 1
                })
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(key, entry)| (key.clone(), entry.bytes));
            match victim {
                Some((key, bytes)) => {
                    write.remove(&key);
                    total -= bytes;
                    evicted += 1;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // only protected / in-use entries remain
            }
        }
        evicted
    }

    /// Total bytes of resident indexes that are currently *in use* (their
    /// `Arc` handle is held outside the cache).  These cannot be evicted, so
    /// the advisor subtracts them from the budget when judging whether a
    /// prospective index could ever stay resident.
    pub fn pinned_bytes(&self) -> usize {
        self.indexes
            .read()
            .values()
            .filter(|entry| Arc::strong_count(&entry.index) > 1)
            .map(|entry| entry.bytes)
            .sum()
    }

    /// Whether an index of `bytes` could stay resident under the current
    /// budget and pinned set: `true` with no budget, otherwise `bytes` must
    /// fit into the budget minus the bytes pinned by in-flight queries.
    /// The eviction-aware half of access-path costing: planning a probe
    /// path whose index can never stay warm just thrashes build → evict →
    /// rebuild.
    pub fn would_stay_resident(&self, bytes: usize) -> bool {
        // copy the budget out before touching the index map — never hold
        // both locks at once
        let budget = *self.budget.read();
        match budget {
            None => true,
            Some(budget) => bytes <= budget.saturating_sub(self.pinned_bytes()),
        }
    }

    /// Drops every index over `table` (called when the table is
    /// re-registered, because resident graphs embed the old rows).  Returns
    /// the number of indexes dropped.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.invalidate_where(
            |key| key.table == table,
            |epochs| {
                *epochs.tables.entry(table.to_string()).or_insert(0) += 1;
            },
        )
    }

    /// [`IndexManager::invalidate_table`] plus removal of the table's epoch
    /// entry — the teardown path for throwaway tables (e.g. the server's
    /// per-connection probe tables), so a churning server never accumulates
    /// epoch entries for dead names.  Only safe for names that are
    /// re-registered through the session (whose register path invalidates
    /// *after* publishing): any zombie publication under the reset epoch is
    /// dropped by that invalidation before the name is queried again.
    pub fn reap_table(&self, table: &str) -> usize {
        let dropped = self.invalidate_table(table);
        self.epochs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tables
            .remove(table);
        dropped
    }

    /// Atomically replaces `table`'s resident indexes with `replacements`
    /// (graphs extended over the table's new rows) and bumps the table's
    /// invalidation epoch in the same critical section.
    ///
    /// This is the index half of applying a delta: the catalog publishes the
    /// new table version, the caller extends each resident graph with the
    /// appended vectors, and this method swaps them in so that (a) queries
    /// that snapshot the table *after* the swap hit the extended graph
    /// directly, (b) stragglers holding the pre-delta snapshot observe the
    /// epoch bump and fall back to a private build over their own snapshot,
    /// and (c) an in-flight build against the old rows can never publish
    /// over the replacement.  Entries of `table` not named in `replacements`
    /// are dropped (their graphs cover the old rows).
    pub fn publish_replacements(&self, table: &str, replacements: Vec<(IndexKey, Arc<HnswIndex>)>) {
        let mut write = self.indexes.write();
        // Same discipline as `invalidate_where`: the epoch bump happens under
        // the `indexes` write lock so publication/read checks see the bump
        // and the swap as one atomic event.
        {
            let mut epochs = self.epochs.lock().unwrap_or_else(|e| e.into_inner());
            *epochs.tables.entry(table.to_string()).or_insert(0) += 1;
        }
        let before = write.len();
        write.retain(|key, _| key.table != table);
        self.invalidations
            .fetch_add((before - write.len()) as u64, Ordering::Relaxed);
        let tick = self.tick();
        for (key, index) in replacements {
            debug_assert_eq!(key.table, table, "replacement key must match the table");
            write.insert(
                key,
                CachedIndex {
                    bytes: index.memory_bytes(),
                    index,
                    last_used: AtomicU64::new(tick),
                },
            );
        }
        self.enforce_budget(&mut write, None);
    }

    /// The keys of every resident index over `table`, so a delta applier can
    /// enumerate which graphs need extending before calling
    /// [`IndexManager::publish_replacements`].
    pub fn keys_for_table(&self, table: &str) -> Vec<IndexKey> {
        self.indexes
            .read()
            .keys()
            .filter(|key| key.table == table)
            .cloned()
            .collect()
    }

    /// Drops every index built with `model` (called when the model is
    /// re-registered, because resident graphs hold the old model's vectors).
    /// Returns the number of indexes dropped.
    pub fn invalidate_model(&self, model: &str) -> usize {
        self.invalidate_where(
            |key| key.model == model,
            |epochs| {
                *epochs.models.entry(model.to_string()).or_insert(0) += 1;
            },
        )
    }

    fn invalidate_where(
        &self,
        stale: impl Fn(&IndexKey) -> bool,
        bump: impl FnOnce(&mut EpochMaps),
    ) -> usize {
        let mut write = self.indexes.write();
        // Bumped under the same write lock the publication path checks the
        // epoch under, so "build overlapped this invalidation" is decided
        // race-free: either the build published first (and is removed right
        // here), or it observes the bump and discards itself.
        bump(&mut self.epochs.lock().unwrap_or_else(|e| e.into_inner()));
        let before = write.len();
        write.retain(|key, _| !stale(key));
        let dropped = before - write.len();
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drops every resident index (counters are retained).
    pub fn clear(&self) {
        self.indexes.write().clear();
    }

    /// Current counters plus the resident index count and memory footprint
    /// (an O(residents) integer sum — per-index sizes are cached at insert).
    pub fn stats(&self) -> IndexManagerStats {
        let read = self.indexes.read();
        IndexManagerStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: read.len(),
            memory_bytes: read.values().map(|e| e.bytes).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_workload::clustered_matrix;

    fn key(table: &str) -> IndexKey {
        IndexKey::new(table, "word", "ft", HnswParams::tiny())
    }

    fn build_small() -> Result<HnswIndex> {
        let (vectors, _) = clustered_matrix(40, 8, 4, 0.05, 3);
        HnswIndex::build(vectors, HnswParams::tiny()).map_err(crate::CoreError::from)
    }

    #[test]
    fn build_once_then_hit() {
        let manager = IndexManager::new();
        assert!(!manager.contains(&key("t")));
        let (first, built) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(built);
        let (second, built_again) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(!built_again);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = manager.stats();
        assert_eq!((stats.builds, stats.hits, stats.resident), (1, 1, 1));
        assert!(stats.memory_bytes > 0);
        assert!(manager.get(&key("t")).is_some());
    }

    #[test]
    fn distinct_keys_build_distinct_indexes() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        let other_params = IndexKey::new("a", "word", "ft", HnswParams::tiny().with_ef_search(99));
        manager.get_or_build(&other_params, build_small).unwrap();
        assert_eq!(manager.stats().resident, 3);
        assert_eq!(manager.stats().builds, 3);
    }

    #[test]
    fn invalidation_is_per_table() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.invalidate_table("a"), 1);
        assert!(!manager.contains(&key("a")));
        assert!(manager.contains(&key("b")));
        assert_eq!(manager.stats().invalidations, 1);
        // rebuilding after invalidation is a fresh build
        let (_, built) = manager.get_or_build(&key("a"), build_small).unwrap();
        assert!(built);
        assert_eq!(manager.stats().builds, 3);
        manager.clear();
        assert_eq!(manager.stats().resident, 0);
        assert_eq!(manager.stats().builds, 3, "clear keeps counters");
    }

    #[test]
    fn build_errors_are_not_cached() {
        let manager = IndexManager::new();
        let err = manager.get_or_build(&key("t"), || {
            Err(crate::CoreError::InvalidInput("boom".into()))
        });
        assert!(err.is_err());
        assert!(!manager.contains(&key("t")));
        assert_eq!(manager.stats().builds, 0);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        let one_index = manager.stats().memory_bytes;
        assert!(one_index > 0);
        // room for two indexes but not three
        manager.set_budget(Some(one_index * 2 + one_index / 2));
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.stats().resident, 2);
        // touch "a" so "b" becomes the LRU victim
        assert!(manager.get(&key("a")).is_some());
        manager.get_or_build(&key("c"), build_small).unwrap();
        let stats = manager.stats();
        assert_eq!(stats.resident, 2, "third build must evict one");
        assert_eq!(stats.evictions, 1);
        assert!(manager.contains(&key("a")), "recently used survives");
        assert!(!manager.contains(&key("b")), "LRU entry evicted");
        assert!(manager.contains(&key("c")), "new entry resident");
        assert!(stats.memory_bytes <= manager.budget().unwrap());
    }

    #[test]
    fn over_budget_single_index_stays_resident() {
        let manager = IndexManager::new();
        manager.set_budget(Some(1));
        let (_, built) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(built);
        // the only (protected) index survives even though it exceeds the budget
        assert_eq!(manager.stats().resident, 1);
        // the next build for a different key evicts the now-unprotected one
        manager.get_or_build(&key("u"), build_small).unwrap();
        let stats = manager.stats();
        assert_eq!(stats.resident, 1);
        assert!(manager.contains(&key("u")));
        assert!(stats.evictions >= 1);
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.stats().resident, 2);
        manager.set_budget(Some(1));
        assert_eq!(manager.stats().resident, 0, "no protected entry here");
        manager.set_budget(None);
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.stats().resident, 2, "unlimited again");
    }

    #[test]
    fn concurrent_cold_key_builds_exactly_once() {
        // Eight threads race on the same cold key: single-flight must yield
        // one build, seven hits, and one shared handle.
        let manager = Arc::new(IndexManager::new());
        let build_calls = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let manager = manager.clone();
            let build_calls = build_calls.clone();
            handles.push(std::thread::spawn(move || {
                let (index, _) = manager
                    .get_or_build(&key("t"), || {
                        build_calls.fetch_add(1, Ordering::SeqCst);
                        // widen the race window so waiters really queue up
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        build_small()
                    })
                    .unwrap();
                Arc::as_ptr(&index) as usize
            }));
        }
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(build_calls.load(Ordering::SeqCst), 1, "exactly one build");
        let stats = manager.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.hits, 7, "all waiters must be served as hits");
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "every thread shares one handle"
        );
    }

    #[test]
    fn build_overlapping_an_invalidation_is_not_cached() {
        // A table re-registration lands while an index over the old rows is
        // mid-build: the building run is still served, but the stale graph
        // must not enter the shared cache (later queries would probe old
        // rows against the new table).
        let manager = Arc::new(IndexManager::new());
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (resume_tx, resume_rx) = std::sync::mpsc::channel::<()>();
        let builder = {
            let manager = manager.clone();
            std::thread::spawn(move || {
                manager.get_or_build(&key("t"), || {
                    started_tx.send(()).unwrap();
                    resume_rx.recv().unwrap();
                    build_small()
                })
            })
        };
        started_rx.recv().unwrap();
        manager.invalidate_table("t"); // re-registration, mid-build
        resume_tx.send(()).unwrap();
        let (index, built) = builder.join().unwrap().unwrap();
        assert!(built);
        assert!(!index.is_empty(), "the building run is still served");
        assert!(
            !manager.contains(&key("t")),
            "a build that overlapped an invalidation must not be cached"
        );
        let (_, rebuilt) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(rebuilt, "the next query must rebuild against the new rows");
    }

    #[test]
    fn stale_snapshot_never_uses_a_newer_cached_index() {
        // The read-side epoch guard: a caller whose table snapshot predates
        // a re-registration must not be served the (newer-generation)
        // cached index — probing it would return row ids the caller maps
        // into the wrong snapshot.  It gets a private ephemeral build.
        let manager = IndexManager::new();
        let stale_epoch = manager.publication_epoch(&key("t"));
        manager.invalidate_table("t"); // re-registration after the snapshot
        let (cached, _) = manager.get_or_build(&key("t"), build_small).unwrap();
        let (served, built, evicted) = manager
            .get_or_build_tracked_from(stale_epoch, &key("t"), build_small)
            .unwrap();
        assert!(built, "the stale caller pays a private build");
        assert_eq!(evicted, 0);
        assert!(
            !Arc::ptr_eq(&served, &cached),
            "the newer cached index must not be handed to a stale snapshot"
        );
        // the cache itself is untouched by the ephemeral build
        let (again, rebuilt) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(!rebuilt);
        assert!(Arc::ptr_eq(&again, &cached));
    }

    #[test]
    fn reap_table_forgets_the_epoch_entry() {
        let manager = IndexManager::new();
        manager.invalidate_table("t"); // the name now has a non-zero epoch
        let bumped = manager.publication_epoch(&key("t"));
        assert_ne!(bumped, PublicationEpoch { table: 0, model: 0 });
        manager.get_or_build(&key("t"), build_small).unwrap();
        assert_eq!(manager.reap_table("t"), 1);
        assert!(!manager.contains(&key("t")));
        // the epoch entry is gone: a fresh snapshot reads the default again
        // (no per-name state survives the reap — the anti-leak guarantee)
        assert_eq!(
            manager.publication_epoch(&key("t")),
            PublicationEpoch { table: 0, model: 0 }
        );
    }

    #[test]
    fn unrelated_invalidations_do_not_discard_in_flight_builds() {
        // Epochs are per table/model: a registration of some *other* table
        // (e.g. a server connection's scratch probe table) mid-build must
        // not stop this build from being cached — otherwise steady probe
        // traffic would make every index rebuild forever.
        let manager = Arc::new(IndexManager::new());
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (resume_tx, resume_rx) = std::sync::mpsc::channel::<()>();
        let builder = {
            let manager = manager.clone();
            std::thread::spawn(move || {
                manager.get_or_build(&key("t"), || {
                    started_tx.send(()).unwrap();
                    resume_rx.recv().unwrap();
                    build_small()
                })
            })
        };
        started_rx.recv().unwrap();
        manager.invalidate_table("__probe_7"); // unrelated table, mid-build
        manager.invalidate_model("other-model"); // unrelated model, mid-build
        resume_tx.send(()).unwrap();
        let (_, built) = builder.join().unwrap().unwrap();
        assert!(built);
        assert!(
            manager.contains(&key("t")),
            "unrelated invalidations must not discard the build"
        );
        let (_, rebuilt) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(!rebuilt, "the cached index must be reused");
    }

    #[test]
    fn failed_build_does_not_wedge_the_single_flight_gate() {
        let manager = IndexManager::new();
        let err = manager.get_or_build(&key("t"), || {
            Err(crate::CoreError::InvalidInput("boom".into()))
        });
        assert!(err.is_err());
        // the in-flight marker must be gone: a retry builds fresh
        let (_, built) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(built);
    }

    #[test]
    fn in_use_entries_survive_eviction_pressure() {
        let manager = IndexManager::new();
        let (held, _) = manager.get_or_build(&key("hot"), build_small).unwrap();
        // a budget below one index: the held (in-use) entry still survives
        manager.set_budget(Some(1));
        assert!(manager.contains(&key("hot")), "in-use entry never evicted");
        assert!(manager.pinned_bytes() > 0);
        assert!(!manager.would_stay_resident(held.memory_bytes()));
        // new builds cannot displace it while the handle is out
        manager.get_or_build(&key("cold"), build_small).unwrap();
        assert!(manager.contains(&key("hot")));
        drop(held);
        assert_eq!(manager.pinned_bytes(), 0);
        // with the handle dropped, pressure finally reclaims it
        manager.get_or_build(&key("cold2"), build_small).unwrap();
        assert!(!manager.contains(&key("hot")));
        manager.set_budget(None);
        assert!(manager.would_stay_resident(usize::MAX));
    }

    #[test]
    fn publish_replacements_swaps_graphs_and_fences_stale_readers() {
        let manager = IndexManager::new();
        let (old, _) = manager.get_or_build(&key("t"), build_small).unwrap();
        manager.get_or_build(&key("other"), build_small).unwrap();
        let stale_epoch = manager.publication_epoch(&key("t"));
        assert_eq!(manager.keys_for_table("t"), vec![key("t")]);
        let replacement = Arc::new(build_small().unwrap());
        manager.publish_replacements("t", vec![(key("t"), replacement.clone())]);
        // a fresh reader hits the replacement without building
        let (served, built) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(!built, "replacement must be a cache hit");
        assert!(Arc::ptr_eq(&served, &replacement));
        assert!(!Arc::ptr_eq(&served, &old));
        // a reader holding the pre-delta snapshot must not see the new graph
        let (private, built, _) = manager
            .get_or_build_tracked_from(stale_epoch, &key("t"), build_small)
            .unwrap();
        assert!(built, "stale snapshot pays a private build");
        assert!(!Arc::ptr_eq(&private, &replacement));
        // unrelated tables are untouched
        assert!(manager.contains(&key("other")));
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(parse_budget("1024"), Some(1024));
        assert_eq!(parse_budget("64k"), Some(64 << 10));
        assert_eq!(parse_budget("64kb"), Some(64 << 10));
        assert_eq!(parse_budget(" 2M "), Some(2 << 20));
        assert_eq!(parse_budget("1g"), Some(1 << 30));
        assert_eq!(parse_budget("1GB"), Some(1 << 30));
        assert_eq!(parse_budget("nope"), None);
        assert_eq!(parse_budget(""), None);
        assert_eq!(parse_budget("k"), None);
    }
}
