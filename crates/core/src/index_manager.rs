//! Session-owned registry of persistent HNSW indexes.
//!
//! The paper's index-join analysis (Section IV-B) charges the HNSW build
//! cost against the probe path only "when no index exists" — which assumes an
//! engine that can *keep* an index across queries.  [`IndexManager`] is that
//! piece: it caches built [`HnswIndex`] handles keyed by
//! [`IndexKey`] `(table, column, model, params)` so a prepared query probes
//! the same graph on every execution instead of rebuilding it, and it
//! invalidates all indexes of a table when the table is re-registered.
//!
//! A server holding many `(table, column, model, params)` combinations also
//! needs bounded memory: the manager enforces an optional byte budget with
//! least-recently-used eviction (sized by [`HnswIndex::memory_bytes`]),
//! configured through the session builder or the `CEJ_INDEX_BUDGET`
//! environment variable (`bytes`, with optional `k`/`m`/`g` suffix).
//!
//! All methods take `&self` (interior mutability) so the cache can be shared
//! between a session and any number of live
//! [`crate::prepared::PreparedQuery`] handles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cej_index::{HnswIndex, HnswParams};
use parking_lot::RwLock;

use crate::Result;

/// Identity of a persistent index: which base-table column it covers, under
/// which embedding model, built with which HNSW parameters.
///
/// Two queries share an index handle exactly when all four components agree;
/// [`HnswParams`] is part of the key because both the graph structure
/// (`M`, `efConstruction`, metric, seed) and the probe behaviour
/// (`efSearch`, beam width) are baked into a built [`HnswIndex`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey {
    /// Catalog name of the indexed base table.
    pub table: String,
    /// The context-rich string column the embeddings were derived from.
    pub column: String,
    /// Name of the embedding model in the session's registry.
    pub model: String,
    /// HNSW build/search parameters.
    pub params: HnswParams,
}

impl IndexKey {
    /// Creates a key.
    pub fn new(table: &str, column: &str, model: &str, params: HnswParams) -> Self {
        Self {
            table: table.to_string(),
            column: column.to_string(),
            model: model.to_string(),
            params,
        }
    }

    /// Short `table.column/model` label for plan rendering.
    pub fn label(&self) -> String {
        format!("{}.{}/{}", self.table, self.column, self.model)
    }
}

/// Cumulative counters of the manager's activity, observable by tests and
/// benchmarks (the "zero HNSW inserts on a warm run" guarantee is asserted
/// through [`IndexManagerStats::builds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexManagerStats {
    /// Number of indexes built (cache misses).
    pub builds: u64,
    /// Number of lookups served by an already-built index.
    pub hits: u64,
    /// Number of indexes dropped by table re-registration.
    pub invalidations: u64,
    /// Number of indexes evicted by the memory budget (LRU).
    pub evictions: u64,
    /// Number of indexes currently resident.
    pub resident: usize,
    /// Total bytes held by resident indexes.
    pub memory_bytes: usize,
}

/// One resident index plus its LRU clock stamp and (immutable) size,
/// computed once at insert so budget enforcement and stats never re-walk
/// the graph.
struct CachedIndex {
    index: Arc<HnswIndex>,
    bytes: usize,
    last_used: AtomicU64,
}

/// The session-owned cache of built [`HnswIndex`] handles.
#[derive(Default)]
pub struct IndexManager {
    indexes: RwLock<HashMap<IndexKey, CachedIndex>>,
    budget: RwLock<Option<usize>>,
    builds: AtomicU64,
    hits: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    clock: AtomicU64,
}

impl std::fmt::Debug for IndexManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("IndexManager")
            .field("resident", &stats.resident)
            .field("memory_bytes", &stats.memory_bytes)
            .field("builds", &stats.builds)
            .field("hits", &stats.hits)
            .field("invalidations", &stats.invalidations)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

/// Parses a human-friendly byte budget: plain bytes, with an optional
/// trailing `b` and an optional `k` / `m` / `g` binary multiplier
/// (`"64m"`, `"512kb"`, `"2g"`, `"1048576"`).
pub fn parse_budget(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    let t = t.strip_suffix('b').unwrap_or(&t);
    let (digits, multiplier) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(prefix) => {
            let mult = match t.chars().last() {
                Some('k') => 1usize << 10,
                Some('m') => 1usize << 20,
                _ => 1usize << 30,
            };
            (prefix, mult)
        }
        None => (t, 1usize),
    };
    digits
        .trim()
        .parse::<usize>()
        .ok()
        .map(|n| n.saturating_mul(multiplier))
}

impl IndexManager {
    /// Creates an empty manager.  The memory budget defaults to unlimited,
    /// or to `CEJ_INDEX_BUDGET` when the environment variable is set.
    pub fn new() -> Self {
        let manager = Self::default();
        if let Some(budget) = std::env::var("CEJ_INDEX_BUDGET")
            .ok()
            .and_then(|s| parse_budget(&s))
        {
            *manager.budget.write() = Some(budget);
        }
        manager
    }

    /// Sets (or clears) the resident-memory budget in bytes and immediately
    /// evicts down to it.  A single index larger than the budget stays
    /// resident while in use — evicting it would only force a rebuild loop.
    pub fn set_budget(&self, bytes: Option<usize>) {
        *self.budget.write() = bytes;
        let mut write = self.indexes.write();
        self.enforce_budget(&mut write, None);
    }

    /// The configured resident-memory budget, if any.
    pub fn budget(&self) -> Option<usize> {
        *self.budget.read()
    }

    /// Whether an index for `key` is resident.
    pub fn contains(&self, key: &IndexKey) -> bool {
        self.indexes.read().contains_key(key)
    }

    /// The resident index for `key`, if any (does not count as a hit, but
    /// refreshes the entry's LRU position).
    pub fn get(&self, key: &IndexKey) -> Option<Arc<HnswIndex>> {
        let read = self.indexes.read();
        read.get(key).map(|entry| {
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            entry.index.clone()
        })
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Returns the resident index for `key`, building (and caching) it with
    /// `build` on a miss.  The boolean is `true` when the index was built by
    /// this call.  Inserting over budget evicts least-recently-used entries
    /// (never the one being returned).
    ///
    /// The build runs outside the lock; if two threads race on the same key
    /// the first inserted handle wins and both callers observe it.
    ///
    /// # Errors
    /// Propagates errors from `build`.
    pub fn get_or_build(
        &self,
        key: &IndexKey,
        build: impl FnOnce() -> Result<HnswIndex>,
    ) -> Result<(Arc<HnswIndex>, bool)> {
        let (index, built, _) = self.get_or_build_tracked(key, build)?;
        Ok((index, built))
    }

    /// [`IndexManager::get_or_build`] plus the number of LRU evictions this
    /// very call performed, so executions on a shared manager can attribute
    /// evictions run-locally instead of diffing the global counter (which
    /// would blame one run for a concurrent run's evictions).
    ///
    /// # Errors
    /// Propagates errors from `build`.
    pub fn get_or_build_tracked(
        &self,
        key: &IndexKey,
        build: impl FnOnce() -> Result<HnswIndex>,
    ) -> Result<(Arc<HnswIndex>, bool, u64)> {
        if let Some(entry) = self.indexes.read().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            return Ok((entry.index.clone(), false, 0));
        }
        let built = Arc::new(build()?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let tick = self.tick();
        let mut write = self.indexes.write();
        let entry = write.entry(key.clone()).or_insert_with(|| CachedIndex {
            bytes: built.memory_bytes(),
            index: built.clone(),
            last_used: AtomicU64::new(0),
        });
        entry.last_used.store(tick, Ordering::Relaxed);
        let resident = entry.index.clone();
        let evicted = self.enforce_budget(&mut write, Some(key));
        Ok((resident, true, evicted))
    }

    /// Evicts least-recently-used entries until the resident set fits the
    /// budget, returning how many were evicted.  `protect` (the entry being
    /// handed out right now) is never evicted, so a single over-budget index
    /// still serves its query.
    fn enforce_budget(
        &self,
        write: &mut HashMap<IndexKey, CachedIndex>,
        protect: Option<&IndexKey>,
    ) -> u64 {
        let Some(budget) = *self.budget.read() else {
            return 0;
        };
        let mut total: usize = write.values().map(|e| e.bytes).sum();
        let mut evicted = 0u64;
        while total > budget {
            let victim = write
                .iter()
                .filter(|(key, _)| Some(*key) != protect)
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(key, entry)| (key.clone(), entry.bytes));
            match victim {
                Some((key, bytes)) => {
                    write.remove(&key);
                    total -= bytes;
                    evicted += 1;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // only the protected entry remains
            }
        }
        evicted
    }

    /// Drops every index over `table` (called when the table is
    /// re-registered, because resident graphs embed the old rows).  Returns
    /// the number of indexes dropped.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.invalidate_where(|key| key.table == table)
    }

    /// Drops every index built with `model` (called when the model is
    /// re-registered, because resident graphs hold the old model's vectors).
    /// Returns the number of indexes dropped.
    pub fn invalidate_model(&self, model: &str) -> usize {
        self.invalidate_where(|key| key.model == model)
    }

    fn invalidate_where(&self, stale: impl Fn(&IndexKey) -> bool) -> usize {
        let mut write = self.indexes.write();
        let before = write.len();
        write.retain(|key, _| !stale(key));
        let dropped = before - write.len();
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drops every resident index (counters are retained).
    pub fn clear(&self) {
        self.indexes.write().clear();
    }

    /// Current counters plus the resident index count and memory footprint
    /// (an O(residents) integer sum — per-index sizes are cached at insert).
    pub fn stats(&self) -> IndexManagerStats {
        let read = self.indexes.read();
        IndexManagerStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: read.len(),
            memory_bytes: read.values().map(|e| e.bytes).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_workload::clustered_matrix;

    fn key(table: &str) -> IndexKey {
        IndexKey::new(table, "word", "ft", HnswParams::tiny())
    }

    fn build_small() -> Result<HnswIndex> {
        let (vectors, _) = clustered_matrix(40, 8, 4, 0.05, 3);
        HnswIndex::build(vectors, HnswParams::tiny()).map_err(crate::CoreError::from)
    }

    #[test]
    fn build_once_then_hit() {
        let manager = IndexManager::new();
        assert!(!manager.contains(&key("t")));
        let (first, built) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(built);
        let (second, built_again) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(!built_again);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = manager.stats();
        assert_eq!((stats.builds, stats.hits, stats.resident), (1, 1, 1));
        assert!(stats.memory_bytes > 0);
        assert!(manager.get(&key("t")).is_some());
    }

    #[test]
    fn distinct_keys_build_distinct_indexes() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        let other_params = IndexKey::new("a", "word", "ft", HnswParams::tiny().with_ef_search(99));
        manager.get_or_build(&other_params, build_small).unwrap();
        assert_eq!(manager.stats().resident, 3);
        assert_eq!(manager.stats().builds, 3);
    }

    #[test]
    fn invalidation_is_per_table() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.invalidate_table("a"), 1);
        assert!(!manager.contains(&key("a")));
        assert!(manager.contains(&key("b")));
        assert_eq!(manager.stats().invalidations, 1);
        // rebuilding after invalidation is a fresh build
        let (_, built) = manager.get_or_build(&key("a"), build_small).unwrap();
        assert!(built);
        assert_eq!(manager.stats().builds, 3);
        manager.clear();
        assert_eq!(manager.stats().resident, 0);
        assert_eq!(manager.stats().builds, 3, "clear keeps counters");
    }

    #[test]
    fn build_errors_are_not_cached() {
        let manager = IndexManager::new();
        let err = manager.get_or_build(&key("t"), || {
            Err(crate::CoreError::InvalidInput("boom".into()))
        });
        assert!(err.is_err());
        assert!(!manager.contains(&key("t")));
        assert_eq!(manager.stats().builds, 0);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        let one_index = manager.stats().memory_bytes;
        assert!(one_index > 0);
        // room for two indexes but not three
        manager.set_budget(Some(one_index * 2 + one_index / 2));
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.stats().resident, 2);
        // touch "a" so "b" becomes the LRU victim
        assert!(manager.get(&key("a")).is_some());
        manager.get_or_build(&key("c"), build_small).unwrap();
        let stats = manager.stats();
        assert_eq!(stats.resident, 2, "third build must evict one");
        assert_eq!(stats.evictions, 1);
        assert!(manager.contains(&key("a")), "recently used survives");
        assert!(!manager.contains(&key("b")), "LRU entry evicted");
        assert!(manager.contains(&key("c")), "new entry resident");
        assert!(stats.memory_bytes <= manager.budget().unwrap());
    }

    #[test]
    fn over_budget_single_index_stays_resident() {
        let manager = IndexManager::new();
        manager.set_budget(Some(1));
        let (_, built) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(built);
        // the only (protected) index survives even though it exceeds the budget
        assert_eq!(manager.stats().resident, 1);
        // the next build for a different key evicts the now-unprotected one
        manager.get_or_build(&key("u"), build_small).unwrap();
        let stats = manager.stats();
        assert_eq!(stats.resident, 1);
        assert!(manager.contains(&key("u")));
        assert!(stats.evictions >= 1);
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.stats().resident, 2);
        manager.set_budget(Some(1));
        assert_eq!(manager.stats().resident, 0, "no protected entry here");
        manager.set_budget(None);
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.stats().resident, 2, "unlimited again");
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(parse_budget("1024"), Some(1024));
        assert_eq!(parse_budget("64k"), Some(64 << 10));
        assert_eq!(parse_budget("64kb"), Some(64 << 10));
        assert_eq!(parse_budget(" 2M "), Some(2 << 20));
        assert_eq!(parse_budget("1g"), Some(1 << 30));
        assert_eq!(parse_budget("1GB"), Some(1 << 30));
        assert_eq!(parse_budget("nope"), None);
        assert_eq!(parse_budget(""), None);
        assert_eq!(parse_budget("k"), None);
    }
}
