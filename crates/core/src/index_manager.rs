//! Session-owned registry of persistent HNSW indexes.
//!
//! The paper's index-join analysis (Section IV-B) charges the HNSW build
//! cost against the probe path only "when no index exists" — which assumes an
//! engine that can *keep* an index across queries.  [`IndexManager`] is that
//! piece: it caches built [`HnswIndex`] handles keyed by
//! [`IndexKey`] `(table, column, model, params)` so a prepared query probes
//! the same graph on every execution instead of rebuilding it, and it
//! invalidates all indexes of a table when the table is re-registered.
//!
//! All methods take `&self` (interior mutability) so the cache can be shared
//! between a session and any number of live
//! [`crate::prepared::PreparedQuery`] handles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cej_index::{HnswIndex, HnswParams};
use parking_lot::RwLock;

use crate::Result;

/// Identity of a persistent index: which base-table column it covers, under
/// which embedding model, built with which HNSW parameters.
///
/// Two queries share an index handle exactly when all four components agree;
/// [`HnswParams`] is part of the key because both the graph structure
/// (`M`, `efConstruction`, metric, seed) and the probe behaviour
/// (`efSearch`, beam width) are baked into a built [`HnswIndex`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey {
    /// Catalog name of the indexed base table.
    pub table: String,
    /// The context-rich string column the embeddings were derived from.
    pub column: String,
    /// Name of the embedding model in the session's registry.
    pub model: String,
    /// HNSW build/search parameters.
    pub params: HnswParams,
}

impl IndexKey {
    /// Creates a key.
    pub fn new(table: &str, column: &str, model: &str, params: HnswParams) -> Self {
        Self {
            table: table.to_string(),
            column: column.to_string(),
            model: model.to_string(),
            params,
        }
    }

    /// Short `table.column/model` label for plan rendering.
    pub fn label(&self) -> String {
        format!("{}.{}/{}", self.table, self.column, self.model)
    }
}

/// Cumulative counters of the manager's activity, observable by tests and
/// benchmarks (the "zero HNSW inserts on a warm run" guarantee is asserted
/// through [`IndexManagerStats::builds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexManagerStats {
    /// Number of indexes built (cache misses).
    pub builds: u64,
    /// Number of lookups served by an already-built index.
    pub hits: u64,
    /// Number of indexes dropped by table re-registration.
    pub invalidations: u64,
    /// Number of indexes currently resident.
    pub resident: usize,
}

/// The session-owned cache of built [`HnswIndex`] handles.
#[derive(Default)]
pub struct IndexManager {
    indexes: RwLock<HashMap<IndexKey, Arc<HnswIndex>>>,
    builds: AtomicU64,
    hits: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for IndexManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("IndexManager")
            .field("resident", &stats.resident)
            .field("builds", &stats.builds)
            .field("hits", &stats.hits)
            .field("invalidations", &stats.invalidations)
            .finish()
    }
}

impl IndexManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether an index for `key` is resident.
    pub fn contains(&self, key: &IndexKey) -> bool {
        self.indexes.read().contains_key(key)
    }

    /// The resident index for `key`, if any (does not count as a hit).
    pub fn get(&self, key: &IndexKey) -> Option<Arc<HnswIndex>> {
        self.indexes.read().get(key).cloned()
    }

    /// Returns the resident index for `key`, building (and caching) it with
    /// `build` on a miss.  The boolean is `true` when the index was built by
    /// this call.
    ///
    /// The build runs outside the lock; if two threads race on the same key
    /// the first inserted handle wins and both callers observe it.
    ///
    /// # Errors
    /// Propagates errors from `build`.
    pub fn get_or_build(
        &self,
        key: &IndexKey,
        build: impl FnOnce() -> Result<HnswIndex>,
    ) -> Result<(Arc<HnswIndex>, bool)> {
        if let Some(index) = self.indexes.read().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((index.clone(), false));
        }
        let built = Arc::new(build()?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut write = self.indexes.write();
        let resident = write.entry(key.clone()).or_insert_with(|| built.clone());
        Ok((resident.clone(), true))
    }

    /// Drops every index over `table` (called when the table is
    /// re-registered, because resident graphs embed the old rows).  Returns
    /// the number of indexes dropped.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.invalidate_where(|key| key.table == table)
    }

    /// Drops every index built with `model` (called when the model is
    /// re-registered, because resident graphs hold the old model's vectors).
    /// Returns the number of indexes dropped.
    pub fn invalidate_model(&self, model: &str) -> usize {
        self.invalidate_where(|key| key.model == model)
    }

    fn invalidate_where(&self, stale: impl Fn(&IndexKey) -> bool) -> usize {
        let mut write = self.indexes.write();
        let before = write.len();
        write.retain(|key, _| !stale(key));
        let dropped = before - write.len();
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drops every resident index (counters are retained).
    pub fn clear(&self) {
        self.indexes.write().clear();
    }

    /// Current counters plus the resident index count.
    pub fn stats(&self) -> IndexManagerStats {
        IndexManagerStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            resident: self.indexes.read().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_workload::clustered_matrix;

    fn key(table: &str) -> IndexKey {
        IndexKey::new(table, "word", "ft", HnswParams::tiny())
    }

    fn build_small() -> Result<HnswIndex> {
        let (vectors, _) = clustered_matrix(40, 8, 4, 0.05, 3);
        HnswIndex::build(vectors, HnswParams::tiny()).map_err(crate::CoreError::from)
    }

    #[test]
    fn build_once_then_hit() {
        let manager = IndexManager::new();
        assert!(!manager.contains(&key("t")));
        let (first, built) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(built);
        let (second, built_again) = manager.get_or_build(&key("t"), build_small).unwrap();
        assert!(!built_again);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = manager.stats();
        assert_eq!((stats.builds, stats.hits, stats.resident), (1, 1, 1));
        assert!(manager.get(&key("t")).is_some());
    }

    #[test]
    fn distinct_keys_build_distinct_indexes() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        let other_params = IndexKey::new("a", "word", "ft", HnswParams::tiny().with_ef_search(99));
        manager.get_or_build(&other_params, build_small).unwrap();
        assert_eq!(manager.stats().resident, 3);
        assert_eq!(manager.stats().builds, 3);
    }

    #[test]
    fn invalidation_is_per_table() {
        let manager = IndexManager::new();
        manager.get_or_build(&key("a"), build_small).unwrap();
        manager.get_or_build(&key("b"), build_small).unwrap();
        assert_eq!(manager.invalidate_table("a"), 1);
        assert!(!manager.contains(&key("a")));
        assert!(manager.contains(&key("b")));
        assert_eq!(manager.stats().invalidations, 1);
        // rebuilding after invalidation is a fresh build
        let (_, built) = manager.get_or_build(&key("a"), build_small).unwrap();
        assert!(built);
        assert_eq!(manager.stats().builds, 3);
        manager.clear();
        assert_eq!(manager.stats().resident, 0);
        assert_eq!(manager.stats().builds, 3, "clear keeps counters");
    }

    #[test]
    fn build_errors_are_not_cached() {
        let manager = IndexManager::new();
        let err = manager.get_or_build(&key("t"), || {
            Err(crate::CoreError::InvalidInput("boom".into()))
        });
        assert!(err.is_err());
        assert!(!manager.contains(&key("t")));
        assert_eq!(manager.stats().builds, 0);
    }
}
