//! Vectorized (batch-at-a-time) execution of [`PhysicalPlan`] trees.
//!
//! This is the MonetDB/X100-style pull model the row executor's
//! materialize-everything strategy is refactored into: operators exchange
//! fixed-size **column batches** (default [`DEFAULT_BATCH_ROWS`] rows)
//! carrying a selection vector over a shared, immutable base table.
//!
//! * `TableScan` emits zero-copy windows over the catalog's `Arc<Table>` —
//!   no per-run deep clone of the base table.
//! * `Filter` refines the selection vector in place
//!   ([`cej_relational::eval::evaluate_predicate_select`], with the
//!   `filter_cmp` kernel fast path) — survivors are *marked*, never copied.
//! * `Project` is metadata-only: it narrows the visible-column set.
//! * `Embed` gathers only the selected lanes and embeds them in one
//!   `embed_batch_counted` call per batch.
//! * Joins consume batches on the probe side: the inner relation is
//!   embedded (and for the tensor path, normalised) once, then every outer
//!   batch is scored against it ([`TensorJoin::join_prenormalized`], HNSW
//!   `probe_join`, or the NLJ variants) and pair offsets are remapped by the
//!   batch's cumulative offset.
//!
//! The load-bearing invariant: results are **byte-identical** to the row
//! executor for every plan shape, join strategy, and batch size — same rows,
//! same order, same similarity bits, same per-operator row actuals.  The
//! per-operator actual-row accounting counts *selected lanes*, never
//! batches, so `explain_analyze` q-errors are unchanged.

use std::sync::Arc;
use std::time::Instant;

use cej_index::HnswIndex;
use cej_relational::{
    eval::{evaluate_predicate, evaluate_predicate_select},
    EmbedSpec, Expr,
};
use cej_storage::{BatchView, Column, SelectionBitmap, StorageError, Table, DEFAULT_BATCH_ROWS};
use cej_vector::norm::normalize_matrix_rows_with;

use crate::error::CoreError;
use crate::executor::{materialize_output, ExecContext, ExecOutcome, RunEmbedder, RunStats};
use crate::join::hash_join::{rename_columns, HashSide};
use crate::join::index_join::IndexJoin;
use crate::join::naive_nlj::NaiveNlJoin;
use crate::join::prefetch_nlj::PrefetchNlJoin;
use crate::join::tensor_join::TensorJoin;
use crate::join::{check_predicate, embed_all};
use crate::physical_plan::{HashJoinNode, InnerInput, JoinNode, PhysicalJoinOp, PhysicalPlan};
use crate::result::{JoinPair, JoinResult, JoinStats};
use crate::Result;

/// Which executor runs a [`PhysicalPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The legacy materialize-everything row executor (kept as the reference
    /// implementation for equivalence tests and the `exec_model` benchmark).
    Row,
    /// The vectorized pull executor: operators exchange `batch_rows`-sized
    /// column batches with selection vectors.
    Batch {
        /// Rows per batch handed between operators (must be > 0).
        batch_rows: usize,
    },
}

impl Default for ExecMode {
    /// Batch execution with [`DEFAULT_BATCH_ROWS`] rows per batch, overridable
    /// via the `CEJ_BATCH_ROWS` environment variable.
    fn default() -> Self {
        let batch_rows = std::env::var("CEJ_BATCH_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_BATCH_ROWS);
        ExecMode::Batch { batch_rows }
    }
}

/// A batch in flight: a selection vector plus a visible-column set over a
/// shared base table.  `sel` holds absolute row indices into `base`
/// (ascending within a pipeline); `visible` holds base schema positions in
/// output order.  Nothing is copied until a materialising boundary gathers
/// the surviving lanes.
struct ExecBatch {
    base: Arc<Table>,
    sel: Vec<u32>,
    visible: Vec<usize>,
}

/// One operator of the batch pipeline.  `slot` is the operator's pre-order
/// position in the executor's actual-row vector — the same order
/// `explain_analyze` renders operators in.
enum BatchOp<'p> {
    Scan {
        slot: usize,
        name: &'p str,
        table: Option<Arc<Table>>,
        cursor: usize,
        emitted: bool,
    },
    Filter {
        slot: usize,
        predicate: &'p Expr,
        input: Box<BatchOp<'p>>,
    },
    Project {
        slot: usize,
        columns: &'p [String],
        input: Box<BatchOp<'p>>,
    },
    Embed {
        slot: usize,
        spec: &'p EmbedSpec,
        input: Box<BatchOp<'p>>,
    },
    /// A join is a pipeline breaker: on first pull it streams its outer
    /// pipeline through the probe side, materialises the joined table, then
    /// re-emits it as batches for any operators above.
    JoinSource {
        slot: usize,
        node: &'p JoinNode,
        outer: Option<Box<BatchOp<'p>>>,
        inner: Option<Box<BatchOp<'p>>>,
        result: Option<Arc<Table>>,
        cursor: usize,
        emitted: bool,
    },
    /// The relational hash equi-join: the right pipeline is drained once into
    /// a built hash side, then left (probe) batches stream against it; the
    /// accumulated output re-emits as batches for the operators above.
    HashJoinSource {
        slot: usize,
        node: &'p HashJoinNode,
        left: Option<Box<BatchOp<'p>>>,
        right: Option<Box<BatchOp<'p>>>,
        result: Option<Arc<Table>>,
        cursor: usize,
        emitted: bool,
    },
    /// Generalised projection: gathers each batch and re-emits it with
    /// columns selected, renamed, and reordered.
    Rename {
        slot: usize,
        columns: &'p [(String, String)],
        input: Box<BatchOp<'p>>,
    },
}

/// Builds the operator pipeline, assigning pre-order slots that line up with
/// the row executor's `operator_rows` protocol (join claims its slot, then
/// the outer subtree, then the inner subtree when it is a plan).
fn build_pipeline<'p>(plan: &'p PhysicalPlan, next_slot: &mut usize) -> BatchOp<'p> {
    let slot = *next_slot;
    *next_slot += 1;
    match plan {
        PhysicalPlan::TableScan { table, .. } => BatchOp::Scan {
            slot,
            name: table,
            table: None,
            cursor: 0,
            emitted: false,
        },
        PhysicalPlan::Filter {
            predicate, input, ..
        } => BatchOp::Filter {
            slot,
            predicate,
            input: Box::new(build_pipeline(input, next_slot)),
        },
        PhysicalPlan::Project { columns, input, .. } => BatchOp::Project {
            slot,
            columns,
            input: Box::new(build_pipeline(input, next_slot)),
        },
        PhysicalPlan::Embed { spec, input, .. } => BatchOp::Embed {
            slot,
            spec,
            input: Box::new(build_pipeline(input, next_slot)),
        },
        PhysicalPlan::Join(node) => {
            let outer = Box::new(build_pipeline(&node.outer, next_slot));
            let inner = match &node.inner {
                InnerInput::Plan(inner) => Some(Box::new(build_pipeline(inner, next_slot))),
                InnerInput::Indexed(_) => None,
            };
            BatchOp::JoinSource {
                slot,
                node,
                outer: Some(outer),
                inner,
                result: None,
                cursor: 0,
                emitted: false,
            }
        }
        PhysicalPlan::HashJoin(node) => {
            let left = Box::new(build_pipeline(&node.left, next_slot));
            let right = Box::new(build_pipeline(&node.right, next_slot));
            BatchOp::HashJoinSource {
                slot,
                node,
                left: Some(left),
                right: Some(right),
                result: None,
                cursor: 0,
                emitted: false,
            }
        }
        PhysicalPlan::Rename { columns, input, .. } => BatchOp::Rename {
            slot,
            columns,
            input: Box::new(build_pipeline(input, next_slot)),
        },
    }
}

impl BatchOp<'_> {
    /// Pulls the next batch, or `None` when the operator is exhausted.  Every
    /// pipeline emits at least one batch (possibly empty) so schemas
    /// propagate even for zero-row inputs.
    fn next_batch(
        &mut self,
        ctx: &ExecContext<'_>,
        batch_rows: usize,
        stats: &mut RunStats,
        operator_rows: &mut [u64],
    ) -> Result<Option<ExecBatch>> {
        match self {
            BatchOp::Scan {
                slot,
                name,
                table,
                cursor,
                emitted,
            } => {
                if table.is_none() {
                    *table = Some(ctx.catalog.table(name).map_err(CoreError::from)?);
                }
                let base = table.as_ref().expect("resolved above").clone();
                let rows = base.num_rows();
                if *cursor >= rows {
                    if !*emitted {
                        *emitted = true;
                        return Ok(Some(ExecBatch {
                            visible: (0..base.num_columns()).collect(),
                            sel: Vec::new(),
                            base,
                        }));
                    }
                    return Ok(None);
                }
                let end = (*cursor + batch_rows).min(rows);
                let sel: Vec<u32> = (*cursor as u32..end as u32).collect();
                *cursor = end;
                *emitted = true;
                operator_rows[*slot] += sel.len() as u64;
                Ok(Some(ExecBatch {
                    visible: (0..base.num_columns()).collect(),
                    sel,
                    base,
                }))
            }
            BatchOp::Filter {
                slot,
                predicate,
                input,
            } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, operator_rows)? else {
                    return Ok(None);
                };
                let refined = filter_batch(predicate, &batch)?;
                operator_rows[*slot] += refined.len() as u64;
                Ok(Some(ExecBatch {
                    base: batch.base,
                    sel: refined,
                    visible: batch.visible,
                }))
            }
            BatchOp::Project {
                slot,
                columns,
                input,
            } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, operator_rows)? else {
                    return Ok(None);
                };
                let mut visible = Vec::with_capacity(columns.len());
                for name in columns.iter() {
                    visible.push(visible_position(&batch, name)?);
                }
                operator_rows[*slot] += batch.sel.len() as u64;
                Ok(Some(ExecBatch {
                    base: batch.base,
                    sel: batch.sel,
                    visible,
                }))
            }
            BatchOp::Embed { slot, spec, input } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, operator_rows)? else {
                    return Ok(None);
                };
                let cache = ctx.embeddings.cache(&spec.model, ctx.registry)?;
                let run = RunEmbedder::new(cache.as_ref());
                let pos = visible_position(&batch, &spec.input_column)?;
                let strings = batch.base.column(pos).map_err(CoreError::from)?.as_utf8()?;
                // embed exactly the selected lanes, one batch call
                let selected: Vec<String> = batch
                    .sel
                    .iter()
                    .map(|&lane| strings[lane as usize].clone())
                    .collect();
                let matrix = embed_all(&run, &selected)?;
                let delta = run.stats();
                stats.embedding_stats.model_calls += delta.model_calls;
                stats.embedding_stats.cache_hits += delta.cache_hits;
                let gathered = gather_batch(&batch)?;
                let out = gathered
                    .with_column(&spec.output_column, Column::Vector(matrix))
                    .map_err(CoreError::from)?;
                let base = Arc::new(out);
                let rows = base.num_rows();
                operator_rows[*slot] += rows as u64;
                Ok(Some(ExecBatch {
                    sel: (0..rows as u32).collect(),
                    visible: (0..base.num_columns()).collect(),
                    base,
                }))
            }
            BatchOp::JoinSource {
                slot,
                node,
                outer,
                inner,
                result,
                cursor,
                emitted,
            } => {
                if result.is_none() {
                    let mut outer_op = *outer.take().expect("join executes once");
                    let inner_op = inner.take();
                    let table = execute_join_batched(
                        node,
                        &mut outer_op,
                        inner_op,
                        ctx,
                        batch_rows,
                        stats,
                        operator_rows,
                    )?;
                    operator_rows[*slot] += table.num_rows() as u64;
                    *result = Some(Arc::new(table));
                }
                let base = result.as_ref().expect("materialised above").clone();
                let rows = base.num_rows();
                if *cursor >= rows {
                    if !*emitted {
                        *emitted = true;
                        return Ok(Some(ExecBatch {
                            visible: (0..base.num_columns()).collect(),
                            sel: Vec::new(),
                            base,
                        }));
                    }
                    return Ok(None);
                }
                let end = (*cursor + batch_rows).min(rows);
                let sel: Vec<u32> = (*cursor as u32..end as u32).collect();
                *cursor = end;
                *emitted = true;
                Ok(Some(ExecBatch {
                    visible: (0..base.num_columns()).collect(),
                    sel,
                    base,
                }))
            }
            BatchOp::HashJoinSource {
                slot,
                node,
                left,
                right,
                result,
                cursor,
                emitted,
            } => {
                if result.is_none() {
                    let mut left_op = *left.take().expect("join executes once");
                    let mut right_op = *right.take().expect("join executes once");
                    // Build once from the drained right pipeline...
                    let build_table = drain(&mut right_op, ctx, batch_rows, stats, operator_rows)?;
                    let side = HashSide::build(build_table, &node.right_column)?;
                    // ...then stream probe batches against it.  Matches stay
                    // in probe-row order because batches arrive in row order.
                    let mut parts: Vec<Table> = Vec::new();
                    while let Some(batch) =
                        left_op.next_batch(ctx, batch_rows, stats, operator_rows)?
                    {
                        let gathered = gather_batch(&batch)?;
                        parts.push(side.probe(&gathered, &node.left_column)?);
                    }
                    let refs: Vec<&Table> = parts.iter().collect();
                    let table = Table::concat(&refs).map_err(CoreError::from)?;
                    operator_rows[*slot] += table.num_rows() as u64;
                    *result = Some(Arc::new(table));
                }
                let base = result.as_ref().expect("materialised above").clone();
                let rows = base.num_rows();
                if *cursor >= rows {
                    if !*emitted {
                        *emitted = true;
                        return Ok(Some(ExecBatch {
                            visible: (0..base.num_columns()).collect(),
                            sel: Vec::new(),
                            base,
                        }));
                    }
                    return Ok(None);
                }
                let end = (*cursor + batch_rows).min(rows);
                let sel: Vec<u32> = (*cursor as u32..end as u32).collect();
                *cursor = end;
                *emitted = true;
                Ok(Some(ExecBatch {
                    visible: (0..base.num_columns()).collect(),
                    sel,
                    base,
                }))
            }
            BatchOp::Rename {
                slot,
                columns,
                input,
            } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, operator_rows)? else {
                    return Ok(None);
                };
                let gathered = gather_batch(&batch)?;
                let out = rename_columns(&gathered, columns)?;
                let base = Arc::new(out);
                let rows = base.num_rows();
                operator_rows[*slot] += rows as u64;
                Ok(Some(ExecBatch {
                    sel: (0..rows as u32).collect(),
                    visible: (0..base.num_columns()).collect(),
                    base,
                }))
            }
        }
    }
}

/// Resolves a column name against the batch's *visible* set (hidden base
/// columns must not leak), mirroring the row path's `ColumnNotFound`.
fn visible_position(batch: &ExecBatch, name: &str) -> Result<usize> {
    let fields = batch.base.schema().fields();
    batch
        .visible
        .iter()
        .copied()
        .find(|&i| fields[i].name == name)
        .ok_or_else(|| CoreError::from(StorageError::ColumnNotFound(name.to_string())))
}

/// Applies a filter predicate to a batch, returning the refined selection.
fn filter_batch(predicate: &Expr, batch: &ExecBatch) -> Result<Vec<u32>> {
    if batch.sel.is_empty() {
        // the row path evaluates nothing over an empty input
        return Ok(Vec::new());
    }
    let mut names = Vec::new();
    expr_columns(predicate, &mut names);
    let fields = batch.base.schema().fields();
    let all_visible = names
        .iter()
        .all(|n| batch.visible.iter().any(|&i| fields[i].name == *n));
    if all_visible {
        // every referenced column is visible: evaluating against the base
        // table over the selected lanes is exactly what the row path sees
        evaluate_predicate_select(predicate, &batch.base, &batch.sel).map_err(CoreError::from)
    } else {
        // a referenced column is hidden or missing: gather the visible lanes
        // and replicate the row path bit for bit, including its short-circuit
        // semantics (an unknown column behind a false AND arm is no error)
        let gathered = gather_batch(batch)?;
        let bitmap = evaluate_predicate(predicate, &gathered).map_err(CoreError::from)?;
        Ok(bitmap
            .selected_indices()
            .into_iter()
            .map(|i| batch.sel[i])
            .collect())
    }
}

/// Collects every column name an expression references.
fn expr_columns<'e>(expr: &'e Expr, out: &mut Vec<&'e str>) {
    match expr {
        Expr::And(a, b) | Expr::Or(a, b) => {
            expr_columns(a, out);
            expr_columns(b, out);
        }
        Expr::Not(inner) => expr_columns(inner, out),
        Expr::Compare { left, right, .. } => {
            expr_columns(left, out);
            expr_columns(right, out);
        }
        Expr::Column(name) => out.push(name),
        Expr::Literal(_) => {}
    }
}

/// Materialises a batch: visible columns, selected lanes.  When the batch is
/// the whole base table the `Arc` contents are cloned directly (the same
/// single copy the row path pays).
fn gather_batch(batch: &ExecBatch) -> Result<Table> {
    let whole_table = batch
        .visible
        .iter()
        .copied()
        .eq(0..batch.base.num_columns())
        && batch.sel.len() == batch.base.num_rows()
        && batch
            .sel
            .iter()
            .copied()
            .eq(0..batch.base.num_rows() as u32);
    if whole_table {
        return Ok(batch.base.as_ref().clone());
    }
    let view = BatchView::new(&batch.base, &batch.sel, &batch.visible).map_err(CoreError::from)?;
    view.gather().map_err(CoreError::from)
}

/// Reassembles drained batches into one table.  Batches that share a base
/// and visible set collapse into a single gather; heterogeneous batches
/// (e.g. per-batch `Embed` outputs) are gathered individually and
/// concatenated.
fn finalize(batches: Vec<ExecBatch>) -> Result<Table> {
    let Some(first) = batches.first() else {
        // every pipeline emits at least one batch; defensive only
        return Ok(Table::empty());
    };
    let same_base = batches
        .iter()
        .all(|b| Arc::ptr_eq(&b.base, &first.base) && b.visible == first.visible);
    if same_base {
        let total = batches.iter().map(|b| b.sel.len()).sum();
        let mut sel: Vec<u32> = Vec::with_capacity(total);
        for b in &batches {
            sel.extend_from_slice(&b.sel);
        }
        let merged = ExecBatch {
            base: first.base.clone(),
            sel,
            visible: first.visible.clone(),
        };
        return gather_batch(&merged);
    }
    let parts: Vec<Table> = batches
        .iter()
        .map(gather_batch)
        .collect::<Result<Vec<_>>>()?;
    let refs: Vec<&Table> = parts.iter().collect();
    Table::concat(&refs).map_err(CoreError::from)
}

/// Drains a pipeline to a materialised table (pipeline-breaker boundary).
fn drain(
    op: &mut BatchOp<'_>,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
    stats: &mut RunStats,
    operator_rows: &mut [u64],
) -> Result<Table> {
    let mut batches = Vec::new();
    while let Some(batch) = op.next_batch(ctx, batch_rows, stats, operator_rows)? {
        batches.push(batch);
    }
    finalize(batches)
}

/// The per-batch probe strategy of a join: everything inner-side is prepared
/// once, then reused by every outer batch.
enum Probe {
    Naive {
        right: Vec<String>,
    },
    Prefetch {
        join: PrefetchNlJoin,
        inner: cej_vector::Matrix,
    },
    Tensor {
        join: TensorJoin,
        inner_norm: cej_vector::Matrix,
    },
    Hnsw {
        join: IndexJoin,
        index: Arc<HnswIndex>,
        inner_filter: Option<SelectionBitmap>,
    },
}

/// Accumulates per-batch join statistics the way a single whole-input call
/// would have: additive counters sum, probe stats merge, peaks take the max.
fn merge_stats(acc: &mut JoinStats, part: &JoinStats) {
    acc.pairs_compared += part.pairs_compared;
    acc.blocks_computed += part.blocks_computed;
    acc.probe_stats.merge(&part.probe_stats);
    acc.peak_buffer_bytes = acc.peak_buffer_bytes.max(part.peak_buffer_bytes);
}

/// Executes a join node batch-at-a-time: materialise the inner side once,
/// then stream outer batches through the probe, remapping pair offsets by
/// each batch's cumulative position.
fn execute_join_batched(
    node: &JoinNode,
    outer: &mut BatchOp<'_>,
    mut inner: Option<Box<BatchOp<'_>>>,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
    stats: &mut RunStats,
    operator_rows: &mut [u64],
) -> Result<Table> {
    let start = Instant::now();

    // Materialise the inner subplan (if any) *before* snapshotting this
    // join's cache counters — nested joins and embeds inside it account for
    // their own model calls (same rule as the row path).
    let inner_table = match inner.as_mut() {
        Some(op) => Some(drain(op, ctx, batch_rows, stats, operator_rows)?),
        None => None,
    };

    let cache = ctx.embeddings.cache(&node.model, ctx.registry)?;
    let run = RunEmbedder::new(cache.as_ref());

    let (probe, right_view) = match (&node.op, &node.inner) {
        (PhysicalJoinOp::Index(config), InnerInput::Indexed(indexed)) => {
            // epoch first, then the table read (see the row path for why)
            let epoch = ctx.indexes.publication_epoch(&indexed.key);
            let base = ctx
                .catalog
                .table(&indexed.key.table)
                .map_err(CoreError::from)?;
            let inner_strings = base
                .column_by_name(&indexed.key.column)
                .map_err(CoreError::from)?
                .as_utf8()?;
            let join = IndexJoin::new(*config);
            let (index, built, evicted) =
                ctx.indexes
                    .get_or_build_tracked_from(epoch, &indexed.key, || {
                        let matrix = embed_all(&run, inner_strings)?;
                        join.build_index(&matrix)
                    })?;
            if built {
                stats.index_builds += 1;
            } else {
                stats.index_reuses += 1;
            }
            stats.index_evictions += evicted;

            let mut inner_filter: Option<SelectionBitmap> = None;
            for expr in &indexed.filters {
                let bitmap = evaluate_predicate(expr, &base).map_err(CoreError::from)?;
                inner_filter = Some(match inner_filter {
                    None => bitmap,
                    Some(acc) => acc.and(&bitmap).map_err(CoreError::from)?,
                });
            }
            let right_view = match &indexed.projection {
                Some(columns) => {
                    let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                    base.project(&names).map_err(CoreError::from)?
                }
                None => base.as_ref().clone(),
            };
            (
                Probe::Hnsw {
                    join,
                    index,
                    inner_filter,
                },
                right_view,
            )
        }
        (op, InnerInput::Plan(_)) => {
            let inner_table = inner_table.expect("materialised above");
            let right_strings: Vec<String> = inner_table
                .column_by_name(&node.right_column)
                .map_err(CoreError::from)?
                .as_utf8()?
                .to_vec();
            check_predicate(&node.predicate)?;
            let probe = match op {
                PhysicalJoinOp::NaiveNlj => Probe::Naive {
                    right: right_strings,
                },
                PhysicalJoinOp::PrefetchNlj(config) => {
                    let inner_matrix = embed_all(&run, &right_strings)?;
                    Probe::Prefetch {
                        join: PrefetchNlJoin::new(*config),
                        inner: inner_matrix,
                    }
                }
                PhysicalJoinOp::Tensor(config) => {
                    // the inner side is normalised exactly once; every probe
                    // batch reuses it through `join_prenormalized`
                    let mut inner_norm = embed_all(&run, &right_strings)?;
                    normalize_matrix_rows_with(&mut inner_norm, config.kernel);
                    Probe::Tensor {
                        join: TensorJoin::new(*config),
                        inner_norm,
                    }
                }
                PhysicalJoinOp::Index(config) => {
                    stats.index_builds += 1;
                    let join = IndexJoin::new(*config);
                    let inner_matrix = embed_all(&run, &right_strings)?;
                    let index = Arc::new(join.build_index(&inner_matrix)?);
                    Probe::Hnsw {
                        join,
                        index,
                        inner_filter: None,
                    }
                }
            };
            (probe, inner_table)
        }
        (op, InnerInput::Indexed(_)) => {
            return Err(CoreError::InvalidInput(format!(
                "planner bug: {} cannot consume a persistent-index inner input",
                op.name()
            )))
        }
    };

    let mut outer_parts: Vec<Table> = Vec::new();
    let mut pairs: Vec<JoinPair> = Vec::new();
    let mut join_stats = JoinStats::default();
    let mut offset = 0usize;
    while let Some(batch) = outer.next_batch(ctx, batch_rows, stats, operator_rows)? {
        let gathered = gather_batch(&batch)?;
        // the column lookup happens for every batch (even empty ones) so a
        // missing probe column errors exactly like the row path
        let left_strings = gathered
            .column_by_name(&node.left_column)
            .map_err(CoreError::from)?
            .as_utf8()?;
        let rows = gathered.num_rows();
        if rows > 0 {
            let result = match &probe {
                Probe::Naive { right } => {
                    NaiveNlJoin::new().join(&run, left_strings, right, node.predicate)?
                }
                Probe::Prefetch { join, inner } => {
                    let left = embed_all(&run, left_strings)?;
                    join.join_matrices(&left, inner, node.predicate)?
                }
                Probe::Tensor { join, inner_norm } => {
                    let mut left_norm = embed_all(&run, left_strings)?;
                    normalize_matrix_rows_with(&mut left_norm, join.config().kernel);
                    join.join_prenormalized(&left_norm, inner_norm, node.predicate)?
                }
                Probe::Hnsw {
                    join,
                    index,
                    inner_filter,
                } => {
                    let left = embed_all(&run, left_strings)?;
                    join.probe_join(&left, index, node.predicate, None, inner_filter.as_ref())?
                }
            };
            for p in result.pairs {
                pairs.push(JoinPair::new(offset + p.left, p.right, p.score));
            }
            merge_stats(&mut join_stats, &result.stats);
        }
        outer_parts.push(gathered);
        offset += rows;
    }

    let delta = run.stats();
    stats.embedding_stats.model_calls += delta.model_calls;
    stats.embedding_stats.cache_hits += delta.cache_hits;

    join_stats.model_calls = delta.model_calls;
    join_stats.elapsed = start.elapsed();
    stats.join_stats = join_stats;
    stats.access_path = Some(node.access_path);
    stats.matched_pairs = pairs.len();

    let result = JoinResult {
        pairs,
        stats: join_stats,
    };
    let refs: Vec<&Table> = outer_parts.iter().collect();
    let outer_table = Table::concat(&refs).map_err(CoreError::from)?;
    materialize_output(&outer_table, &right_view, &result)
}

/// Executes a plan batch-at-a-time.  Same contract as the row executor:
/// per-operator actual rows in pre-order, per-run stat deltas, and a
/// byte-identical output table.
pub(crate) fn execute_batched(
    plan: &PhysicalPlan,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
) -> Result<ExecOutcome> {
    let batch_rows = batch_rows.max(1);
    let mut stats = RunStats::default();
    let pool_before = cej_exec::ExecPool::metrics();
    let mut operator_rows = vec![0u64; plan.operator_count()];
    let mut next_slot = 0usize;
    let mut root = build_pipeline(plan, &mut next_slot);
    debug_assert_eq!(next_slot, plan.operator_count());
    let table = drain(&mut root, ctx, batch_rows, &mut stats, &mut operator_rows)?;
    stats.scheduler = cej_exec::ExecPool::metrics().delta_since(&pool_before);
    Ok(ExecOutcome {
        table,
        stats,
        operator_rows,
    })
}
