//! Vectorized (batch-at-a-time) execution of [`PhysicalPlan`] trees.
//!
//! This is the MonetDB/X100-style pull model the row executor's
//! materialize-everything strategy is refactored into: operators exchange
//! fixed-size **column batches** (default [`DEFAULT_BATCH_ROWS`] rows)
//! carrying a selection vector over a shared, immutable base table.
//!
//! * `TableScan` emits zero-copy windows over the catalog's `Arc<Table>` —
//!   no per-run deep clone of the base table.
//! * `Filter` refines the selection vector in place
//!   ([`cej_relational::eval::evaluate_predicate_select`], with the
//!   `filter_cmp` kernel fast path) — survivors are *marked*, never copied.
//! * `Project` is metadata-only: it narrows the visible-column set.
//! * `Embed` gathers only the selected lanes and embeds them in one
//!   `embed_batch_counted` call per batch.
//! * Joins consume batches on the probe side: the inner relation is
//!   embedded (and for the tensor path, normalised) once, then every outer
//!   batch is scored against it ([`TensorJoin::join_prenormalized`], HNSW
//!   `probe_join`, or the NLJ variants) and pair offsets are remapped by the
//!   batch's cumulative offset.
//!
//! ## Morsel-driven parallelism
//!
//! When the context's [`cej_exec::ExecPool`] budget exceeds one thread,
//! linear `Scan → (Filter|Project|Embed|Rename)*` chains do not pull
//! batches one at a time: the scan range is split into **morsels** (one
//! selection-vector batch each) and dispatched onto the shared
//! work-stealing pool, each worker running the whole operator chain over
//! its morsel ([`run_chain_parallel`]).  Join probe sides follow the same
//! pattern — outer morsels are gathered and probed concurrently against
//! the once-prepared inner side, and the relational hash join builds its
//! partitioned hash table across workers
//! ([`HashSide::build_with_pool`]).
//!
//! The load-bearing invariant survives parallelism: results are
//! **byte-identical** to the row executor — and to any thread budget and
//! any morsel size — for every plan shape and join strategy.  Per-morsel
//! outputs are reassembled in morsel-index order (ascending scan ranges),
//! so rows, row order, similarity bits, and per-operator row actuals are
//! exactly what the serial pull loop produces.  The per-operator actual-row
//! accounting counts *selected lanes*, never batches, so `explain_analyze`
//! q-errors are unchanged.  Only timing (`operator_micros`) and scheduler
//! counters vary across budgets.

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use cej_embedding::EmbeddingStats;
use cej_index::HnswIndex;
use cej_relational::{
    eval::{evaluate_predicate, evaluate_predicate_select},
    EmbedSpec, Expr,
};
use cej_storage::{BatchView, Column, SelectionBitmap, StorageError, Table, DEFAULT_BATCH_ROWS};
use cej_vector::norm::normalize_matrix_rows_with;

use crate::error::CoreError;
use crate::executor::{
    materialize_output, ExecContext, ExecOutcome, OpMetrics, RunEmbedder, RunStats,
};
use crate::join::hash_join::{rename_columns, HashSide};
use crate::join::index_join::IndexJoin;
use crate::join::naive_nlj::NaiveNlJoin;
use crate::join::prefetch_nlj::PrefetchNlJoin;
use crate::join::tensor_join::TensorJoin;
use crate::join::{check_predicate, embed_all};
use crate::physical_plan::{HashJoinNode, InnerInput, JoinNode, PhysicalJoinOp, PhysicalPlan};
use crate::result::{JoinPair, JoinResult, JoinStats};
use crate::Result;

/// Which executor runs a [`PhysicalPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The legacy materialize-everything row executor (kept as the reference
    /// implementation for equivalence tests and the `exec_model` benchmark).
    Row,
    /// The vectorized pull executor: operators exchange `batch_rows`-sized
    /// column batches with selection vectors.
    Batch {
        /// Rows per batch handed between operators (must be > 0).
        batch_rows: usize,
    },
}

impl Default for ExecMode {
    /// Batch execution with [`DEFAULT_BATCH_ROWS`] rows per batch, overridable
    /// via the `CEJ_BATCH_ROWS` environment variable.
    fn default() -> Self {
        let batch_rows = std::env::var("CEJ_BATCH_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_BATCH_ROWS);
        ExecMode::Batch { batch_rows }
    }
}

/// A batch in flight: a selection vector plus a visible-column set over a
/// shared base table.  `sel` holds absolute row indices into `base`
/// (ascending within a pipeline); `visible` holds base schema positions in
/// output order.  Nothing is copied until a materialising boundary gathers
/// the surviving lanes.
struct ExecBatch {
    base: Arc<Table>,
    sel: Vec<u32>,
    visible: Vec<usize>,
}

/// One operator of the batch pipeline.  `slot` is the operator's pre-order
/// position in the executor's actual-row vector — the same order
/// `explain_analyze` renders operators in.
enum BatchOp<'p> {
    Scan {
        slot: usize,
        name: &'p str,
        table: Option<Arc<Table>>,
        cursor: usize,
        emitted: bool,
    },
    Filter {
        slot: usize,
        predicate: &'p Expr,
        input: Box<BatchOp<'p>>,
    },
    Project {
        slot: usize,
        columns: &'p [String],
        input: Box<BatchOp<'p>>,
    },
    Embed {
        slot: usize,
        spec: &'p EmbedSpec,
        input: Box<BatchOp<'p>>,
    },
    /// A join is a pipeline breaker: on first pull it streams its outer
    /// pipeline through the probe side, materialises the joined table, then
    /// re-emits it as batches for any operators above.
    JoinSource {
        slot: usize,
        node: &'p JoinNode,
        outer: Option<Box<BatchOp<'p>>>,
        inner: Option<Box<BatchOp<'p>>>,
        result: Option<Arc<Table>>,
        cursor: usize,
        emitted: bool,
    },
    /// The relational hash equi-join: the right pipeline is drained once into
    /// a built hash side, then left (probe) batches stream against it; the
    /// accumulated output re-emits as batches for the operators above.
    HashJoinSource {
        slot: usize,
        node: &'p HashJoinNode,
        left: Option<Box<BatchOp<'p>>>,
        right: Option<Box<BatchOp<'p>>>,
        result: Option<Arc<Table>>,
        cursor: usize,
        emitted: bool,
    },
    /// Generalised projection: gathers each batch and re-emits it with
    /// columns selected, renamed, and reordered.
    Rename {
        slot: usize,
        columns: &'p [(String, String)],
        input: Box<BatchOp<'p>>,
    },
}

/// Builds the operator pipeline, assigning pre-order slots that line up with
/// the row executor's `operator_rows` protocol (join claims its slot, then
/// the outer subtree, then the inner subtree when it is a plan).
fn build_pipeline<'p>(plan: &'p PhysicalPlan, next_slot: &mut usize) -> BatchOp<'p> {
    let slot = *next_slot;
    *next_slot += 1;
    match plan {
        PhysicalPlan::TableScan { table, .. } => BatchOp::Scan {
            slot,
            name: table,
            table: None,
            cursor: 0,
            emitted: false,
        },
        PhysicalPlan::Filter {
            predicate, input, ..
        } => BatchOp::Filter {
            slot,
            predicate,
            input: Box::new(build_pipeline(input, next_slot)),
        },
        PhysicalPlan::Project { columns, input, .. } => BatchOp::Project {
            slot,
            columns,
            input: Box::new(build_pipeline(input, next_slot)),
        },
        PhysicalPlan::Embed { spec, input, .. } => BatchOp::Embed {
            slot,
            spec,
            input: Box::new(build_pipeline(input, next_slot)),
        },
        PhysicalPlan::Join(node) => {
            let outer = Box::new(build_pipeline(&node.outer, next_slot));
            let inner = match &node.inner {
                InnerInput::Plan(inner) => Some(Box::new(build_pipeline(inner, next_slot))),
                InnerInput::Indexed(_) => None,
            };
            BatchOp::JoinSource {
                slot,
                node,
                outer: Some(outer),
                inner,
                result: None,
                cursor: 0,
                emitted: false,
            }
        }
        PhysicalPlan::HashJoin(node) => {
            let left = Box::new(build_pipeline(&node.left, next_slot));
            let right = Box::new(build_pipeline(&node.right, next_slot));
            BatchOp::HashJoinSource {
                slot,
                node,
                left: Some(left),
                right: Some(right),
                result: None,
                cursor: 0,
                emitted: false,
            }
        }
        PhysicalPlan::Rename { columns, input, .. } => BatchOp::Rename {
            slot,
            columns,
            input: Box::new(build_pipeline(input, next_slot)),
        },
    }
}

impl<'p> BatchOp<'p> {
    /// This operator's pre-order metrics slot.
    fn slot(&self) -> usize {
        match self {
            BatchOp::Scan { slot, .. }
            | BatchOp::Filter { slot, .. }
            | BatchOp::Project { slot, .. }
            | BatchOp::Embed { slot, .. }
            | BatchOp::JoinSource { slot, .. }
            | BatchOp::HashJoinSource { slot, .. }
            | BatchOp::Rename { slot, .. } => *slot,
        }
    }

    /// Pulls the next batch, or `None` when the operator is exhausted.  Every
    /// pipeline emits at least one batch (possibly empty) so schemas
    /// propagate even for zero-row inputs.  Wall time of the pull (inclusive
    /// of input pulls) and the morsel count accrue to this operator's slot.
    fn next_batch(
        &mut self,
        ctx: &ExecContext<'_>,
        batch_rows: usize,
        stats: &mut RunStats,
        metrics: &mut OpMetrics,
    ) -> Result<Option<ExecBatch>> {
        let slot = self.slot();
        let start = Instant::now();
        let result = self.next_batch_inner(ctx, batch_rows, stats, metrics);
        metrics.add_time(slot, start.elapsed());
        if let Ok(Some(_)) = &result {
            metrics.morsels[slot] += 1;
        }
        result
    }

    fn next_batch_inner(
        &mut self,
        ctx: &ExecContext<'_>,
        batch_rows: usize,
        stats: &mut RunStats,
        metrics: &mut OpMetrics,
    ) -> Result<Option<ExecBatch>> {
        match self {
            BatchOp::Scan {
                slot,
                name,
                table,
                cursor,
                emitted,
            } => {
                if table.is_none() {
                    *table = Some(ctx.catalog.table(name).map_err(CoreError::from)?);
                }
                let base = table.as_ref().expect("resolved above").clone();
                let rows = base.num_rows();
                if *cursor >= rows {
                    if !*emitted {
                        *emitted = true;
                        return Ok(Some(ExecBatch {
                            visible: (0..base.num_columns()).collect(),
                            sel: Vec::new(),
                            base,
                        }));
                    }
                    return Ok(None);
                }
                let end = (*cursor + batch_rows).min(rows);
                let sel: Vec<u32> = (*cursor as u32..end as u32).collect();
                *cursor = end;
                *emitted = true;
                metrics.rows[*slot] += sel.len() as u64;
                Ok(Some(ExecBatch {
                    visible: (0..base.num_columns()).collect(),
                    sel,
                    base,
                }))
            }
            BatchOp::Filter {
                slot,
                predicate,
                input,
            } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, metrics)? else {
                    return Ok(None);
                };
                let refined = filter_batch(predicate, &batch)?;
                metrics.rows[*slot] += refined.len() as u64;
                Ok(Some(ExecBatch {
                    base: batch.base,
                    sel: refined,
                    visible: batch.visible,
                }))
            }
            BatchOp::Project {
                slot,
                columns,
                input,
            } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, metrics)? else {
                    return Ok(None);
                };
                let mut visible = Vec::with_capacity(columns.len());
                for name in columns.iter() {
                    visible.push(visible_position(&batch, name)?);
                }
                metrics.rows[*slot] += batch.sel.len() as u64;
                Ok(Some(ExecBatch {
                    base: batch.base,
                    sel: batch.sel,
                    visible,
                }))
            }
            BatchOp::Embed { slot, spec, input } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, metrics)? else {
                    return Ok(None);
                };
                let (out, delta) = embed_one_batch(&batch, spec, ctx)?;
                stats.embedding_stats.model_calls += delta.model_calls;
                stats.embedding_stats.cache_hits += delta.cache_hits;
                metrics.rows[*slot] += out.sel.len() as u64;
                Ok(Some(out))
            }
            BatchOp::JoinSource {
                slot,
                node,
                outer,
                inner,
                result,
                cursor,
                emitted,
            } => {
                if result.is_none() {
                    let mut outer_op = *outer.take().expect("join executes once");
                    let inner_op = inner.take();
                    let table = execute_join_batched(
                        node,
                        &mut outer_op,
                        inner_op,
                        ctx,
                        batch_rows,
                        stats,
                        metrics,
                    )?;
                    metrics.rows[*slot] += table.num_rows() as u64;
                    *result = Some(Arc::new(table));
                }
                let base = result.as_ref().expect("materialised above").clone();
                let rows = base.num_rows();
                if *cursor >= rows {
                    if !*emitted {
                        *emitted = true;
                        return Ok(Some(ExecBatch {
                            visible: (0..base.num_columns()).collect(),
                            sel: Vec::new(),
                            base,
                        }));
                    }
                    return Ok(None);
                }
                let end = (*cursor + batch_rows).min(rows);
                let sel: Vec<u32> = (*cursor as u32..end as u32).collect();
                *cursor = end;
                *emitted = true;
                Ok(Some(ExecBatch {
                    visible: (0..base.num_columns()).collect(),
                    sel,
                    base,
                }))
            }
            BatchOp::HashJoinSource {
                slot,
                node,
                left,
                right,
                result,
                cursor,
                emitted,
            } => {
                if result.is_none() {
                    let mut left_op = *left.take().expect("join executes once");
                    let mut right_op = *right.take().expect("join executes once");
                    // Build once from the drained right pipeline, radix-
                    // partitioned across the pool's workers...
                    let build_table = drain(&mut right_op, ctx, batch_rows, stats, metrics)?;
                    let side =
                        HashSide::build_with_pool(build_table, &node.right_column, &ctx.pool)?;
                    // ...then probe morsels against it.  The side is read-
                    // only, so probe batches run concurrently; concatenating
                    // per-morsel outputs in morsel order keeps matches in
                    // probe-row order.
                    let batches = collect_batches(&mut left_op, ctx, batch_rows, stats, metrics)?;
                    let probed = ctx.pool.parallel_map(&batches, |batch| -> Result<Table> {
                        let gathered = gather_batch(batch)?;
                        side.probe(&gathered, &node.left_column)
                    });
                    let parts = probed.into_iter().collect::<Result<Vec<_>>>()?;
                    let refs: Vec<&Table> = parts.iter().collect();
                    let table = Table::concat(&refs).map_err(CoreError::from)?;
                    metrics.rows[*slot] += table.num_rows() as u64;
                    *result = Some(Arc::new(table));
                }
                let base = result.as_ref().expect("materialised above").clone();
                let rows = base.num_rows();
                if *cursor >= rows {
                    if !*emitted {
                        *emitted = true;
                        return Ok(Some(ExecBatch {
                            visible: (0..base.num_columns()).collect(),
                            sel: Vec::new(),
                            base,
                        }));
                    }
                    return Ok(None);
                }
                let end = (*cursor + batch_rows).min(rows);
                let sel: Vec<u32> = (*cursor as u32..end as u32).collect();
                *cursor = end;
                *emitted = true;
                Ok(Some(ExecBatch {
                    visible: (0..base.num_columns()).collect(),
                    sel,
                    base,
                }))
            }
            BatchOp::Rename {
                slot,
                columns,
                input,
            } => {
                let Some(batch) = input.next_batch(ctx, batch_rows, stats, metrics)? else {
                    return Ok(None);
                };
                let out = rename_one_batch(&batch, columns)?;
                metrics.rows[*slot] += out.sel.len() as u64;
                Ok(Some(out))
            }
        }
    }
}

/// Resolves a column name against the batch's *visible* set (hidden base
/// columns must not leak), mirroring the row path's `ColumnNotFound`.
fn visible_position(batch: &ExecBatch, name: &str) -> Result<usize> {
    let fields = batch.base.schema().fields();
    batch
        .visible
        .iter()
        .copied()
        .find(|&i| fields[i].name == name)
        .ok_or_else(|| CoreError::from(StorageError::ColumnNotFound(name.to_string())))
}

/// Applies a filter predicate to a batch, returning the refined selection.
fn filter_batch(predicate: &Expr, batch: &ExecBatch) -> Result<Vec<u32>> {
    if batch.sel.is_empty() {
        // the row path evaluates nothing over an empty input
        return Ok(Vec::new());
    }
    let mut names = Vec::new();
    expr_columns(predicate, &mut names);
    let fields = batch.base.schema().fields();
    let all_visible = names
        .iter()
        .all(|n| batch.visible.iter().any(|&i| fields[i].name == *n));
    if all_visible {
        // every referenced column is visible: evaluating against the base
        // table over the selected lanes is exactly what the row path sees
        evaluate_predicate_select(predicate, &batch.base, &batch.sel).map_err(CoreError::from)
    } else {
        // a referenced column is hidden or missing: gather the visible lanes
        // and replicate the row path bit for bit, including its short-circuit
        // semantics (an unknown column behind a false AND arm is no error)
        let gathered = gather_batch(batch)?;
        let bitmap = evaluate_predicate(predicate, &gathered).map_err(CoreError::from)?;
        Ok(bitmap
            .selected_indices()
            .into_iter()
            .map(|i| batch.sel[i])
            .collect())
    }
}

/// The `Embed` operator's per-batch body: gathers the selected lanes, embeds
/// the input column in one batch call, and rebases the batch onto the
/// embedded output table.  Returns the run-local embedding delta so callers
/// on any thread can fold it into the run stats.
fn embed_one_batch(
    batch: &ExecBatch,
    spec: &EmbedSpec,
    ctx: &ExecContext<'_>,
) -> Result<(ExecBatch, EmbeddingStats)> {
    let cache = ctx.embeddings.cache(&spec.model, ctx.registry)?;
    let run = RunEmbedder::new(cache.as_ref());
    let pos = visible_position(batch, &spec.input_column)?;
    let strings = batch.base.column(pos).map_err(CoreError::from)?.as_utf8()?;
    // embed exactly the selected lanes, one batch call
    let selected: Vec<String> = batch
        .sel
        .iter()
        .map(|&lane| strings[lane as usize].clone())
        .collect();
    let matrix = embed_all(&run, &selected)?;
    let delta = run.stats();
    let gathered = gather_batch(batch)?;
    let out = gathered
        .with_column(&spec.output_column, Column::Vector(matrix))
        .map_err(CoreError::from)?;
    let base = Arc::new(out);
    let rows = base.num_rows();
    Ok((
        ExecBatch {
            sel: (0..rows as u32).collect(),
            visible: (0..base.num_columns()).collect(),
            base,
        },
        delta,
    ))
}

/// The `Rename` operator's per-batch body: gather, select/rename/reorder,
/// rebase.
fn rename_one_batch(batch: &ExecBatch, columns: &[(String, String)]) -> Result<ExecBatch> {
    let gathered = gather_batch(batch)?;
    let out = rename_columns(&gathered, columns)?;
    let base = Arc::new(out);
    let rows = base.num_rows();
    Ok(ExecBatch {
        sel: (0..rows as u32).collect(),
        visible: (0..base.num_columns()).collect(),
        base,
    })
}

/// Collects every column name an expression references.
fn expr_columns<'e>(expr: &'e Expr, out: &mut Vec<&'e str>) {
    match expr {
        Expr::And(a, b) | Expr::Or(a, b) => {
            expr_columns(a, out);
            expr_columns(b, out);
        }
        Expr::Not(inner) => expr_columns(inner, out),
        Expr::Compare { left, right, .. } => {
            expr_columns(left, out);
            expr_columns(right, out);
        }
        Expr::Column(name) => out.push(name),
        Expr::Literal(_) => {}
    }
}

/// Materialises a batch: visible columns, selected lanes.  When the batch is
/// the whole base table the `Arc` contents are cloned directly (the same
/// single copy the row path pays).
fn gather_batch(batch: &ExecBatch) -> Result<Table> {
    let whole_table = batch
        .visible
        .iter()
        .copied()
        .eq(0..batch.base.num_columns())
        && batch.sel.len() == batch.base.num_rows()
        && batch
            .sel
            .iter()
            .copied()
            .eq(0..batch.base.num_rows() as u32);
    if whole_table {
        return Ok(batch.base.as_ref().clone());
    }
    let view = BatchView::new(&batch.base, &batch.sel, &batch.visible).map_err(CoreError::from)?;
    view.gather().map_err(CoreError::from)
}

/// Reassembles drained batches into one table.  Batches that share a base
/// and visible set collapse into a single gather; heterogeneous batches
/// (e.g. per-batch `Embed` outputs) are gathered individually and
/// concatenated.
fn finalize(batches: Vec<ExecBatch>) -> Result<Table> {
    let Some(first) = batches.first() else {
        // every pipeline emits at least one batch; defensive only
        return Ok(Table::empty());
    };
    let same_base = batches
        .iter()
        .all(|b| Arc::ptr_eq(&b.base, &first.base) && b.visible == first.visible);
    if same_base {
        let total = batches.iter().map(|b| b.sel.len()).sum();
        let mut sel: Vec<u32> = Vec::with_capacity(total);
        for b in &batches {
            sel.extend_from_slice(&b.sel);
        }
        let merged = ExecBatch {
            base: first.base.clone(),
            sel,
            visible: first.visible.clone(),
        };
        return gather_batch(&merged);
    }
    let parts: Vec<Table> = batches
        .iter()
        .map(gather_batch)
        .collect::<Result<Vec<_>>>()?;
    let refs: Vec<&Table> = parts.iter().collect();
    Table::concat(&refs).map_err(CoreError::from)
}

/// One stage of an extracted linear chain (everything above the scan).
enum MorselStage<'p> {
    Filter {
        slot: usize,
        predicate: &'p Expr,
    },
    Project {
        slot: usize,
        columns: &'p [String],
    },
    Embed {
        slot: usize,
        spec: &'p EmbedSpec,
    },
    Rename {
        slot: usize,
        columns: &'p [(String, String)],
    },
}

impl MorselStage<'_> {
    fn slot(&self) -> usize {
        match self {
            MorselStage::Filter { slot, .. }
            | MorselStage::Project { slot, .. }
            | MorselStage::Embed { slot, .. }
            | MorselStage::Rename { slot, .. } => *slot,
        }
    }
}

/// A linear `Scan → (Filter|Project|Embed|Rename)*` pipeline extracted from
/// a fresh [`BatchOp`] tree — the unit of morsel-driven parallelism.
/// `stages` is in application (bottom-up) order.
struct MorselChain<'p> {
    scan_slot: usize,
    scan_name: &'p str,
    stages: Vec<MorselStage<'p>>,
}

/// Extracts a linear chain from a *fresh* (never-pulled) pipeline, or `None`
/// when the pipeline contains a pipeline breaker (a join source) and must be
/// pulled serially.
fn extract_chain<'p>(op: &BatchOp<'p>) -> Option<MorselChain<'p>> {
    let mut stages_top_down: Vec<MorselStage<'p>> = Vec::new();
    let mut cursor = op;
    loop {
        match cursor {
            BatchOp::Scan { slot, name, .. } => {
                stages_top_down.reverse();
                return Some(MorselChain {
                    scan_slot: *slot,
                    scan_name: name,
                    stages: stages_top_down,
                });
            }
            BatchOp::Filter {
                slot,
                predicate,
                input,
            } => {
                stages_top_down.push(MorselStage::Filter {
                    slot: *slot,
                    predicate,
                });
                cursor = input;
            }
            BatchOp::Project {
                slot,
                columns,
                input,
            } => {
                stages_top_down.push(MorselStage::Project {
                    slot: *slot,
                    columns,
                });
                cursor = input;
            }
            BatchOp::Embed { slot, spec, input } => {
                stages_top_down.push(MorselStage::Embed { slot: *slot, spec });
                cursor = input;
            }
            BatchOp::Rename {
                slot,
                columns,
                input,
            } => {
                stages_top_down.push(MorselStage::Rename {
                    slot: *slot,
                    columns,
                });
                cursor = input;
            }
            BatchOp::JoinSource { .. } | BatchOp::HashJoinSource { .. } => return None,
        }
    }
}

/// Runs one morsel (a contiguous scan range) through every stage of a chain.
/// Returns the surviving batch, the per-stage output-lane counts (scan
/// first, then `stages` in order), and the embedding delta this morsel paid.
fn process_morsel(
    base: &Arc<Table>,
    range: Range<u32>,
    chain: &MorselChain<'_>,
    ctx: &ExecContext<'_>,
) -> Result<(ExecBatch, Vec<u64>, EmbeddingStats)> {
    let mut lane_counts = Vec::with_capacity(1 + chain.stages.len());
    let sel: Vec<u32> = range.collect();
    lane_counts.push(sel.len() as u64);
    let mut batch = ExecBatch {
        visible: (0..base.num_columns()).collect(),
        sel,
        base: base.clone(),
    };
    let mut embed_delta = EmbeddingStats::default();
    for stage in &chain.stages {
        match stage {
            MorselStage::Filter { predicate, .. } => {
                batch.sel = filter_batch(predicate, &batch)?;
                lane_counts.push(batch.sel.len() as u64);
            }
            MorselStage::Project { columns, .. } => {
                let mut visible = Vec::with_capacity(columns.len());
                for name in columns.iter() {
                    visible.push(visible_position(&batch, name)?);
                }
                batch.visible = visible;
                lane_counts.push(batch.sel.len() as u64);
            }
            MorselStage::Embed { spec, .. } => {
                let (out, delta) = embed_one_batch(&batch, spec, ctx)?;
                embed_delta.model_calls += delta.model_calls;
                embed_delta.cache_hits += delta.cache_hits;
                lane_counts.push(out.sel.len() as u64);
                batch = out;
            }
            MorselStage::Rename { columns, .. } => {
                batch = rename_one_batch(&batch, columns)?;
                lane_counts.push(batch.sel.len() as u64);
            }
        }
    }
    Ok((batch, lane_counts, embed_delta))
}

/// Morsel-driven parallel execution of a linear chain: the scan range is
/// split into `batch_rows`-sized morsels dispatched onto the context's
/// worker pool, each worker running the full stage chain over its morsel.
/// Outputs come back in morsel-index order, so the returned batch sequence
/// — and everything downstream — is byte-identical to the serial pull loop.
///
/// All fused operators accrue the pipeline's wall-clock time (per-stage
/// timing inside interleaved morsels would sum worker CPU time instead).
fn run_chain_parallel(
    chain: &MorselChain<'_>,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
    stats: &mut RunStats,
    metrics: &mut OpMetrics,
) -> Result<Vec<ExecBatch>> {
    let start = Instant::now();
    let base = ctx
        .catalog
        .table(chain.scan_name)
        .map_err(CoreError::from)?;
    let rows = base.num_rows();
    // the serial scan emits exactly one empty batch for an empty table (so
    // schemas propagate) and no trailing empty batch otherwise
    let morsels: Vec<Range<u32>> = if rows == 0 {
        std::iter::once(0..0).collect()
    } else {
        (0..rows)
            .step_by(batch_rows)
            .map(|s| s as u32..((s + batch_rows).min(rows)) as u32)
            .collect()
    };
    let results = ctx.pool.parallel_map(&morsels, |range| {
        process_morsel(&base, range.clone(), chain, ctx)
    });
    let mut batches = Vec::with_capacity(results.len());
    for result in results {
        let (batch, lane_counts, embed_delta) = result?;
        metrics.rows[chain.scan_slot] += lane_counts[0];
        metrics.morsels[chain.scan_slot] += 1;
        for (stage, lanes) in chain.stages.iter().zip(&lane_counts[1..]) {
            metrics.rows[stage.slot()] += *lanes;
            metrics.morsels[stage.slot()] += 1;
        }
        stats.embedding_stats.model_calls += embed_delta.model_calls;
        stats.embedding_stats.cache_hits += embed_delta.cache_hits;
        batches.push(batch);
    }
    let elapsed = start.elapsed();
    metrics.add_time(chain.scan_slot, elapsed);
    for stage in &chain.stages {
        metrics.add_time(stage.slot(), elapsed);
    }
    Ok(batches)
}

/// Collects every batch a pipeline produces.  Linear chains go down the
/// morsel-parallel path when the pool budget allows; pipelines containing a
/// join source are pulled serially (their heavy probe work is parallelised
/// inside the join instead).
fn collect_batches(
    op: &mut BatchOp<'_>,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
    stats: &mut RunStats,
    metrics: &mut OpMetrics,
) -> Result<Vec<ExecBatch>> {
    if ctx.pool.threads() > 1 {
        if let Some(chain) = extract_chain(op) {
            return run_chain_parallel(&chain, ctx, batch_rows, stats, metrics);
        }
    }
    let mut batches = Vec::new();
    while let Some(batch) = op.next_batch(ctx, batch_rows, stats, metrics)? {
        batches.push(batch);
    }
    Ok(batches)
}

/// Drains a pipeline to a materialised table (pipeline-breaker boundary).
fn drain(
    op: &mut BatchOp<'_>,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
    stats: &mut RunStats,
    metrics: &mut OpMetrics,
) -> Result<Table> {
    finalize(collect_batches(op, ctx, batch_rows, stats, metrics)?)
}

/// The per-batch probe strategy of a join: everything inner-side is prepared
/// once, then reused by every outer batch.
enum Probe {
    Naive {
        right: Vec<String>,
    },
    Prefetch {
        join: PrefetchNlJoin,
        inner: cej_vector::Matrix,
    },
    Tensor {
        join: TensorJoin,
        inner_norm: cej_vector::Matrix,
    },
    Hnsw {
        join: IndexJoin,
        index: Arc<HnswIndex>,
        inner_filter: Option<SelectionBitmap>,
    },
}

/// Accumulates per-batch join statistics the way a single whole-input call
/// would have: additive counters sum, probe stats merge, peaks take the max.
fn merge_stats(acc: &mut JoinStats, part: &JoinStats) {
    acc.pairs_compared += part.pairs_compared;
    acc.blocks_computed += part.blocks_computed;
    acc.probe_stats.merge(&part.probe_stats);
    acc.peak_buffer_bytes = acc.peak_buffer_bytes.max(part.peak_buffer_bytes);
}

/// Executes a join node batch-at-a-time: materialise the inner side once,
/// then stream outer morsels through the probe — concurrently on the
/// context's pool, since the prepared probe state is read-only — remapping
/// pair offsets by each morsel's cumulative position (in morsel order, so
/// output order matches the serial loop exactly).
fn execute_join_batched(
    node: &JoinNode,
    outer: &mut BatchOp<'_>,
    mut inner: Option<Box<BatchOp<'_>>>,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
    stats: &mut RunStats,
    metrics: &mut OpMetrics,
) -> Result<Table> {
    let start = Instant::now();

    // Materialise the inner subplan (if any) *before* snapshotting this
    // join's cache counters — nested joins and embeds inside it account for
    // their own model calls (same rule as the row path).
    let inner_table = match inner.as_mut() {
        Some(op) => Some(drain(op, ctx, batch_rows, stats, metrics)?),
        None => None,
    };

    let cache = ctx.embeddings.cache(&node.model, ctx.registry)?;
    let run = RunEmbedder::new(cache.as_ref());

    let (probe, right_view) = match (&node.op, &node.inner) {
        (PhysicalJoinOp::Index(config), InnerInput::Indexed(indexed)) => {
            // epoch first, then the table read (see the row path for why)
            let epoch = ctx.indexes.publication_epoch(&indexed.key);
            let base = ctx
                .catalog
                .table(&indexed.key.table)
                .map_err(CoreError::from)?;
            let inner_strings = base
                .column_by_name(&indexed.key.column)
                .map_err(CoreError::from)?
                .as_utf8()?;
            let join = IndexJoin::new(*config);
            let (index, built, evicted) =
                ctx.indexes
                    .get_or_build_tracked_from(epoch, &indexed.key, || {
                        let matrix = embed_all(&run, inner_strings)?;
                        join.build_index(&matrix)
                    })?;
            if built {
                stats.index_builds += 1;
            } else {
                stats.index_reuses += 1;
            }
            stats.index_evictions += evicted;

            let mut inner_filter: Option<SelectionBitmap> = None;
            for expr in &indexed.filters {
                let bitmap = evaluate_predicate(expr, &base).map_err(CoreError::from)?;
                inner_filter = Some(match inner_filter {
                    None => bitmap,
                    Some(acc) => acc.and(&bitmap).map_err(CoreError::from)?,
                });
            }
            let right_view = match &indexed.projection {
                Some(columns) => {
                    let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                    base.project(&names).map_err(CoreError::from)?
                }
                None => base.as_ref().clone(),
            };
            (
                Probe::Hnsw {
                    join,
                    index,
                    inner_filter,
                },
                right_view,
            )
        }
        (op, InnerInput::Plan(_)) => {
            let inner_table = inner_table.expect("materialised above");
            let right_strings: Vec<String> = inner_table
                .column_by_name(&node.right_column)
                .map_err(CoreError::from)?
                .as_utf8()?
                .to_vec();
            check_predicate(&node.predicate)?;
            let probe = match op {
                PhysicalJoinOp::NaiveNlj => Probe::Naive {
                    right: right_strings,
                },
                PhysicalJoinOp::PrefetchNlj(config) => {
                    let inner_matrix = embed_all(&run, &right_strings)?;
                    Probe::Prefetch {
                        join: PrefetchNlJoin::new(*config),
                        inner: inner_matrix,
                    }
                }
                PhysicalJoinOp::Tensor(config) => {
                    // the inner side is normalised exactly once; every probe
                    // batch reuses it through `join_prenormalized`
                    let mut inner_norm = embed_all(&run, &right_strings)?;
                    normalize_matrix_rows_with(&mut inner_norm, config.kernel);
                    Probe::Tensor {
                        join: TensorJoin::new(*config),
                        inner_norm,
                    }
                }
                PhysicalJoinOp::Index(config) => {
                    stats.index_builds += 1;
                    let join = IndexJoin::new(*config);
                    let inner_matrix = embed_all(&run, &right_strings)?;
                    let index = Arc::new(join.build_index(&inner_matrix)?);
                    Probe::Hnsw {
                        join,
                        index,
                        inner_filter: None,
                    }
                }
            };
            (probe, inner_table)
        }
        (op, InnerInput::Indexed(_)) => {
            return Err(CoreError::InvalidInput(format!(
                "planner bug: {} cannot consume a persistent-index inner input",
                op.name()
            )))
        }
    };

    // Collect the outer morsels (parallel when the outer pipeline is a
    // linear chain), then gather + probe every morsel concurrently: the
    // probe state above is read-only and the run-local embedding counters
    // are atomic.
    let batches = collect_batches(outer, ctx, batch_rows, stats, metrics)?;
    let probed = ctx
        .pool
        .parallel_map(&batches, |batch| -> Result<(Table, Option<JoinResult>)> {
            let gathered = gather_batch(batch)?;
            // the column lookup happens for every morsel (even empty ones)
            // so a missing probe column errors exactly like the row path
            let left_strings = gathered
                .column_by_name(&node.left_column)
                .map_err(CoreError::from)?
                .as_utf8()?;
            if gathered.num_rows() == 0 {
                return Ok((gathered, None));
            }
            let result = match &probe {
                Probe::Naive { right } => {
                    NaiveNlJoin::new().join(&run, left_strings, right, node.predicate)?
                }
                Probe::Prefetch { join, inner } => {
                    let left = embed_all(&run, left_strings)?;
                    join.join_matrices(&left, inner, node.predicate)?
                }
                Probe::Tensor { join, inner_norm } => {
                    let mut left_norm = embed_all(&run, left_strings)?;
                    normalize_matrix_rows_with(&mut left_norm, join.config().kernel);
                    join.join_prenormalized(&left_norm, inner_norm, node.predicate)?
                }
                Probe::Hnsw {
                    join,
                    index,
                    inner_filter,
                } => {
                    let left = embed_all(&run, left_strings)?;
                    join.probe_join(&left, index, node.predicate, None, inner_filter.as_ref())?
                }
            };
            Ok((gathered, Some(result)))
        });

    // Fold per-morsel results in morsel order: pair offsets are remapped by
    // the cumulative outer position, so the pair list is exactly the serial
    // loop's.
    let mut outer_parts: Vec<Table> = Vec::with_capacity(probed.len());
    let mut pairs: Vec<JoinPair> = Vec::new();
    let mut join_stats = JoinStats::default();
    let mut offset = 0usize;
    for item in probed {
        let (gathered, result) = item?;
        if let Some(result) = result {
            for p in result.pairs {
                pairs.push(JoinPair::new(offset + p.left, p.right, p.score));
            }
            merge_stats(&mut join_stats, &result.stats);
        }
        offset += gathered.num_rows();
        outer_parts.push(gathered);
    }

    let delta = run.stats();
    stats.embedding_stats.model_calls += delta.model_calls;
    stats.embedding_stats.cache_hits += delta.cache_hits;

    join_stats.model_calls = delta.model_calls;
    join_stats.elapsed = start.elapsed();
    stats.join_stats = join_stats;
    stats.access_path = Some(node.access_path);
    stats.matched_pairs = pairs.len();

    let result = JoinResult {
        pairs,
        stats: join_stats,
    };
    let refs: Vec<&Table> = outer_parts.iter().collect();
    let outer_table = Table::concat(&refs).map_err(CoreError::from)?;
    materialize_output(&outer_table, &right_view, &result)
}

/// Executes a plan batch-at-a-time.  Same contract as the row executor:
/// per-operator actual rows in pre-order, per-run stat deltas, and a
/// byte-identical output table.
pub(crate) fn execute_batched(
    plan: &PhysicalPlan,
    ctx: &ExecContext<'_>,
    batch_rows: usize,
) -> Result<ExecOutcome> {
    let batch_rows = batch_rows.max(1);
    let mut stats = RunStats::default();
    let pool_before = cej_exec::ExecPool::metrics();
    let mut metrics = OpMetrics::with_slots(plan.operator_count());
    let mut next_slot = 0usize;
    let mut root = build_pipeline(plan, &mut next_slot);
    debug_assert_eq!(next_slot, plan.operator_count());
    let table = drain(&mut root, ctx, batch_rows, &mut stats, &mut metrics)?;
    stats.scheduler = cej_exec::ExecPool::metrics().delta_since(&pool_before);
    Ok(ExecOutcome {
        table,
        stats,
        operator_rows: metrics.rows,
        operator_micros: metrics.micros,
        operator_morsels: metrics.morsels,
    })
}
