//! Fluent query construction: `session.query("r").ejoin(...).run()`.
//!
//! The paper's declarative promise is that "the user should only specify the
//! model and a threshold"; hand-assembling [`LogicalPlan`] trees is more
//! ceremony than that.  [`QueryBuilder`] (obtained from
//! [`crate::session::ContextJoinSession::query`]) wraps the plan builders in
//! a fluent chain and connects directly to the session's prepare/execute
//! entry points:
//!
//! ```ignore
//! let report = session
//!     .query("photos")
//!     .select(col("year").gt_eq(lit_i64(2023)))
//!     .ejoin("products", ("caption", "title"), "fasttext", sim_gte(0.9))
//!     .run()?;
//! ```

use cej_relational::{EmbedSpec, Expr, LogicalPlan, SimilarityPredicate};

use crate::prepared::PreparedQuery;
use crate::session::{ContextJoinSession, ExecutionReport};
use crate::Result;

/// `similarity >= threshold` — the paper's range predicate.
pub fn sim_gte(threshold: f32) -> SimilarityPredicate {
    SimilarityPredicate::Threshold(threshold)
}

/// Keep the `k` most similar inner tuples per outer tuple.
pub fn top_k(k: usize) -> SimilarityPredicate {
    SimilarityPredicate::TopK(k)
}

/// A fluent builder over [`LogicalPlan`], bound to a session so finished
/// queries can be prepared, explained, or run in place.
pub struct QueryBuilder<'s> {
    session: &'s ContextJoinSession,
    plan: LogicalPlan,
}

impl<'s> QueryBuilder<'s> {
    pub(crate) fn new(session: &'s ContextJoinSession, table: &str) -> Self {
        Self {
            session,
            plan: LogicalPlan::scan(table),
        }
    }

    /// Adds a relational selection.
    #[must_use]
    pub fn select(mut self, predicate: Expr) -> Self {
        self.plan = self.plan.select(predicate);
        self
    }

    /// Projects to a subset of columns.
    #[must_use]
    pub fn project(mut self, columns: &[&str]) -> Self {
        self.plan = self.plan.project(columns);
        self
    }

    /// Applies the embedding operator.
    #[must_use]
    pub fn embed(mut self, spec: EmbedSpec) -> Self {
        self.plan = self.plan.embed(spec);
        self
    }

    /// Hash equi-join against a base table: `on = (left_column,
    /// right_column)`.  Column names are preserved on both sides (the two
    /// tables must not share a column name), and chained `join`/`ejoin`
    /// calls compose into an N-table query whose join order is chosen by the
    /// optimizer's DP pass — the chain order is *not* the execution order.
    #[must_use]
    pub fn join(mut self, table: &str, on: (&str, &str)) -> Self {
        self.plan = LogicalPlan::join(self.plan, LogicalPlan::scan(table), on.0, on.1);
        self
    }

    /// Hash equi-join against an arbitrary right-hand plan (e.g. a filtered
    /// subquery built with another [`QueryBuilder::build`]).
    #[must_use]
    pub fn join_plan(mut self, right: LogicalPlan, on: (&str, &str)) -> Self {
        self.plan = LogicalPlan::join(self.plan, right, on.0, on.1);
        self
    }

    /// Context-enhanced join against a base table:
    /// `on = (left_column, right_column)`.  May be chained — each `ejoin`
    /// prefixes the accumulated left side's columns with `l_` and the new
    /// table's with `r_`, and appends a `similarity` column.
    #[must_use]
    pub fn ejoin(
        self,
        table: &str,
        on: (&str, &str),
        model: &str,
        predicate: SimilarityPredicate,
    ) -> Self {
        self.ejoin_with(LogicalPlan::scan(table), on, model, predicate)
    }

    /// Context-enhanced join against an arbitrary right-hand plan (e.g. a
    /// filtered subquery built with another [`QueryBuilder::build`]).
    #[must_use]
    pub fn ejoin_with(
        mut self,
        right: LogicalPlan,
        on: (&str, &str),
        model: &str,
        predicate: SimilarityPredicate,
    ) -> Self {
        self.plan = LogicalPlan::e_join(self.plan, right, on.0, on.1, model, predicate);
        self
    }

    /// Deprecated alias of [`QueryBuilder::ejoin_with`], kept so pre-N-table
    /// programs compile unchanged.
    #[deprecated(since = "0.2.0", note = "renamed to `ejoin_with`")]
    #[must_use]
    pub fn ejoin_plan(
        self,
        right: LogicalPlan,
        on: (&str, &str),
        model: &str,
        predicate: SimilarityPredicate,
    ) -> Self {
        self.ejoin_with(right, on, model, predicate)
    }

    /// Finishes the chain, returning the logical plan (the old
    /// `execute(&LogicalPlan)` entry point accepts it unchanged).
    pub fn build(self) -> LogicalPlan {
        self.plan
    }

    /// Optimises and physically plans the query (plan once, execute many).
    ///
    /// # Errors
    /// Propagates optimisation and planning errors.
    pub fn prepare(self) -> Result<PreparedQuery<'s>> {
        self.session.prepare(&self.plan)
    }

    /// Renders the physical plan (access path, cost estimates) without
    /// executing.
    ///
    /// # Errors
    /// Propagates optimisation and planning errors.
    pub fn explain(self) -> Result<String> {
        Ok(self.prepare()?.explain())
    }

    /// Plans and executes the query, rendering estimated-vs-actual rows per
    /// operator (`EXPLAIN ANALYZE`).
    ///
    /// # Errors
    /// Propagates planning and execution errors.
    pub fn explain_analyze(self) -> Result<crate::prepared::ExplainAnalyze> {
        self.prepare()?.explain_analyze()
    }

    /// Prepares and executes the query once.
    ///
    /// # Errors
    /// Propagates planning and execution errors.
    pub fn run(self) -> Result<ExecutionReport> {
        self.prepare()?.run()
    }
}
