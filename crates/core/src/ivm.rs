//! Incremental view maintenance: delta propagation through physical plans
//! and delta-driven standing queries.
//!
//! A registered table can be mutated with a [`cej_storage::Delta`]
//! ([`crate::session::ContextJoinSession::apply_delta`]); the applied change
//! — the appended rows and the removed rows — is pushed through every
//! standing query's already-planned [`PhysicalPlan`] by [`DeltaEngine`],
//! which emits the exact set of result rows the change adds and removes.
//! The propagation rules are the classic Δ-substitution of incremental view
//! maintenance, specialised to the fact that exactly **one** base table
//! mutates per delta (so at every binary operator at most one side carries
//! a delta):
//!
//! * `Filter` / `Project` / `Embed` / `Rename` are linear: apply the same
//!   operator to the added and removed rows independently.
//! * `HashJoin` with a probe-side (left) delta probes the **live build-side
//!   hash map** the engine memoises per node — only the delta rows are
//!   probed, never the full probe input.  A build-side delta joins the delta
//!   against the probe input and extends the memoised build map in place
//!   (append-only deltas) or drops it (deletes).
//! * A context-enhanced join with an **outer** delta re-runs the join kernel
//!   over just the delta rows against the unchanged inner — exact for every
//!   operator and both predicates, because all four kernels compute each
//!   outer row's matches independently of other outer rows (and the index
//!   path probes the *same* persistent graph a full re-run would).
//! * A context-enhanced join with an **inner** delta is linear only for
//!   threshold predicates under exact scan kernels; top-k predicates,
//!   approximate index probes, and persistent-index inners are non-linear in
//!   the inner relation, so those report [`Propagation::Refresh`] and the
//!   standing query falls back to a full re-run.
//!
//! Either way the subscriber observes a correct [`ResultDelta`]: a refresh
//! diffs the re-run against the maintained result, so the emitted frame is
//! still the exact multiset difference.  The maintained result after any
//! sequence of deltas is multiset-identical to re-running the query from
//! scratch — the property `tests/ivm_property.rs` fuzzes.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cej_embedding::Embedder;
use cej_relational::eval::evaluate_predicate;
use cej_relational::SimilarityPredicate;
use cej_storage::{Column, SelectionBitmap, Table};
use parking_lot::{Mutex, RwLock};

use crate::error::CoreError;
use crate::executor::{materialize_output, ExecContext, RunEmbedder};
use crate::join::embed_all;
use crate::join::hash_join::{rename_columns, HashSide};
use crate::join::index_join::IndexJoin;
use crate::join::naive_nlj::NaiveNlJoin;
use crate::join::prefetch_nlj::PrefetchNlJoin;
use crate::join::tensor_join::TensorJoin;
use crate::physical_plan::{IndexedInner, InnerInput, JoinNode, PhysicalJoinOp, PhysicalPlan};
use crate::prepared::PreparedQuery;
use crate::Result;

/// The change one applied delta made to a base table: the rows that were
/// appended and the rows that were removed (an upsert contributes to both).
#[derive(Debug, Clone)]
pub struct TableChange {
    /// Catalog name of the mutated table.
    pub table: String,
    /// Rows appended (at the end of the new table version, in order).
    pub added: Table,
    /// Rows removed from the previous table version.
    pub removed: Table,
}

impl TableChange {
    /// Total changed rows (appended plus removed).
    pub fn rows(&self) -> usize {
        self.added.num_rows() + self.removed.num_rows()
    }
}

/// The added and removed output rows of one operator (or of the whole plan)
/// under a single base-table change.  Both tables carry the operator's
/// output schema.
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// Output rows the change adds.
    pub added: Table,
    /// Output rows the change removes.
    pub removed: Table,
}

impl DeltaBatch {
    /// Total rows across both directions.
    pub fn rows(&self) -> usize {
        self.added.num_rows() + self.removed.num_rows()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }
}

/// The outcome of pushing a table change through a plan.
#[derive(Debug)]
pub enum Propagation {
    /// The change propagates linearly; here is the exact result delta.
    Delta(DeltaBatch),
    /// The change hits a non-linear operator (reason attached); the standing
    /// query must re-run in full.
    Refresh(&'static str),
}

/// Whether `plan` reads `table` anywhere (scans or persistent-index inners).
pub fn touches(plan: &PhysicalPlan, table: &str) -> bool {
    match plan {
        PhysicalPlan::TableScan { table: t, .. } => t == table,
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Embed { input, .. }
        | PhysicalPlan::Rename { input, .. } => touches(input, table),
        PhysicalPlan::Join(node) => {
            touches(&node.outer, table)
                || match &node.inner {
                    InnerInput::Plan(inner) => touches(inner, table),
                    InnerInput::Indexed(ii) => ii.key.table == table,
                }
        }
        PhysicalPlan::HashJoin(node) => touches(&node.left, table) || touches(&node.right, table),
    }
}

/// Per-node state the engine keeps alive between deltas.
enum NodeMemo {
    /// The live build side of a hash join (key map plus materialised rows).
    HashBuild(HashSide),
    /// The materialised inner input of a scan-kernel ejoin.
    InnerTable(Table),
}

/// The delta-propagation engine of one standing query: pushes a
/// [`TableChange`] through a [`PhysicalPlan`] and keeps per-node memos
/// (live hash-join build sides, materialised ejoin inners) so repeated
/// deltas pay delta-sized work, not input-sized work.
#[derive(Default)]
pub struct DeltaEngine {
    memos: Mutex<HashMap<usize, NodeMemo>>,
}

impl DeltaEngine {
    /// Creates an engine with no memoised state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all memoised per-node state (used after a refresh re-seeded
    /// the maintained result, so no stale build side survives).
    pub fn clear(&self) {
        self.memos.lock().clear();
    }

    /// Pushes `change` through `plan`, returning the exact result delta or
    /// a refresh request when a non-linear operator is hit.  A plan that
    /// does not read the changed table propagates an empty delta.
    ///
    /// # Errors
    /// Propagates catalog, evaluation, embedding, index, and join errors
    /// from the delta-sized executions it performs.
    pub fn propagate(
        &self,
        plan: &PhysicalPlan,
        ctx: &ExecContext<'_>,
        change: &TableChange,
    ) -> Result<Propagation> {
        if !touches(plan, &change.table) {
            let empty = change.added.take(&[]).map_err(CoreError::from)?;
            return Ok(Propagation::Delta(DeltaBatch {
                added: empty.clone(),
                removed: empty,
            }));
        }
        let mut memos = self.memos.lock();
        let mut cursor = 0usize;
        propagate_node(plan, ctx, change, &mut memos, &mut cursor)
    }
}

/// The recursive Δ-substitution.  `cursor` assigns every operator its
/// pre-order id (static subtrees advance it by their operator count without
/// being visited), which keys the engine's per-node memos stably across
/// deltas.
fn propagate_node(
    plan: &PhysicalPlan,
    ctx: &ExecContext<'_>,
    change: &TableChange,
    memos: &mut HashMap<usize, NodeMemo>,
    cursor: &mut usize,
) -> Result<Propagation> {
    let id = *cursor;
    *cursor += 1;
    match plan {
        PhysicalPlan::TableScan { table, .. } => {
            debug_assert_eq!(table, &change.table, "propagated into a static scan");
            Ok(Propagation::Delta(DeltaBatch {
                added: change.added.clone(),
                removed: change.removed.clone(),
            }))
        }
        PhysicalPlan::Filter {
            predicate, input, ..
        } => {
            let delta = match propagate_node(input, ctx, change, memos, cursor)? {
                Propagation::Delta(d) => d,
                refresh => return Ok(refresh),
            };
            let filter_side = |side: &Table| -> Result<Table> {
                let selection = evaluate_predicate(predicate, side).map_err(CoreError::from)?;
                side.filter(&selection).map_err(CoreError::from)
            };
            Ok(Propagation::Delta(DeltaBatch {
                added: filter_side(&delta.added)?,
                removed: filter_side(&delta.removed)?,
            }))
        }
        PhysicalPlan::Project { columns, input, .. } => {
            let delta = match propagate_node(input, ctx, change, memos, cursor)? {
                Propagation::Delta(d) => d,
                refresh => return Ok(refresh),
            };
            let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
            Ok(Propagation::Delta(DeltaBatch {
                added: delta.added.project(&names).map_err(CoreError::from)?,
                removed: delta.removed.project(&names).map_err(CoreError::from)?,
            }))
        }
        PhysicalPlan::Embed { spec, input, .. } => {
            let delta = match propagate_node(input, ctx, change, memos, cursor)? {
                Propagation::Delta(d) => d,
                refresh => return Ok(refresh),
            };
            let cache = ctx.embeddings.cache(&spec.model, ctx.registry)?;
            let run = RunEmbedder::new(cache.as_ref());
            let embed_side = |side: &Table| -> Result<Table> {
                let strings = side
                    .column_by_name(&spec.input_column)
                    .map_err(CoreError::from)?
                    .as_utf8()?;
                let matrix = embed_all(&run, strings)?;
                side.with_column(&spec.output_column, Column::Vector(matrix))
                    .map_err(CoreError::from)
            };
            Ok(Propagation::Delta(DeltaBatch {
                added: embed_side(&delta.added)?,
                removed: embed_side(&delta.removed)?,
            }))
        }
        PhysicalPlan::Rename { columns, input, .. } => {
            let delta = match propagate_node(input, ctx, change, memos, cursor)? {
                Propagation::Delta(d) => d,
                refresh => return Ok(refresh),
            };
            Ok(Propagation::Delta(DeltaBatch {
                added: rename_columns(&delta.added, columns)?,
                removed: rename_columns(&delta.removed, columns)?,
            }))
        }
        PhysicalPlan::HashJoin(node) => {
            let left_touched = touches(&node.left, &change.table);
            let right_touched = touches(&node.right, &change.table);
            if left_touched && right_touched {
                return Ok(Propagation::Refresh(
                    "changed table appears on both sides of a hash join",
                ));
            }
            if left_touched {
                let delta = match propagate_node(&node.left, ctx, change, memos, cursor)? {
                    Propagation::Delta(d) => d,
                    refresh => return Ok(refresh),
                };
                *cursor += node.right.operator_count();
                // Probe only the delta rows against the live build side.
                if let Entry::Vacant(slot) = memos.entry(id) {
                    let right_full = node.right.execute(ctx)?.table;
                    slot.insert(NodeMemo::HashBuild(HashSide::build(
                        right_full,
                        &node.right_column,
                    )?));
                }
                let Some(NodeMemo::HashBuild(side)) = memos.get(&id) else {
                    return Err(CoreError::InvalidInput(
                        "ivm memo kind mismatch at a hash join".into(),
                    ));
                };
                Ok(Propagation::Delta(DeltaBatch {
                    added: side.probe(&delta.added, &node.left_column)?,
                    removed: side.probe(&delta.removed, &node.left_column)?,
                }))
            } else {
                *cursor += node.left.operator_count();
                let delta = match propagate_node(&node.right, ctx, change, memos, cursor)? {
                    Propagation::Delta(d) => d,
                    refresh => return Ok(refresh),
                };
                // Build-side delta: join it against the full probe input.
                let left_full = node.left.execute(ctx)?.table;
                let added = HashSide::build(delta.added.clone(), &node.right_column)?
                    .probe(&left_full, &node.left_column)?;
                let removed = HashSide::build(delta.removed.clone(), &node.right_column)?
                    .probe(&left_full, &node.left_column)?;
                // Keep the memoised build map aligned with the new build
                // input: extend in place on append-only deltas, drop (and
                // lazily rebuild) on removals.
                if let Some(NodeMemo::HashBuild(side)) = memos.get_mut(&id) {
                    if delta.removed.num_rows() == 0 {
                        side.extend_build(&delta.added, &node.right_column)?;
                    } else {
                        memos.remove(&id);
                    }
                }
                Ok(Propagation::Delta(DeltaBatch { added, removed }))
            }
        }
        PhysicalPlan::Join(node) => {
            let outer_touched = touches(&node.outer, &change.table);
            let inner_touched = match &node.inner {
                InnerInput::Plan(inner) => touches(inner, &change.table),
                InnerInput::Indexed(ii) => ii.key.table == change.table,
            };
            if outer_touched && inner_touched {
                return Ok(Propagation::Refresh(
                    "changed table appears on both sides of an ejoin",
                ));
            }
            if outer_touched {
                let delta = match propagate_node(&node.outer, ctx, change, memos, cursor)? {
                    Propagation::Delta(d) => d,
                    refresh => return Ok(refresh),
                };
                match &node.inner {
                    InnerInput::Indexed(ii) => {
                        *cursor += 0; // indexed inners hold no operators
                        Ok(Propagation::Delta(DeltaBatch {
                            added: indexed_ejoin(node, ii, &delta.added, ctx)?,
                            removed: indexed_ejoin(node, ii, &delta.removed, ctx)?,
                        }))
                    }
                    InnerInput::Plan(inner) => {
                        *cursor += inner.operator_count();
                        if let Entry::Vacant(slot) = memos.entry(id) {
                            slot.insert(NodeMemo::InnerTable(inner.execute(ctx)?.table));
                        }
                        let Some(NodeMemo::InnerTable(inner_table)) = memos.get(&id) else {
                            return Err(CoreError::InvalidInput(
                                "ivm memo kind mismatch at an ejoin".into(),
                            ));
                        };
                        Ok(Propagation::Delta(DeltaBatch {
                            added: scan_ejoin(node, &delta.added, inner_table, ctx)?,
                            removed: scan_ejoin(node, &delta.removed, inner_table, ctx)?,
                        }))
                    }
                }
            } else {
                // Inner delta: linear only for per-pair (threshold)
                // predicates under exact scan kernels.
                if matches!(node.inner, InnerInput::Indexed(_)) {
                    return Ok(Propagation::Refresh(
                        "delta to the inner of a persistent-index ejoin",
                    ));
                }
                if matches!(node.predicate, SimilarityPredicate::TopK(_)) {
                    return Ok(Propagation::Refresh("delta to the inner of a top-k ejoin"));
                }
                if matches!(node.op, PhysicalJoinOp::Index(_)) {
                    return Ok(Propagation::Refresh(
                        "delta to the inner of an approximate index probe",
                    ));
                }
                let InnerInput::Plan(inner) = &node.inner else {
                    unreachable!("indexed inner handled above");
                };
                *cursor += node.outer.operator_count();
                let delta = match propagate_node(inner, ctx, change, memos, cursor)? {
                    Propagation::Delta(d) => d,
                    refresh => return Ok(refresh),
                };
                let outer_full = node.outer.execute(ctx)?.table;
                let added = scan_ejoin(node, &outer_full, &delta.added, ctx)?;
                let removed = scan_ejoin(node, &outer_full, &delta.removed, ctx)?;
                if let Some(NodeMemo::InnerTable(inner_table)) = memos.get_mut(&id) {
                    if delta.removed.num_rows() == 0 {
                        *inner_table =
                            Table::concat(&[inner_table, &delta.added]).map_err(CoreError::from)?;
                    } else {
                        memos.remove(&id);
                    }
                }
                Ok(Propagation::Delta(DeltaBatch { added, removed }))
            }
        }
    }
}

/// Runs `node`'s join kernel over an explicit (outer, inner) table pair —
/// the delta-sized execution of a scan-kernel ejoin.
fn scan_ejoin(
    node: &JoinNode,
    outer: &Table,
    inner: &Table,
    ctx: &ExecContext<'_>,
) -> Result<Table> {
    let left_strings = outer
        .column_by_name(&node.left_column)
        .map_err(CoreError::from)?
        .as_utf8()?;
    let right_strings = inner
        .column_by_name(&node.right_column)
        .map_err(CoreError::from)?
        .as_utf8()?;
    let cache = ctx.embeddings.cache(&node.model, ctx.registry)?;
    let run = RunEmbedder::new(cache.as_ref());
    let model: &dyn Embedder = &run;
    let result = match &node.op {
        PhysicalJoinOp::NaiveNlj => {
            NaiveNlJoin::new().join(model, left_strings, right_strings, node.predicate)?
        }
        PhysicalJoinOp::PrefetchNlj(config) => {
            PrefetchNlJoin::new(*config).join(model, left_strings, right_strings, node.predicate)?
        }
        PhysicalJoinOp::Tensor(config) => {
            TensorJoin::new(*config).join(model, left_strings, right_strings, node.predicate)?
        }
        PhysicalJoinOp::Index(config) => {
            IndexJoin::new(*config).join(model, left_strings, right_strings, node.predicate)?
        }
    };
    materialize_output(outer, inner, &result)
}

/// Probes the persistent index of an indexed ejoin with just the rows of
/// `outer` — exact because each probe row's matches depend only on the
/// (unchanged) graph, and the engine resolves the *same* resident index a
/// full re-run would.
fn indexed_ejoin(
    node: &JoinNode,
    indexed: &IndexedInner,
    outer: &Table,
    ctx: &ExecContext<'_>,
) -> Result<Table> {
    let PhysicalJoinOp::Index(config) = &node.op else {
        return Err(CoreError::InvalidInput(format!(
            "planner bug: {} cannot consume a persistent-index inner input",
            node.op.name()
        )));
    };
    let epoch = ctx.indexes.publication_epoch(&indexed.key);
    let base = ctx
        .catalog
        .table(&indexed.key.table)
        .map_err(CoreError::from)?;
    let inner_strings = base
        .column_by_name(&indexed.key.column)
        .map_err(CoreError::from)?
        .as_utf8()?;
    let join = IndexJoin::new(*config);
    let cache = ctx.embeddings.cache(&node.model, ctx.registry)?;
    let run = RunEmbedder::new(cache.as_ref());
    let (index, _, _) = ctx
        .indexes
        .get_or_build_tracked_from(epoch, &indexed.key, || {
            let matrix = embed_all(&run, inner_strings)?;
            join.build_index(&matrix)
        })?;
    let mut inner_filter: Option<SelectionBitmap> = None;
    for expr in &indexed.filters {
        let bitmap = evaluate_predicate(expr, &base).map_err(CoreError::from)?;
        inner_filter = Some(match inner_filter {
            None => bitmap,
            Some(acc) => acc.and(&bitmap).map_err(CoreError::from)?,
        });
    }
    let outer_strings = outer
        .column_by_name(&node.left_column)
        .map_err(CoreError::from)?
        .as_utf8()?;
    let outer_matrix = embed_all(&run, outer_strings)?;
    let result = join.probe_join(
        &outer_matrix,
        &index,
        node.predicate,
        None,
        inner_filter.as_ref(),
    )?;
    let right_view = match &indexed.projection {
        Some(columns) => {
            let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
            base.project(&names).map_err(CoreError::from)?
        }
        None => base.as_ref().clone(),
    };
    materialize_output(outer, &right_view, &result)
}

/// Canonical byte keys for every row of a table, packed into one flat
/// buffer (a per-row `Vec<u8>` would put an allocation on every row of
/// every patch — the maintenance hot loop).  The encoding is stable and
/// type-tagged: two rows' keys compare equal exactly when their values
/// do.  Floats encode as their IEEE bit patterns, so "byte-identical"
/// really means bit-identical.
pub(crate) struct RowKeys {
    bytes: Vec<u8>,
    /// `rows + 1` offsets into `bytes`; row `i` is `offsets[i]..offsets[i+1]`.
    offsets: Vec<usize>,
}

impl RowKeys {
    /// Number of row keys.
    pub(crate) fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The canonical byte key of row `i`.
    pub(crate) fn key(&self, i: usize) -> &[u8] {
        &self.bytes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates the row keys in row order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.key(i))
    }
}

pub(crate) fn row_keys(table: &Table) -> RowKeys {
    let rows = table.num_rows();
    // first pass: per-row key length, so the flat buffer is sized exactly
    let mut lens = vec![0usize; rows];
    for column in table.columns() {
        match column {
            Column::Int64(_) | Column::Float64(_) => {
                for len in &mut lens {
                    *len += 9;
                }
            }
            Column::Date(_) => {
                for len in &mut lens {
                    *len += 5;
                }
            }
            Column::Utf8(v) => {
                for (len, s) in lens.iter_mut().zip(v) {
                    *len += 9 + s.len();
                }
            }
            Column::Bool(_) => {
                for len in &mut lens {
                    *len += 2;
                }
            }
            Column::Vector(m) => {
                for (row, len) in lens.iter_mut().enumerate() {
                    *len += 1 + 4 * m.row(row).expect("row in range").len();
                }
            }
        }
    }
    let mut offsets = Vec::with_capacity(rows + 1);
    let mut total = 0usize;
    offsets.push(0);
    for len in &lens {
        total += len;
        offsets.push(total);
    }
    // second pass: fill column-major through per-row write cursors
    let mut bytes = vec![0u8; total];
    let mut cursor = offsets[..rows].to_vec();
    let mut put = |cursor: &mut usize, chunk: &[u8]| {
        bytes[*cursor..*cursor + chunk.len()].copy_from_slice(chunk);
        *cursor += chunk.len();
    };
    for column in table.columns() {
        match column {
            Column::Int64(v) => {
                for (cursor, x) in cursor.iter_mut().zip(v) {
                    put(cursor, &[1]);
                    put(cursor, &x.to_le_bytes());
                }
            }
            Column::Float64(v) => {
                for (cursor, x) in cursor.iter_mut().zip(v) {
                    put(cursor, &[2]);
                    put(cursor, &x.to_bits().to_le_bytes());
                }
            }
            Column::Utf8(v) => {
                for (cursor, s) in cursor.iter_mut().zip(v) {
                    put(cursor, &[3]);
                    put(cursor, &(s.len() as u64).to_le_bytes());
                    put(cursor, s.as_bytes());
                }
            }
            Column::Date(v) => {
                for (cursor, x) in cursor.iter_mut().zip(v) {
                    put(cursor, &[4]);
                    put(cursor, &x.to_le_bytes());
                }
            }
            Column::Bool(v) => {
                for (cursor, x) in cursor.iter_mut().zip(v) {
                    put(cursor, &[5]);
                    put(cursor, &[u8::from(*x)]);
                }
            }
            Column::Vector(m) => {
                for (row, cursor) in cursor.iter_mut().enumerate() {
                    put(cursor, &[6]);
                    for x in m.row(row).expect("row in range") {
                        put(cursor, &x.to_bits().to_le_bytes());
                    }
                }
            }
        }
    }
    RowKeys { bytes, offsets }
}

/// FNV-1a over a byte slice (the same checksum the serving layer frames
/// results with).
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The multiset difference `new ∖ old` / `old ∖ new`, as a [`DeltaBatch`]
/// (used to turn a full refresh into a correct delta frame).
pub(crate) fn diff_tables(old: &Table, new: &Table) -> Result<DeltaBatch> {
    let old_keys = row_keys(old);
    let new_keys = row_keys(new);
    let mut counts: HashMap<&[u8], usize> = HashMap::with_capacity(old_keys.len());
    for key in old_keys.iter() {
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut added_rows = Vec::new();
    for (i, key) in new_keys.iter().enumerate() {
        match counts.get_mut(key) {
            Some(count) if *count > 0 => *count -= 1,
            _ => added_rows.push(i),
        }
    }
    let mut removed_rows = Vec::new();
    for (i, key) in old_keys.iter().enumerate() {
        if let Some(count) = counts.get_mut(key) {
            if *count > 0 {
                *count -= 1;
                removed_rows.push(i);
            }
        }
    }
    Ok(DeltaBatch {
        added: new.take(&added_rows).map_err(CoreError::from)?,
        removed: old.take(&removed_rows).map_err(CoreError::from)?,
    })
}

/// The maintained result of a standing query: a row multiset carried as a
/// table, patched in place by result deltas.
#[derive(Debug, Clone)]
pub struct MaintainedResult {
    table: Table,
}

impl MaintainedResult {
    /// Seeds the maintained result from a full run.
    pub fn new(table: Table) -> Self {
        Self { table }
    }

    /// The maintained rows (insertion order — use
    /// [`MaintainedResult::canonical`] for a comparable ordering).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of maintained rows.
    pub fn rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Patches the multiset with a result delta.
    ///
    /// # Errors
    /// Returns an error when a removed row is not present — the signal that
    /// maintenance diverged and the standing query must refresh.
    pub fn apply(&mut self, delta: &DeltaBatch) -> Result<()> {
        if delta.removed.num_rows() > 0 {
            let removed_keys = row_keys(&delta.removed);
            let mut pending: HashMap<&[u8], usize> = HashMap::with_capacity(removed_keys.len());
            for key in removed_keys.iter() {
                *pending.entry(key).or_insert(0) += 1;
            }
            let own_keys = row_keys(&self.table);
            let mut keep = Vec::with_capacity(self.table.num_rows());
            let mut outstanding = removed_keys.len();
            for (i, key) in own_keys.iter().enumerate() {
                match pending.get_mut(key) {
                    Some(count) if *count > 0 => {
                        *count -= 1;
                        outstanding -= 1;
                    }
                    _ => keep.push(i),
                }
            }
            if outstanding > 0 {
                return Err(CoreError::InvalidInput(format!(
                    "ivm divergence: {outstanding} removed row(s) not in the maintained result"
                )));
            }
            self.table = self.table.take(&keep).map_err(CoreError::from)?;
        }
        if delta.added.num_rows() > 0 {
            self.table = Table::concat(&[&self.table, &delta.added]).map_err(CoreError::from)?;
        }
        Ok(())
    }

    /// The maintained rows in canonical (sorted-by-key) order, so two
    /// multiset-equal results render byte-identically.
    pub fn canonical(&self) -> Result<Table> {
        let keys = row_keys(&self.table);
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by(|&a, &b| keys.key(a).cmp(keys.key(b)));
        self.table.take(&order).map_err(CoreError::from)
    }

    /// FNV-1a checksum of the canonical row encoding — equal exactly when
    /// the maintained multisets are equal.
    pub fn checksum(&self) -> u64 {
        let keys = row_keys(&self.table);
        let mut sorted: Vec<&[u8]> = keys.iter().collect();
        sorted.sort_unstable();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for key in sorted {
            hash = fnv1a(key, hash);
        }
        hash
    }
}

/// Tunables of a standing query's maintenance loop.
#[derive(Debug, Clone, Copy)]
pub struct IvmPolicy {
    /// Propagate incrementally only while the base-table delta stays under
    /// this fraction of the table's rows; larger deltas fall back to a full
    /// re-run (propagation work scales with the delta, so past this point
    /// the re-run is the cheaper exact plan).
    pub refresh_fraction: f64,
    /// Bounded mailbox depth.  When a subscriber falls this far behind, the
    /// queued frames are dropped and the next poll returns one snapshot
    /// frame carrying the complete current result.
    pub mailbox_capacity: usize,
}

impl Default for IvmPolicy {
    fn default() -> Self {
        Self {
            refresh_fraction: 0.3,
            mailbox_capacity: 64,
        }
    }
}

/// One result change emitted to a standing query's mailbox.
#[derive(Debug, Clone)]
pub struct ResultDelta {
    /// Version of the mutated base table after the delta that produced
    /// this frame (0 for overflow snapshot frames).
    pub version: u64,
    /// Process-wide sequence number of the `apply_delta` call that produced
    /// this frame (0 for overflow snapshot frames, which depend on
    /// per-subscriber mailbox state).  Two standing queries over the same
    /// plan absorbing the same table change emit frames with the same `seq`
    /// and identical content — the key a serving layer uses to render a
    /// frame body once and fan it out to every subscriber.
    pub seq: u64,
    /// Result rows added.
    pub added: Table,
    /// Result rows removed.
    pub removed: Table,
    /// Whether this frame came from a full re-run (refresh fallback) rather
    /// than delta propagation.  The frame is still an exact diff.
    pub refreshed: bool,
    /// Whether `added` is the *complete* current result (mailbox-overflow
    /// recovery): the subscriber must replace its state, not patch it.
    pub snapshot: bool,
}

/// Counters of one standing query's maintenance history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandingStats {
    /// Deltas handled incrementally.
    pub propagations: u64,
    /// Full re-runs (non-linear operators, oversized deltas, divergence).
    pub refreshes: u64,
    /// Frames currently queued in the mailbox.
    pub pending: usize,
}

struct StandingState {
    maintained: MaintainedResult,
    mailbox: VecDeque<ResultDelta>,
    overflowed: bool,
    propagations: u64,
    refreshes: u64,
}

/// How one standing query absorbed one table change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChangeOutcome {
    /// The query does not read the changed table.
    Unaffected,
    /// Handled by delta propagation.
    Propagated,
    /// Handled by a full re-run.
    Refreshed,
}

pub(crate) struct StandingInner {
    id: u64,
    prepared: PreparedQuery<'static>,
    engine: DeltaEngine,
    policy: IvmPolicy,
    state: Mutex<StandingState>,
}

impl StandingInner {
    fn push(&self, state: &mut StandingState, frame: ResultDelta) {
        if state.mailbox.len() >= self.policy.mailbox_capacity {
            state.mailbox.clear();
            state.overflowed = true;
            return;
        }
        if !state.overflowed {
            state.mailbox.push_back(frame);
        }
    }

    fn refresh_locked(&self, state: &mut StandingState) -> Result<DeltaBatch> {
        let report = self.prepared.run()?;
        let delta = diff_tables(state.maintained.table(), &report.table)?;
        state.maintained = MaintainedResult::new(report.table);
        state.refreshes += 1;
        self.engine.clear();
        Ok(delta)
    }

    /// Absorbs one applied table change: propagate if linear and small
    /// enough, refresh otherwise; queue the resulting frame.
    pub(crate) fn on_table_change(
        &self,
        change: &TableChange,
        version: u64,
        seq: u64,
    ) -> Result<ChangeOutcome> {
        let plan = self.prepared.physical_plan();
        if !touches(plan, &change.table) {
            return Ok(ChangeOutcome::Unaffected);
        }
        let mut state = self.state.lock();
        let base_rows = self
            .prepared
            .exec_session()
            .catalog()
            .table(&change.table)
            .map(|t| t.num_rows())
            .unwrap_or(0);
        let oversized =
            change.rows() as f64 > self.policy.refresh_fraction * base_rows.max(1) as f64;
        let registry = self.prepared.exec_registry();
        let session = self.prepared.exec_session();
        let ctx = ExecContext {
            catalog: session.catalog(),
            registry: &registry,
            embeddings: session.embedding_caches(),
            indexes: session.index_manager(),
            pool: *cej_exec::ExecPool::global(),
        };
        let propagation = if oversized {
            Propagation::Refresh("delta exceeds the refresh-fraction cost threshold")
        } else {
            self.engine.propagate(plan, &ctx, change)?
        };
        let (delta, refreshed) = match propagation {
            Propagation::Delta(delta) => {
                // Divergence (a removed row missing from the maintained
                // multiset) downgrades to a refresh instead of failing.
                if state.maintained.apply(&delta).is_ok() {
                    state.propagations += 1;
                    (delta, false)
                } else {
                    (self.refresh_locked(&mut state)?, true)
                }
            }
            Propagation::Refresh(_) => (self.refresh_locked(&mut state)?, true),
        };
        if !delta.is_empty() {
            self.push(
                &mut state,
                ResultDelta {
                    version,
                    seq,
                    added: delta.added,
                    removed: delta.removed,
                    refreshed,
                    snapshot: false,
                },
            );
        }
        Ok(if refreshed {
            ChangeOutcome::Refreshed
        } else {
            ChangeOutcome::Propagated
        })
    }
}

/// A live, delta-maintained query: created by
/// [`crate::prepared::PreparedQuery::subscribe`], updated by every
/// [`crate::session::ContextJoinSession::apply_delta`] that touches one of
/// its tables, and drained through [`StandingQuery::poll`].
///
/// Cloning returns a second handle onto the same standing query (same
/// mailbox, same maintained result).
#[derive(Clone)]
pub struct StandingQuery {
    inner: Arc<StandingInner>,
}

impl StandingQuery {
    /// The runtime-assigned id (what the serving layer's `SUBSCRIBE <id>`
    /// names).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Fingerprint of the maintained physical plan
    /// ([`PreparedQuery::fingerprint`]): standing queries with equal
    /// fingerprints produce identical frame content for the same
    /// [`ResultDelta::seq`], so a serving layer can share one rendered
    /// frame body across all of them.
    pub fn fingerprint(&self) -> u64 {
        self.inner.prepared.fingerprint()
    }

    /// The next queued result frame, if any.  After a mailbox overflow this
    /// returns a single snapshot frame carrying the complete current result.
    pub fn poll(&self) -> Option<ResultDelta> {
        let mut state = self.inner.state.lock();
        if state.overflowed {
            state.overflowed = false;
            state.mailbox.clear();
            let snapshot = state
                .maintained
                .canonical()
                .unwrap_or_else(|_| state.maintained.table().clone());
            let empty = snapshot.take(&[]).ok()?;
            return Some(ResultDelta {
                version: 0,
                seq: 0,
                added: snapshot,
                removed: empty,
                refreshed: true,
                snapshot: true,
            });
        }
        state.mailbox.pop_front()
    }

    /// Drains every queued frame.
    pub fn drain(&self) -> Vec<ResultDelta> {
        let mut out = Vec::new();
        while let Some(frame) = self.poll() {
            out.push(frame);
        }
        out
    }

    /// The maintained result in canonical row order.
    ///
    /// # Errors
    /// Propagates storage errors from the canonicalising take.
    pub fn snapshot(&self) -> Result<Table> {
        self.inner.state.lock().maintained.canonical()
    }

    /// Checksum of the maintained multiset (order-independent).
    pub fn checksum(&self) -> u64 {
        self.inner.state.lock().maintained.checksum()
    }

    /// Forces a full re-run, replacing the maintained result and returning
    /// the exact diff against the previous state (nothing is queued to the
    /// mailbox — the caller owns the frame).
    ///
    /// # Errors
    /// Propagates execution errors from the re-run.
    pub fn refresh(&self) -> Result<DeltaBatch> {
        let mut state = self.inner.state.lock();
        self.inner.refresh_locked(&mut state)
    }

    /// Maintenance counters.
    pub fn stats(&self) -> StandingStats {
        let state = self.inner.state.lock();
        StandingStats {
            propagations: state.propagations,
            refreshes: state.refreshes,
            pending: state.mailbox.len(),
        }
    }
}

impl std::fmt::Debug for StandingQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("StandingQuery")
            .field("id", &self.inner.id)
            .field("propagations", &stats.propagations)
            .field("refreshes", &stats.refreshes)
            .field("pending", &stats.pending)
            .finish()
    }
}

/// Creates and registers a standing query from a prepared statement: one
/// seeding run, then delta maintenance (called by
/// [`crate::prepared::PreparedQuery::subscribe`]).
pub(crate) fn subscribe(
    prepared: PreparedQuery<'static>,
    policy: IvmPolicy,
) -> Result<StandingQuery> {
    let seed = prepared.run()?;
    let session = prepared.exec_session().clone();
    let runtime = session.ivm_runtime();
    let id = runtime.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let inner = Arc::new(StandingInner {
        id,
        prepared,
        engine: DeltaEngine::new(),
        policy,
        state: Mutex::new(StandingState {
            maintained: MaintainedResult::new(seed.table),
            mailbox: VecDeque::new(),
            overflowed: false,
            propagations: 0,
            refreshes: 0,
        }),
    });
    runtime.standing.write().insert(id, inner.clone());
    Ok(StandingQuery { inner })
}

/// Aggregate view of a session's IVM activity — what the serving layer's
/// `STATS` verb reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IvmStats {
    /// Standing queries currently registered.
    pub standing: usize,
    /// Table deltas applied through the session.
    pub deltas_applied: u64,
    /// Standing-query updates handled by delta propagation.
    pub propagations: u64,
    /// Standing-query updates handled by a full re-run.
    pub refreshes: u64,
    /// Delta-propagation latency percentiles in microseconds (p50, p95,
    /// p99) — zero until the first delta.  Sourced from a log-bucketed
    /// [`cej_obs::Histogram`] over the full history: bounded memory, ≈4.4%
    /// bucket resolution, no window-recency bias.
    pub latency_us: (u64, u64, u64),
}

/// Session-owned registry of standing queries plus delta bookkeeping.
#[derive(Default)]
pub struct IvmRuntime {
    pub(crate) standing: RwLock<HashMap<u64, Arc<StandingInner>>>,
    pub(crate) next_id: AtomicU64,
    deltas_applied: AtomicU64,
    propagations: AtomicU64,
    refreshes: AtomicU64,
    latencies_us: cej_obs::Histogram,
    /// Serialises whole delta applications (catalog publish + index
    /// maintenance + standing-query notification), so every standing query
    /// observes table changes in one global order.
    pub(crate) apply_gate: Mutex<()>,
}

impl IvmRuntime {
    /// A snapshot of the registered standing queries.
    pub(crate) fn queries(&self) -> Vec<Arc<StandingInner>> {
        let mut out: Vec<Arc<StandingInner>> = self.standing.read().values().cloned().collect();
        out.sort_by_key(|q| q.id);
        out
    }

    /// Removes a standing query; returns whether it existed.
    pub(crate) fn unregister(&self, id: u64) -> bool {
        self.standing.write().remove(&id).is_some()
    }

    /// Looks up a registered standing query by id.
    pub(crate) fn get(&self, id: u64) -> Option<StandingQuery> {
        self.standing.read().get(&id).map(|inner| StandingQuery {
            inner: inner.clone(),
        })
    }

    pub(crate) fn record_apply(&self, outcomes: &[ChangeOutcome], elapsed: std::time::Duration) {
        self.deltas_applied.fetch_add(1, Ordering::Relaxed);
        for outcome in outcomes {
            match outcome {
                ChangeOutcome::Propagated => {
                    self.propagations.fetch_add(1, Ordering::Relaxed);
                }
                ChangeOutcome::Refreshed => {
                    self.refreshes.fetch_add(1, Ordering::Relaxed);
                }
                ChangeOutcome::Unaffected => {}
            }
        }
        self.latencies_us
            .observe(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// The propagation-latency histogram handle — what the serving layer
    /// registers into its metrics registry (shares the cells, no copying).
    pub fn latency_histogram(&self) -> cej_obs::Histogram {
        self.latencies_us.clone()
    }

    /// Aggregate counters plus propagation-latency percentiles.
    pub fn stats(&self) -> IvmStats {
        let latency_us = if self.latencies_us.count() == 0 {
            (0, 0, 0)
        } else {
            (
                self.latencies_us.quantile(0.50),
                self.latencies_us.quantile(0.95),
                self.latencies_us.quantile(0.99),
            )
        };
        IvmStats {
            standing: self.standing.read().len(),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            propagations: self.propagations.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            latency_us,
        }
    }
}

impl std::fmt::Debug for IvmRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("IvmRuntime")
            .field("standing", &stats.standing)
            .field("deltas_applied", &stats.deltas_applied)
            .field("propagations", &stats.propagations)
            .field("refreshes", &stats.refreshes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::index_join::IndexJoinConfig;
    use crate::session::{ContextJoinSession, JoinStrategy};
    use cej_embedding::{FastTextConfig, FastTextModel};
    use cej_relational::{col, lit_i64, LogicalPlan};
    use cej_storage::{Delta, ScalarValue, TableBuilder};

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn photos(ids: &[i64], captions: &[&str]) -> Table {
        TableBuilder::new()
            .int64("photo_id", ids.to_vec())
            .utf8("caption", captions.iter().map(|s| s.to_string()).collect())
            .build()
            .unwrap()
    }

    fn session() -> ContextJoinSession {
        let mut s = ContextJoinSession::new();
        s.register_table(
            "photos",
            photos(
                &[1, 2, 3, 4],
                &["barbecue", "database", "laptop", "vacation"],
            ),
        );
        s.register_table(
            "products",
            TableBuilder::new()
                .int64("product_id", vec![10, 20, 30])
                .utf8(
                    "title",
                    vec!["barbecues".into(), "databases".into(), "notebooks".into()],
                )
                .build()
                .unwrap(),
        );
        s.register_table(
            "owners",
            TableBuilder::new()
                .int64("owner_photo", vec![1, 2, 2, 9])
                .utf8(
                    "owner",
                    vec!["ada".into(), "bob".into(), "cyd".into(), "eve".into()],
                )
                .build()
                .unwrap(),
        );
        s.register_model("fasttext", model());
        s
    }

    /// Asserts the standing query's maintained multiset is byte-identical to
    /// re-running its plan from scratch right now.
    fn assert_in_sync(s: &ContextJoinSession, q: &StandingQuery, plan: &LogicalPlan) {
        let rerun = s.execute(plan).unwrap().table;
        let fresh = MaintainedResult::new(rerun);
        assert_eq!(
            q.checksum(),
            fresh.checksum(),
            "maintained result diverged from a full re-run"
        );
    }

    fn ejoin_plan(predicate: SimilarityPredicate) -> LogicalPlan {
        LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("products"),
            "caption",
            "title",
            "fasttext",
            predicate,
        )
    }

    #[test]
    fn filter_standing_query_propagates_appends_and_deletes() {
        let s = session();
        let plan = LogicalPlan::scan("photos").select(col("photo_id").gt(lit_i64(1)));
        let q = s
            .prepare(&plan)
            .unwrap()
            .subscribe_with(IvmPolicy {
                refresh_fraction: f64::INFINITY,
                ..IvmPolicy::default()
            })
            .unwrap();
        assert_eq!(q.snapshot().unwrap().num_rows(), 3);

        let report = s
            .apply_delta(
                "photos",
                &Delta::Append(photos(&[5, 6], &["sunset", "harbor"])),
            )
            .unwrap();
        assert_eq!(report.added_rows, 2);
        assert_eq!(report.propagated, 1);
        assert_eq!(report.refreshed, 0);
        assert_in_sync(&s, &q, &plan);

        let frame = q.poll().unwrap();
        assert!(!frame.refreshed);
        assert_eq!(frame.added.num_rows(), 2);
        assert_eq!(frame.removed.num_rows(), 0);

        s.apply_delta(
            "photos",
            &Delta::DeleteByKey {
                key_column: "photo_id".into(),
                keys: vec![ScalarValue::Int64(2), ScalarValue::Int64(5)],
            },
        )
        .unwrap();
        assert_in_sync(&s, &q, &plan);
        let frame = q.poll().unwrap();
        assert_eq!(frame.removed.num_rows(), 2);
        assert_eq!(q.stats().propagations, 2);
        assert_eq!(q.stats().refreshes, 0);
    }

    #[test]
    fn hash_join_standing_query_is_incremental_on_both_sides() {
        let s = session();
        let plan = LogicalPlan::join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("owners"),
            "photo_id",
            "owner_photo",
        );
        let q = s
            .prepare(&plan)
            .unwrap()
            .subscribe_with(IvmPolicy {
                refresh_fraction: f64::INFINITY,
                ..IvmPolicy::default()
            })
            .unwrap();
        // photo 1 -> ada; photo 2 -> bob, cyd
        assert_eq!(q.snapshot().unwrap().num_rows(), 3);

        // probe-side (left) append: photo 9 now matches eve
        s.apply_delta("photos", &Delta::Append(photos(&[9], &["glacier"])))
            .unwrap();
        assert_in_sync(&s, &q, &plan);
        assert_eq!(q.poll().unwrap().added.num_rows(), 1);

        // build-side (right) append-only delta extends the live hash map
        s.apply_delta(
            "owners",
            &Delta::Append(
                TableBuilder::new()
                    .int64("owner_photo", vec![3, 9])
                    .utf8("owner", vec!["dan".into(), "fay".into()])
                    .build()
                    .unwrap(),
            ),
        )
        .unwrap();
        assert_in_sync(&s, &q, &plan);
        assert_eq!(q.poll().unwrap().added.num_rows(), 2);

        // build-side delete drops the memo and still stays exact
        s.apply_delta(
            "owners",
            &Delta::DeleteByKey {
                key_column: "owner".into(),
                keys: vec![ScalarValue::Utf8("bob".into())],
            },
        )
        .unwrap();
        assert_in_sync(&s, &q, &plan);
        let frame = q.poll().unwrap();
        assert_eq!(frame.removed.num_rows(), 1);
        assert_eq!(q.stats().propagations, 3);
        assert_eq!(q.stats().refreshes, 0);
    }

    #[test]
    fn upsert_propagates_as_remove_plus_add() {
        let s = session();
        let plan = LogicalPlan::scan("photos");
        let q = s
            .prepare(&plan)
            .unwrap()
            .subscribe_with(IvmPolicy {
                refresh_fraction: f64::INFINITY,
                ..IvmPolicy::default()
            })
            .unwrap();
        s.apply_delta(
            "photos",
            &Delta::Upsert {
                key_column: "photo_id".into(),
                rows: photos(&[2, 7], &["lakeside", "comet"]),
            },
        )
        .unwrap();
        assert_in_sync(&s, &q, &plan);
        let frame = q.poll().unwrap();
        assert_eq!(frame.added.num_rows(), 2);
        assert_eq!(frame.removed.num_rows(), 1, "old photo 2 row replaced");
    }

    #[test]
    fn threshold_ejoin_propagates_outer_and_inner_deltas() {
        let s = session();
        let plan = ejoin_plan(SimilarityPredicate::Threshold(0.5));
        let q = s
            .prepare(&plan)
            .unwrap()
            .subscribe_with(IvmPolicy {
                refresh_fraction: f64::INFINITY,
                ..IvmPolicy::default()
            })
            .unwrap();

        // outer append: only the new rows are joined against the inner
        s.apply_delta("photos", &Delta::Append(photos(&[5], &["databases"])))
            .unwrap();
        assert_in_sync(&s, &q, &plan);

        // inner append under a threshold scan kernel is linear too
        s.apply_delta(
            "products",
            &Delta::Append(
                TableBuilder::new()
                    .int64("product_id", vec![40])
                    .utf8("title", vec!["laptops".into()])
                    .build()
                    .unwrap(),
            ),
        )
        .unwrap();
        assert_in_sync(&s, &q, &plan);

        // inner delete drops the memoised inner and still stays exact
        s.apply_delta(
            "products",
            &Delta::DeleteByKey {
                key_column: "product_id".into(),
                keys: vec![ScalarValue::Int64(20)],
            },
        )
        .unwrap();
        assert_in_sync(&s, &q, &plan);
        assert_eq!(
            q.stats().refreshes,
            0,
            "threshold scan ejoin never refreshes"
        );
    }

    #[test]
    fn topk_ejoin_outer_delta_propagates_but_inner_delta_refreshes() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Tensor(
            crate::join::tensor_join::TensorJoinConfig::default(),
        ));
        let plan = ejoin_plan(SimilarityPredicate::TopK(1));
        let q = s.prepare(&plan).unwrap().subscribe().unwrap();

        s.apply_delta("photos", &Delta::Append(photos(&[5], &["grill"])))
            .unwrap();
        assert_in_sync(&s, &q, &plan);
        assert_eq!(q.stats().propagations, 1);

        // a top-k result can lose previously-best matches when the inner
        // grows: must refresh, and the refresh diff must reconcile exactly
        let report = s
            .apply_delta(
                "products",
                &Delta::Append(
                    TableBuilder::new()
                        .int64("product_id", vec![50])
                        .utf8("title", vec!["grills".into()])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        assert_eq!(report.refreshed, 1);
        assert_in_sync(&s, &q, &plan);
        let frames = q.drain();
        assert!(frames.iter().any(|f| f.refreshed));
    }

    #[test]
    fn indexed_ejoin_outer_delta_probes_the_extended_persistent_graph() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Index(IndexJoinConfig {
            params: cej_index::HnswParams::tiny(),
            range_probe_k: 8,
        }));
        let plan = ejoin_plan(SimilarityPredicate::TopK(1));
        let q = s.prepare(&plan).unwrap().subscribe().unwrap();
        assert_eq!(s.index_manager().stats().builds, 1);

        // outer append probes the resident graph: no rebuild, no refresh
        s.apply_delta("photos", &Delta::Append(photos(&[5], &["notebook"])))
            .unwrap();
        assert_eq!(s.index_manager().stats().builds, 1, "no index rebuild");
        assert_eq!(q.stats().propagations, 1);
        assert_in_sync(&s, &q, &plan);

        // inner append extends the graph in place (still no rebuild) and the
        // standing query refreshes against it
        s.apply_delta(
            "products",
            &Delta::Append(
                TableBuilder::new()
                    .int64("product_id", vec![60])
                    .utf8("title", vec!["vacations".into()])
                    .build()
                    .unwrap(),
            ),
        )
        .unwrap();
        assert_eq!(
            s.index_manager().stats().builds,
            1,
            "graph extended, not rebuilt"
        );
        assert_eq!(q.stats().refreshes, 1);
        assert_in_sync(&s, &q, &plan);
    }

    #[test]
    fn oversized_delta_falls_back_to_refresh() {
        let s = session();
        let plan = LogicalPlan::scan("photos");
        let q = s
            .prepare(&plan)
            .unwrap()
            .subscribe_with(IvmPolicy {
                refresh_fraction: 0.1,
                ..IvmPolicy::default()
            })
            .unwrap();
        // 3 appended rows over a 4-row base is way past 10%
        let report = s
            .apply_delta(
                "photos",
                &Delta::Append(photos(&[5, 6, 7], &["a", "b", "c"])),
            )
            .unwrap();
        assert_eq!(report.refreshed, 1);
        assert_eq!(report.propagated, 0);
        assert_in_sync(&s, &q, &plan);
    }

    #[test]
    fn mailbox_overflow_collapses_into_one_snapshot_frame() {
        let s = session();
        let plan = LogicalPlan::scan("photos");
        let q = s
            .prepare(&plan)
            .unwrap()
            .subscribe_with(IvmPolicy {
                mailbox_capacity: 2,
                ..IvmPolicy::default()
            })
            .unwrap();
        for i in 0..5 {
            s.apply_delta("photos", &Delta::Append(photos(&[100 + i], &["x"])))
                .unwrap();
        }
        let frame = q.poll().unwrap();
        assert!(frame.snapshot, "overflow must produce a snapshot frame");
        assert_eq!(frame.added.num_rows(), 9);
        assert_eq!(frame.removed.num_rows(), 0);
        assert!(
            q.poll().is_none(),
            "snapshot frame supersedes queued frames"
        );
        assert_in_sync(&s, &q, &plan);
    }

    #[test]
    fn unsubscribe_freezes_the_standing_query() {
        let s = session();
        let q = s
            .prepare(&LogicalPlan::scan("photos"))
            .unwrap()
            .subscribe()
            .unwrap();
        assert!(s.standing_query(q.id()).is_some());
        assert!(s.unsubscribe(q.id()));
        assert!(!s.unsubscribe(q.id()));
        s.apply_delta("photos", &Delta::Append(photos(&[5], &["x"])))
            .unwrap();
        assert_eq!(
            q.snapshot().unwrap().num_rows(),
            4,
            "frozen after unsubscribe"
        );
        assert!(q.poll().is_none());
    }

    #[test]
    fn ivm_stats_count_deltas_and_latencies() {
        let s = session();
        let _q = s
            .prepare(&LogicalPlan::scan("photos"))
            .unwrap()
            .subscribe()
            .unwrap();
        s.apply_delta("photos", &Delta::Append(photos(&[5], &["x"])))
            .unwrap();
        s.apply_delta("photos", &Delta::Append(photos(&[6], &["y"])))
            .unwrap();
        let stats = s.ivm_stats();
        assert_eq!(stats.standing, 1);
        assert_eq!(stats.deltas_applied, 2);
        assert_eq!(stats.propagations, 2);
        assert_eq!(stats.refreshes, 0);
        assert!(stats.latency_us.2 >= stats.latency_us.0);
    }

    #[test]
    fn maintained_result_detects_divergence_and_diffs_are_exact() {
        let a = photos(&[1, 2, 3], &["a", "b", "c"]);
        let b = photos(&[2, 3, 4], &["b", "c", "d"]);
        let delta = diff_tables(&a, &b).unwrap();
        assert_eq!(delta.added.num_rows(), 1);
        assert_eq!(delta.removed.num_rows(), 1);
        let mut maintained = MaintainedResult::new(a.clone());
        maintained.apply(&delta).unwrap();
        assert_eq!(maintained.checksum(), MaintainedResult::new(b).checksum());
        // removing a row that is not present is a divergence error
        let bogus = DeltaBatch {
            added: photos(&[], &[]),
            removed: photos(&[99], &["zz"]),
        };
        assert!(maintained.apply(&bogus).is_err());
        // canonical order is deterministic regardless of insertion order
        let x = MaintainedResult::new(photos(&[2, 1], &["b", "a"]));
        let y = MaintainedResult::new(photos(&[1, 2], &["a", "b"]));
        assert_eq!(
            x.canonical()
                .unwrap()
                .column_by_name("photo_id")
                .unwrap()
                .as_int64()
                .unwrap(),
            y.canonical()
                .unwrap()
                .column_by_name("photo_id")
                .unwrap()
                .as_int64()
                .unwrap(),
        );
        assert_eq!(x.checksum(), y.checksum());
    }

    #[test]
    fn untouched_tables_do_not_disturb_standing_queries() {
        let s = session();
        let plan = LogicalPlan::scan("photos");
        let q = s.prepare(&plan).unwrap().subscribe().unwrap();
        let report = s
            .apply_delta(
                "owners",
                &Delta::Append(
                    TableBuilder::new()
                        .int64("owner_photo", vec![1])
                        .utf8("owner", vec!["gus".into()])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        assert_eq!(report.standing_updated, 0);
        assert!(q.poll().is_none());
        assert_eq!(q.stats().propagations, 0);
    }
}
