//! End-to-end tests for N-table queries: join-order invariance across
//! logically equivalent plans and executors, the redesigned builder API,
//! naming-rule errors, and targeted threshold rebinding.

use crate::builder::sim_gte;
use crate::error::CoreError;
use crate::session::ContextJoinSession;
use crate::ExecMode;
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::{col, lit_i64, LogicalPlan, RelationalError, SimilarityPredicate};
use cej_storage::{Table, TableBuilder};

fn model() -> FastTextModel {
    FastTextModel::new(FastTextConfig {
        dim: 16,
        buckets: 1000,
        ..FastTextConfig::default()
    })
    .unwrap()
}

/// Star schema: `orders` (fact) → `customers` → `regions`, plus a `products`
/// table joined by text similarity on the order note.
fn star_session() -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "orders",
        TableBuilder::new()
            .int64("order_id", vec![1, 2, 3, 4, 5, 6])
            .int64("cust_fk", vec![10, 10, 20, 20, 30, 30])
            .int64("total", vec![50, 150, 250, 80, 120, 300])
            .utf8(
                "note",
                vec![
                    "barbecue grill".into(),
                    "database server".into(),
                    "barbecue tongs".into(),
                    "laptop sleeve".into(),
                    "database book".into(),
                    "garden barbecue".into(),
                ],
            )
            .build()
            .unwrap(),
    );
    s.register_table(
        "customers",
        TableBuilder::new()
            .int64("cust_id", vec![10, 20, 30])
            .int64("region_fk", vec![100, 100, 200])
            .utf8(
                "cust_name",
                vec!["ada".into(), "grace".into(), "edsger".into()],
            )
            .build()
            .unwrap(),
    );
    s.register_table(
        "regions",
        TableBuilder::new()
            .int64("region_id", vec![100, 200])
            .utf8("region_name", vec!["west".into(), "east".into()])
            .build()
            .unwrap(),
    );
    s.register_table(
        "products",
        TableBuilder::new()
            .int64("product_id", vec![1000, 2000, 3000])
            .utf8(
                "title",
                vec![
                    "barbecues and grills".into(),
                    "database systems".into(),
                    "notebook computers".into(),
                ],
            )
            .build()
            .unwrap(),
    );
    s.register_model("fasttext", model());
    for table in ["orders", "customers", "regions", "products"] {
        s.catalog().analyze(table).unwrap();
    }
    s
}

/// Renders a table as a set-comparable string: columns in sorted-name order,
/// rows rendered then sorted.  This erases the column order and row order a
/// specific join order produces while preserving every value.
fn canonical(table: &Table) -> Vec<String> {
    let mut names: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    names.sort();
    let mut rows = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        let mut cells = Vec::with_capacity(names.len());
        for name in &names {
            let column = table.column_by_name(name).unwrap();
            let cell = if let Ok(v) = column.as_int64() {
                v[row].to_string()
            } else if let Ok(v) = column.as_utf8() {
                v[row].clone()
            } else if let Ok(v) = column.as_float64() {
                format!("{}", v[row])
            } else if let Ok(v) = column.as_date() {
                v[row].to_string()
            } else {
                panic!("unexpected column type for {name}")
            };
            cells.push(format!("{name}={cell}"));
        }
        rows.push(cells.join("\t"));
    }
    rows.sort();
    rows
}

fn run_mode(s: &ContextJoinSession, plan: &LogicalPlan, mode: ExecMode) -> Table {
    let prepared = s.prepare(plan).unwrap();
    let ctx = crate::executor::ExecContext {
        catalog: s.catalog(),
        registry: &s.model_registry(),
        embeddings: s.embedding_caches(),
        indexes: s.index_manager(),
        pool: *cej_exec::ExecPool::global(),
    };
    prepared
        .physical_plan()
        .execute_with(&ctx, mode)
        .unwrap()
        .table
}

/// Logically equivalent 4-table plans differing in join-chain order and
/// tree shape (left-deep both orientations, plus a bushy right side).
fn equivalent_plans() -> Vec<LogicalPlan> {
    let ejoin = |left: LogicalPlan| {
        LogicalPlan::e_join(
            left,
            LogicalPlan::scan("products"),
            "note",
            "title",
            "fasttext",
            SimilarityPredicate::Threshold(0.4),
        )
    };
    let left_deep = LogicalPlan::join(
        LogicalPlan::join(
            LogicalPlan::scan("orders"),
            LogicalPlan::scan("customers"),
            "cust_fk",
            "cust_id",
        ),
        LogicalPlan::scan("regions"),
        "region_fk",
        "region_id",
    );
    let flipped = LogicalPlan::join(
        LogicalPlan::join(
            LogicalPlan::scan("customers"),
            LogicalPlan::scan("orders"),
            "cust_id",
            "cust_fk",
        ),
        LogicalPlan::scan("regions"),
        "region_fk",
        "region_id",
    );
    let bushy = LogicalPlan::join(
        LogicalPlan::scan("orders"),
        LogicalPlan::join(
            LogicalPlan::scan("customers"),
            LogicalPlan::scan("regions"),
            "region_fk",
            "region_id",
        ),
        "cust_fk",
        "cust_id",
    );
    let dims_first = LogicalPlan::join(
        LogicalPlan::join(
            LogicalPlan::scan("regions"),
            LogicalPlan::scan("customers"),
            "region_id",
            "region_fk",
        ),
        LogicalPlan::scan("orders"),
        "cust_id",
        "cust_fk",
    );
    vec![
        ejoin(left_deep),
        ejoin(flipped),
        ejoin(bushy),
        ejoin(dims_first),
    ]
}

#[test]
fn all_join_orders_produce_identical_results_in_both_exec_modes() {
    let s = star_session();
    let mut reference: Option<Vec<String>> = None;
    for (i, plan) in equivalent_plans().into_iter().enumerate() {
        for (mode, label) in [
            (ExecMode::Row, "row"),
            (ExecMode::Batch { batch_rows: 3 }, "batch"),
        ] {
            let rows = canonical(&run_mode(&s, &plan, mode));
            assert!(!rows.is_empty(), "plan {i} ({label}) returned no rows");
            match &reference {
                None => reference = Some(rows),
                Some(expected) => {
                    assert_eq!(&rows, expected, "plan {i} ({label}) diverged");
                }
            }
        }
    }
}

#[test]
fn filtered_join_orders_stay_identical() {
    let s = star_session();
    let mut reference: Option<Vec<String>> = None;
    for (i, plan) in equivalent_plans().into_iter().enumerate() {
        let filtered = plan.select(col("l_total").gt_eq(lit_i64(100)));
        let rows = canonical(&run_mode(&s, &filtered, ExecMode::default()));
        assert!(!rows.is_empty(), "plan {i} returned no rows");
        match &reference {
            None => reference = Some(rows),
            Some(expected) => assert_eq!(&rows, expected, "plan {i} diverged"),
        }
    }
}

#[test]
fn builder_four_table_query_round_trips() {
    let s = star_session();
    let report = s
        .query("orders")
        .join("customers", ("cust_fk", "cust_id"))
        .join("regions", ("region_fk", "region_id"))
        .ejoin("products", ("note", "title"), "fasttext", sim_gte(0.4))
        .run()
        .unwrap();
    let table = &report.table;
    // hash joins preserve names (l_-prefixed by the ejoin on top), the
    // ejoin appends r_* and similarity
    for column in [
        "l_order_id",
        "l_cust_name",
        "l_region_name",
        "r_title",
        "similarity",
    ] {
        assert!(
            table.schema().field(column).is_ok(),
            "missing column {column}"
        );
    }
    // every barbecue order matches the barbecue product with its region name
    let notes = table.column_by_name("l_note").unwrap().as_utf8().unwrap();
    let titles = table.column_by_name("r_title").unwrap().as_utf8().unwrap();
    let regions = table
        .column_by_name("l_region_name")
        .unwrap()
        .as_utf8()
        .unwrap();
    let triples: Vec<(&str, &str, &str)> = notes
        .iter()
        .zip(titles.iter())
        .zip(regions.iter())
        .map(|((n, t), r)| (n.as_str(), t.as_str(), r.as_str()))
        .collect();
    assert!(triples.contains(&("barbecue grill", "barbecues and grills", "west")));
    assert!(triples.contains(&("garden barbecue", "barbecues and grills", "east")));
}

#[test]
fn shared_column_names_across_joined_tables_are_ambiguous() {
    let mut s = star_session();
    // a second table that also has an `order_id` column
    s.register_table(
        "shipments",
        TableBuilder::new()
            .int64("order_id", vec![1, 2])
            .int64("ship_fk", vec![10, 20])
            .build()
            .unwrap(),
    );
    let plan = LogicalPlan::join(
        LogicalPlan::scan("orders"),
        LogicalPlan::scan("shipments"),
        "cust_fk",
        "ship_fk",
    );
    let err = s.prepare(&plan).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Relational(RelationalError::AmbiguousColumn(ref c)) if c == "order_id"
        ),
        "got {err}"
    );
}

#[test]
fn unhashable_join_keys_are_rejected_at_plan_time() {
    let mut s = star_session();
    s.register_table(
        "ratings",
        TableBuilder::new()
            .float64("score", vec![1.0, 2.0])
            .int64("rating_id", vec![1, 2])
            .build()
            .unwrap(),
    );
    let plan = LogicalPlan::join(
        LogicalPlan::scan("orders"),
        LogicalPlan::scan("ratings"),
        "total",
        "score",
    );
    let err = s.prepare(&plan).unwrap_err();
    assert!(
        matches!(err, CoreError::Relational(RelationalError::TypeError(_))),
        "got {err}"
    );
    // and mismatched (but individually hashable) key types too
    let plan = LogicalPlan::join(
        LogicalPlan::scan("orders"),
        LogicalPlan::scan("customers"),
        "note",
        "cust_id",
    );
    assert!(matches!(
        s.prepare(&plan).unwrap_err(),
        CoreError::Relational(RelationalError::TypeError(_))
    ));
}

#[test]
fn bind_threshold_is_ambiguous_on_multi_ejoin_plans() {
    let mut s = star_session();
    s.register_table(
        "slogans",
        TableBuilder::new()
            .utf8(
                "slogan",
                vec!["grills for barbecue fans".into(), "fast databases".into()],
            )
            .build()
            .unwrap(),
    );
    s.catalog().analyze("slogans").unwrap();
    // two threshold ejoins stacked: (orders ~ products) ~ slogans
    let plan = LogicalPlan::e_join(
        LogicalPlan::e_join(
            LogicalPlan::scan("orders"),
            LogicalPlan::scan("products"),
            "note",
            "title",
            "fasttext",
            SimilarityPredicate::Threshold(0.4),
        ),
        LogicalPlan::scan("slogans"),
        "l_note",
        "slogan",
        "fasttext",
        SimilarityPredicate::Threshold(0.4),
    );
    let prepared = s.prepare(&plan).unwrap();
    assert_eq!(prepared.threshold_join_count(), 2);
    assert!(matches!(
        prepared.bind_threshold(0.9),
        Err(CoreError::AmbiguousThresholdBind(2))
    ));
    assert!(matches!(
        prepared.bind_threshold_at(2, 0.9),
        Err(CoreError::InvalidInput(_))
    ));
    // targeting works and the rebound plan still executes
    let baseline = prepared.run().unwrap().table.num_rows();
    let bound = prepared.bind_threshold_at(0, 0.99).unwrap();
    let strict = bound.run().unwrap().table.num_rows();
    assert!(
        strict <= baseline,
        "raising one threshold cannot add rows ({strict} > {baseline})"
    );
    assert!(bound.explain().contains("0.99"), "{}", bound.explain());
}

#[test]
fn bind_threshold_still_works_unambiguously_on_single_ejoin_plans() {
    let s = star_session();
    let prepared = s
        .query("orders")
        .join("customers", ("cust_fk", "cust_id"))
        .ejoin("products", ("note", "title"), "fasttext", sim_gte(0.4))
        .prepare()
        .unwrap();
    assert_eq!(prepared.threshold_join_count(), 1);
    let strict = prepared.bind_threshold(0.99).unwrap();
    assert!(strict.run().unwrap().table.num_rows() <= prepared.run().unwrap().table.num_rows());
}

#[test]
fn deprecated_ejoin_plan_matches_ejoin_with() {
    let s = star_session();
    #[allow(deprecated)]
    let legacy = s
        .query("orders")
        .ejoin_plan(
            LogicalPlan::scan("products"),
            ("note", "title"),
            "fasttext",
            sim_gte(0.4),
        )
        .run()
        .unwrap();
    let current = s
        .query("orders")
        .ejoin_with(
            LogicalPlan::scan("products"),
            ("note", "title"),
            "fasttext",
            sim_gte(0.4),
        )
        .run()
        .unwrap();
    assert_eq!(canonical(&legacy.table), canonical(&current.table));
    assert!(legacy.table.num_rows() > 0);
}
