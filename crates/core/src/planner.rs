//! Lowering from the optimised [`LogicalPlan`] to a [`PhysicalPlan`].
//!
//! The planner is where the paper's Section V cost-based decision happens —
//! *at plan time*, before anything executes:
//!
//! 1. cardinalities are estimated bottom-up from catalog row counts (scans
//!    are exact; filters apply a default selectivity);
//! 2. for every `EJoin` the [`AccessPathAdvisor`] is consulted with the
//!    estimated query shape, producing the scan-vs-probe cost pair that
//!    [`PhysicalPlan::explain`] renders;
//! 3. when the index path is chosen *and* the inner side reduces to a
//!    base-table column (scan plus filters/projections), the join is lowered
//!    onto a persistent index handle ([`crate::physical_plan::IndexedInner`])
//!    shared through the session's `IndexManager`, with the relational
//!    predicates turned into probe-time filter bitmaps — the paper's
//!    pre-filtering semantics.
//!
//! The produced plan is immutable: executing it twice performs the same
//! physical operators, which is what makes prepared queries meaningful.

use cej_relational::{Catalog, Expr, LogicalPlan, SimilarityPredicate};

use cej_relational::physical::ModelRegistry;

use crate::access_path::{AccessPath, AccessPathAdvisor, AccessPathQuery};
use crate::error::CoreError;
use crate::index_manager::{IndexKey, IndexManager};
use crate::join::index_join::IndexJoinConfig;
use crate::join::tensor_join::TensorJoinConfig;
use crate::physical_plan::{
    IndexedInner, InnerInput, JoinNode, PhysicalJoinOp, PhysicalPlan, PlanEstimate,
};
use crate::session::JoinStrategy;
use crate::Result;

/// Default selectivity assumed for a relational filter when no statistics
/// are available (the classic System-R style constant).
const DEFAULT_FILTER_SELECTIVITY: f64 = 0.5;

/// Estimated fraction of scanned pairs that satisfy a threshold predicate
/// (used only for output-cardinality estimates, not for path selection).
const THRESHOLD_MATCH_SELECTIVITY: f64 = 0.05;

/// Lowers optimised logical plans into physical plans, consulting the
/// [`AccessPathAdvisor`] for every context-enhanced join.
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    advisor: AccessPathAdvisor,
    strategy: JoinStrategy,
    filter_selectivity: f64,
}

impl Planner {
    /// Creates a planner with the given advisor and (session) strategy.
    pub fn new(advisor: AccessPathAdvisor, strategy: JoinStrategy) -> Self {
        Self {
            advisor,
            strategy,
            filter_selectivity: DEFAULT_FILTER_SELECTIVITY,
        }
    }

    /// Overrides the default per-filter selectivity estimate.
    pub fn with_filter_selectivity(mut self, selectivity: f64) -> Self {
        self.filter_selectivity = selectivity.clamp(0.0, 1.0);
        self
    }

    /// Lowers `plan` to a physical plan.
    ///
    /// # Errors
    /// Returns unknown-table / unknown-model errors (surfaced at plan time —
    /// the executor can then assume resolvable names).
    pub fn plan(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        registry: &ModelRegistry,
        indexes: &IndexManager,
    ) -> Result<PhysicalPlan> {
        self.lower(plan, catalog, registry, indexes)
    }

    fn lower(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        registry: &ModelRegistry,
        indexes: &IndexManager,
    ) -> Result<PhysicalPlan> {
        let access = self.advisor.cost_model.params.access_cost;
        match plan {
            LogicalPlan::Scan { table } => {
                let rows = catalog.table(table).map_err(CoreError::from)?.num_rows() as f64;
                Ok(PhysicalPlan::TableScan {
                    table: table.clone(),
                    est: PlanEstimate::new(rows, rows * access),
                })
            }
            LogicalPlan::Selection { predicate, input } => {
                let child = self.lower(input, catalog, registry, indexes)?;
                let in_est = child.estimate();
                let est = PlanEstimate::new(
                    in_est.rows * self.filter_selectivity,
                    in_est.cost + in_est.rows * access,
                );
                Ok(PhysicalPlan::Filter {
                    predicate: predicate.clone(),
                    input: Box::new(child),
                    est,
                })
            }
            LogicalPlan::Projection { columns, input } => {
                let child = self.lower(input, catalog, registry, indexes)?;
                let in_est = child.estimate();
                let est = PlanEstimate::new(in_est.rows, in_est.cost + in_est.rows * access);
                Ok(PhysicalPlan::Project {
                    columns: columns.clone(),
                    input: Box::new(child),
                    est,
                })
            }
            LogicalPlan::Embed { spec, input } => {
                if !registry.contains(&spec.model) {
                    return Err(CoreError::Relational(
                        cej_relational::RelationalError::UnknownModel(spec.model.clone()),
                    ));
                }
                let child = self.lower(input, catalog, registry, indexes)?;
                let in_est = child.estimate();
                let est = PlanEstimate::new(
                    in_est.rows,
                    in_est.cost + in_est.rows * self.advisor.cost_model.params.model_cost,
                );
                Ok(PhysicalPlan::Embed {
                    spec: spec.clone(),
                    input: Box::new(child),
                    est,
                })
            }
            LogicalPlan::EJoin {
                left,
                right,
                left_column,
                right_column,
                model,
                predicate,
            } => self.lower_join(
                left,
                right,
                left_column,
                right_column,
                model,
                *predicate,
                catalog,
                registry,
                indexes,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_column: &str,
        right_column: &str,
        model: &str,
        predicate: SimilarityPredicate,
        catalog: &Catalog,
        registry: &ModelRegistry,
        indexes: &IndexManager,
    ) -> Result<PhysicalPlan> {
        if !registry.contains(model) {
            return Err(CoreError::Relational(
                cej_relational::RelationalError::UnknownModel(model.to_string()),
            ));
        }
        let outer = self.lower(left, catalog, registry, indexes)?;
        let inner_plan = self.lower(right, catalog, registry, indexes)?;
        let outer_est = outer.estimate();
        let inner_est = inner_plan.estimate();

        // Can the inner side be served by a persistent index over a base
        // table column?
        let indexable = analyze_indexable_inner(right, right_column, catalog);

        // The query shape the advisor reasons about: for an indexable inner
        // the index covers the *full* base table and the filters act as
        // selectivity; otherwise the materialised inner relation is scanned
        // (and an ephemeral index would cover exactly its rows).
        let (inner_rows, inner_selectivity) = match &indexable {
            Some(ix) if ix.base_rows > 0 => (
                ix.base_rows,
                (inner_est.rows / ix.base_rows as f64).clamp(0.0, 1.0),
            ),
            _ => (inner_est.rows.round().max(0.0) as usize, 1.0),
        };
        let candidate_config = match self.strategy {
            JoinStrategy::Index(config) => config,
            _ => IndexJoinConfig::default(),
        };
        let index_available = indexable
            .as_ref()
            .map(|ix| {
                indexes.contains(&IndexKey::new(
                    &ix.table,
                    right_column,
                    model,
                    candidate_config.params,
                ))
            })
            .unwrap_or(false);
        let query = AccessPathQuery {
            outer_rows: outer_est.rows.round().max(0.0) as usize,
            inner_rows,
            inner_selectivity,
            predicate,
            index_available,
        };
        let scan_cost = self.advisor.scan_cost(&query);
        let probe_cost = self.advisor.probe_cost(&query);

        let (op, access_path) = match self.strategy {
            JoinStrategy::Auto => match self.advisor.choose(&query) {
                AccessPath::TensorScan => (
                    PhysicalJoinOp::Tensor(TensorJoinConfig::default()),
                    AccessPath::TensorScan,
                ),
                AccessPath::IndexProbe => (
                    PhysicalJoinOp::Index(candidate_config),
                    AccessPath::IndexProbe,
                ),
            },
            JoinStrategy::NaiveNlj => (PhysicalJoinOp::NaiveNlj, AccessPath::TensorScan),
            JoinStrategy::PrefetchNlj(config) => {
                (PhysicalJoinOp::PrefetchNlj(config), AccessPath::TensorScan)
            }
            JoinStrategy::Tensor(config) => {
                (PhysicalJoinOp::Tensor(config), AccessPath::TensorScan)
            }
            JoinStrategy::Index(config) => (PhysicalJoinOp::Index(config), AccessPath::IndexProbe),
        };

        let inner = match (&op, indexable) {
            (PhysicalJoinOp::Index(config), Some(ix)) => InnerInput::Indexed(IndexedInner {
                key: IndexKey::new(&ix.table, right_column, model, config.params),
                filters: ix.filters,
                projection: ix.projection,
                est_rows: inner_est.rows,
            }),
            _ => InnerInput::Plan(inner_plan),
        };

        // Output-cardinality estimate plus total cost: inputs, the linear
        // (|R| + |S|) · M prefetch term, and the chosen path's join cost.
        let est_rows = match predicate {
            SimilarityPredicate::TopK(k) => outer_est.rows * k as f64,
            SimilarityPredicate::Threshold(_) => {
                outer_est.rows * inner_est.rows * THRESHOLD_MATCH_SELECTIVITY
            }
        };
        let prefetch_cost =
            (outer_est.rows + inner_est.rows) * self.advisor.cost_model.params.model_cost;
        let path_cost = match access_path {
            AccessPath::TensorScan => scan_cost,
            AccessPath::IndexProbe => probe_cost,
        };
        let est = PlanEstimate::new(
            est_rows,
            outer_est.cost + inner_est.cost + prefetch_cost + path_cost,
        );

        Ok(PhysicalPlan::Join(Box::new(JoinNode {
            outer,
            inner,
            left_column: left_column.to_string(),
            right_column: right_column.to_string(),
            model: model.to_string(),
            predicate,
            op,
            access_path,
            scan_cost,
            probe_cost,
            est,
        })))
    }
}

/// Result of checking whether a join's inner subtree reduces to a
/// (filtered, projected) base-table column that a persistent index can cover.
struct IndexableInner {
    table: String,
    filters: Vec<Expr>,
    projection: Option<Vec<String>>,
    base_rows: usize,
}

/// Walks the inner subtree accepting only `Scan` / `Selection` / `Projection`
/// nodes.  Filters become probe-time bitmaps; the outermost projection (if
/// any) defines the inner side's output columns and must retain the join
/// column.  Anything else (nested joins, embeddings, unknown tables) makes
/// the inner side non-indexable and falls back to a materialised subplan.
fn analyze_indexable_inner(
    plan: &LogicalPlan,
    right_column: &str,
    catalog: &Catalog,
) -> Option<IndexableInner> {
    let mut filters = Vec::new();
    let mut projection: Option<Vec<String>> = None;
    let mut current = plan;
    loop {
        match current {
            LogicalPlan::Selection { predicate, input } => {
                filters.push(predicate.clone());
                current = input;
            }
            LogicalPlan::Projection { columns, input } => {
                if projection.is_none() {
                    projection = Some(columns.clone());
                }
                current = input;
            }
            LogicalPlan::Scan { table } => {
                if let Some(columns) = &projection {
                    if !columns.iter().any(|c| c == right_column) {
                        return None;
                    }
                }
                let base_rows = catalog.table(table).ok()?.num_rows();
                return Some(IndexableInner {
                    table: table.clone(),
                    filters,
                    projection,
                    base_rows,
                });
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_path::AccessPathAdvisor;
    use cej_relational::{col, lit_i64};
    use cej_storage::TableBuilder;
    use std::sync::Arc;

    fn setup() -> (Catalog, ModelRegistry, IndexManager) {
        let mut catalog = Catalog::new();
        catalog.register(
            "r",
            TableBuilder::new()
                .int64("id", (0..50).collect())
                .utf8("word", (0..50).map(|i| format!("w{i}")).collect())
                .build()
                .unwrap(),
        );
        catalog.register(
            "s",
            TableBuilder::new()
                .int64("id", (0..200).collect())
                .utf8("word", (0..200).map(|i| format!("v{i}")).collect())
                .build()
                .unwrap(),
        );
        let mut registry = ModelRegistry::new();
        let model = cej_embedding::FastTextModel::new(cej_embedding::FastTextConfig {
            dim: 8,
            buckets: 500,
            ..cej_embedding::FastTextConfig::default()
        })
        .unwrap();
        registry.register("m", Arc::new(model));
        (catalog, registry, IndexManager::new())
    }

    fn join_plan() -> LogicalPlan {
        LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        )
    }

    #[test]
    fn scan_cardinalities_are_exact_and_filters_apply_selectivity() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        let plan = LogicalPlan::scan("s").select(col("id").gt(lit_i64(10)));
        let physical = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        assert_eq!(physical.estimate().rows, 100.0);
        match physical {
            PhysicalPlan::Filter { input, .. } => assert_eq!(input.estimate().rows, 200.0),
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn auto_small_join_lowers_to_tensor_with_both_costs() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        let physical = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        let joins = physical.join_nodes();
        assert_eq!(joins.len(), 1);
        let node = joins[0];
        assert!(matches!(node.op, PhysicalJoinOp::Tensor(_)));
        assert_eq!(node.access_path, AccessPath::TensorScan);
        assert!(node.scan_cost > 0.0 && node.probe_cost > 0.0);
        assert!(node.scan_cost < node.probe_cost);
    }

    #[test]
    fn forced_index_strategy_uses_persistent_inner_for_base_scans() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(
            AccessPathAdvisor::default(),
            JoinStrategy::Index(IndexJoinConfig::default()),
        );
        let physical = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        let node = physical.join_nodes()[0];
        assert_eq!(node.access_path, AccessPath::IndexProbe);
        match &node.inner {
            InnerInput::Indexed(ii) => {
                assert_eq!(ii.key.table, "s");
                assert_eq!(ii.key.column, "word");
                assert!(ii.filters.is_empty());
            }
            other => panic!("expected persistent index inner, got {other:?}"),
        }
    }

    #[test]
    fn inner_filters_become_probe_bitmaps() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(
            AccessPathAdvisor::default(),
            JoinStrategy::Index(IndexJoinConfig::default()),
        );
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").select(col("id").lt(lit_i64(50))),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        let physical = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        match &physical.join_nodes()[0].inner {
            InnerInput::Indexed(ii) => assert_eq!(ii.filters.len(), 1),
            other => panic!("expected persistent index inner, got {other:?}"),
        }
    }

    #[test]
    fn projection_dropping_join_column_disables_persistent_index() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(
            AccessPathAdvisor::default(),
            JoinStrategy::Index(IndexJoinConfig::default()),
        );
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").project(&["id"]),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        let physical = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        assert!(matches!(
            physical.join_nodes()[0].inner,
            InnerInput::Plan(_)
        ));
    }

    #[test]
    fn unknown_table_and_model_error_at_plan_time() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        assert!(planner
            .plan(&LogicalPlan::scan("nope"), &catalog, &registry, &indexes)
            .is_err());
        let bad_model = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "word",
            "word",
            "missing",
            SimilarityPredicate::TopK(1),
        );
        assert!(planner
            .plan(&bad_model, &catalog, &registry, &indexes)
            .is_err());
    }

    #[test]
    fn existing_index_lowers_auto_cost() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        let cold = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        // simulate a resident index for the candidate key
        let key = IndexKey::new("s", "word", "m", IndexJoinConfig::default().params);
        let (vectors, _) = cej_workload::clustered_matrix(20, 8, 2, 0.05, 5);
        indexes
            .get_or_build(&key, || {
                cej_index::HnswIndex::build(vectors.clone(), cej_index::HnswParams::tiny())
                    .map_err(CoreError::from)
            })
            .unwrap();
        let warm = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        assert!(
            warm.join_nodes()[0].probe_cost < cold.join_nodes()[0].probe_cost,
            "a resident index must remove the build term from the probe cost"
        );
    }
}
