//! Lowering from the optimised [`LogicalPlan`] to a [`PhysicalPlan`].
//!
//! The planner is where the paper's Section V cost-based decision happens —
//! *at plan time*, before anything executes:
//!
//! 1. output schemas are resolved bottom-up, so unknown columns, non-string
//!    ejoin columns, and ill-typed predicates fail at `prepare()` with a
//!    typed error instead of mid-execution;
//! 2. cardinalities are estimated bottom-up from the catalog's *statistics
//!    view* ([`cej_storage::TableStats`], computed by the `ANALYZE` pass at
//!    registration): scans are exact, filters apply histogram/ndv-based
//!    selectivities ([`cej_relational::selectivity`]) instead of a constant;
//! 3. for every `EJoin` the [`AccessPathAdvisor`] is consulted with the
//!    estimated query shape — including the estimated *inner selectivity*,
//!    the axis of Figures 15-17 — producing the scan-vs-probe cost pair that
//!    [`PhysicalPlan::explain`] renders;
//! 4. when the index path is chosen *and* the inner side reduces to a
//!    base-table column (scan plus filters/projections), the join is lowered
//!    onto a persistent index handle ([`crate::physical_plan::IndexedInner`])
//!    shared through the session's `IndexManager`, with the relational
//!    predicates turned into probe-time filter bitmaps — the paper's
//!    pre-filtering semantics.
//!
//! The produced plan is immutable and snapshots the statistics it was costed
//! with: executing it twice performs the same physical operators, which is
//! what makes prepared queries meaningful.

use std::sync::Arc;

use std::collections::HashMap;

use cej_relational::selectivity::{check_predicate, estimate_selectivity, DEFAULT_SELECTIVITY};
use cej_relational::{Catalog, Expr, LogicalPlan, RelationalError, SimilarityPredicate};
use cej_storage::{ColumnStats, DataType, Field, Schema, TableStats};

use cej_relational::physical::ModelRegistry;

use crate::access_path::{AccessPath, AccessPathAdvisor, AccessPathQuery};
use crate::error::CoreError;
use crate::index_manager::{IndexKey, IndexManager};
use crate::join::index_join::IndexJoinConfig;
use crate::join::tensor_join::TensorJoinConfig;
use crate::physical_plan::{
    HashJoinNode, IndexedInner, InnerInput, JoinNode, PhysicalJoinOp, PhysicalPlan, PlanEstimate,
};
use crate::session::JoinStrategy;
use crate::Result;

/// Estimated fraction of scanned pairs that satisfy `sim >= t`, assuming
/// cosine scores spread over `[-1, 1]`.  Used for output-cardinality
/// estimates (not for path selection), and re-evaluated when a prepared
/// query re-binds its threshold.
pub(crate) fn threshold_selectivity(threshold: f32) -> f64 {
    ((1.0 - threshold as f64) / 2.0).clamp(0.0, 1.0)
}

/// The output of lowering one subtree: the physical operator, its resolved
/// output schema (for plan-time type checking), and the statistics view of
/// its output — base-table statistics for scans, and *derived* statistics
/// (scaled histograms, renamed columns) above filters and joins, so that
/// estimation keeps working across join boundaries.
struct Lowered {
    plan: PhysicalPlan,
    schema: Schema,
    stats: Option<Arc<TableStats>>,
}

/// Lowers optimised logical plans into physical plans, consulting the
/// [`AccessPathAdvisor`] for every context-enhanced join.
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    advisor: AccessPathAdvisor,
    strategy: JoinStrategy,
    filter_selectivity_override: Option<f64>,
}

impl Planner {
    /// Creates a planner with the given advisor and (session) strategy.
    pub fn new(advisor: AccessPathAdvisor, strategy: JoinStrategy) -> Self {
        Self {
            advisor,
            strategy,
            filter_selectivity_override: None,
        }
    }

    /// Forces every relational filter to the given selectivity, bypassing
    /// the statistics-driven estimator.
    #[deprecated(
        since = "0.1.0",
        note = "testing-only override; filters are estimated from column \
                statistics (histograms / distinct counts) since the ANALYZE \
                pipeline landed"
    )]
    pub fn with_filter_selectivity(mut self, selectivity: f64) -> Self {
        self.filter_selectivity_override = Some(selectivity.clamp(0.0, 1.0));
        self
    }

    /// Lowers `plan` to a physical plan.
    ///
    /// # Errors
    /// Returns unknown-table / unknown-model / unknown-column errors and
    /// type errors (non-string ejoin columns, ill-typed predicates) — all
    /// surfaced at plan time, so the executor can assume a resolvable,
    /// well-typed plan.
    pub fn plan(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        registry: &ModelRegistry,
        indexes: &IndexManager,
    ) -> Result<PhysicalPlan> {
        Ok(self.lower(plan, catalog, registry, indexes)?.plan)
    }

    fn lower(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        registry: &ModelRegistry,
        indexes: &IndexManager,
    ) -> Result<Lowered> {
        let access = self.advisor.cost_model.params.access_cost;
        match plan {
            LogicalPlan::Scan { table } => {
                let schema = catalog
                    .table(table)
                    .map_err(CoreError::from)?
                    .schema()
                    .clone();
                let stats = catalog.stats(table).map_err(CoreError::from)?;
                let rows = stats.row_count as f64;
                Ok(Lowered {
                    plan: PhysicalPlan::TableScan {
                        table: table.clone(),
                        est: PlanEstimate::new(rows, rows * access),
                    },
                    schema,
                    stats: Some(stats),
                })
            }
            LogicalPlan::Selection { predicate, input } => {
                let child = self.lower(input, catalog, registry, indexes)?;
                check_predicate(predicate, &child.schema).map_err(CoreError::from)?;
                let selectivity = match self.filter_selectivity_override {
                    Some(s) => s,
                    None => child
                        .stats
                        .as_deref()
                        .map(|stats| estimate_selectivity(predicate, stats))
                        .unwrap_or(DEFAULT_SELECTIVITY),
                };
                let in_est = child.plan.estimate();
                let est = PlanEstimate::new(
                    in_est.rows * selectivity,
                    in_est.cost + in_est.rows * access,
                );
                // The filter output keeps every column's value *distribution*
                // (to first order) but shrinks the row count — scale the
                // statistics view so estimators above the filter see it.
                let stats = child
                    .stats
                    .as_deref()
                    .map(|s| Arc::new(scaled_stats(s, est.rows.round().max(0.0) as usize)));
                Ok(Lowered {
                    plan: PhysicalPlan::Filter {
                        predicate: predicate.clone(),
                        selectivity,
                        input: Box::new(child.plan),
                        est,
                    },
                    schema: child.schema,
                    stats,
                })
            }
            LogicalPlan::Projection { columns, input } => {
                let child = self.lower(input, catalog, registry, indexes)?;
                let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                let schema = child.schema.project(&names).map_err(CoreError::from)?;
                let in_est = child.plan.estimate();
                let est = PlanEstimate::new(in_est.rows, in_est.cost + in_est.rows * access);
                Ok(Lowered {
                    plan: PhysicalPlan::Project {
                        columns: columns.clone(),
                        input: Box::new(child.plan),
                        est,
                    },
                    schema,
                    stats: child.stats,
                })
            }
            LogicalPlan::Embed { spec, input } => {
                let model = registry.model(&spec.model).map_err(CoreError::from)?;
                let child = self.lower(input, catalog, registry, indexes)?;
                require_utf8(&child.schema, &spec.input_column, "embedding input")?;
                let mut fields = child.schema.fields().to_vec();
                fields.push(Field::new(
                    &spec.output_column,
                    DataType::Vector(model.dim()),
                ));
                let schema = Schema::new(fields).map_err(CoreError::from)?;
                let in_est = child.plan.estimate();
                let est = PlanEstimate::new(
                    in_est.rows,
                    in_est.cost + in_est.rows * self.advisor.cost_model.params.model_cost,
                );
                Ok(Lowered {
                    plan: PhysicalPlan::Embed {
                        spec: spec.clone(),
                        input: Box::new(child.plan),
                        est,
                    },
                    schema,
                    stats: child.stats,
                })
            }
            LogicalPlan::Rename { columns, input } => {
                let child = self.lower(input, catalog, registry, indexes)?;
                let mut fields = Vec::with_capacity(columns.len());
                for (from, to) in columns {
                    let field = child.schema.field(from).map_err(|_| {
                        CoreError::Relational(RelationalError::UnknownColumn(from.clone()))
                    })?;
                    fields.push(Field::new(to, field.data_type));
                }
                let schema = Schema::new(fields).map_err(CoreError::from)?;
                // Zero-copy column shuffle: same rows, no added cost.
                let est = child.plan.estimate();
                let stats = child.stats.as_deref().map(|s| {
                    let mut renamed = HashMap::new();
                    for (from, to) in columns {
                        if let Some(cs) = s.column(from) {
                            renamed.insert(to.clone(), cs.clone());
                        }
                    }
                    Arc::new(TableStats::from_columns(s.row_count, renamed))
                });
                Ok(Lowered {
                    plan: PhysicalPlan::Rename {
                        columns: columns.clone(),
                        input: Box::new(child.plan),
                        est,
                    },
                    schema,
                    stats,
                })
            }
            LogicalPlan::Join {
                left,
                right,
                left_column,
                right_column,
            } => self.lower_hash_join(
                left,
                right,
                left_column,
                right_column,
                catalog,
                registry,
                indexes,
            ),
            LogicalPlan::EJoin {
                left,
                right,
                left_column,
                right_column,
                model,
                predicate,
            } => self.lower_join(
                left,
                right,
                left_column,
                right_column,
                model,
                *predicate,
                catalog,
                registry,
                indexes,
            ),
        }
    }

    /// Lowers the relational hash equi-join: build right, probe left.
    ///
    /// Plan-time checks: both key columns must exist, share one hashable
    /// (equality-meaningful) type — `Float64` and `Vector` keys are rejected —
    /// and the two inputs must not share any output column name (the N-table
    /// ambiguity rule; use `Rename` to disambiguate before joining).
    #[allow(clippy::too_many_arguments)]
    fn lower_hash_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_column: &str,
        right_column: &str,
        catalog: &Catalog,
        registry: &ModelRegistry,
        indexes: &IndexManager,
    ) -> Result<Lowered> {
        let access = self.advisor.cost_model.params.access_cost;
        let l = self.lower(left, catalog, registry, indexes)?;
        let r = self.lower(right, catalog, registry, indexes)?;
        let lf = l.schema.field(left_column).map_err(|_| {
            CoreError::Relational(RelationalError::UnknownColumn(left_column.to_string()))
        })?;
        let rf = r.schema.field(right_column).map_err(|_| {
            CoreError::Relational(RelationalError::UnknownColumn(right_column.to_string()))
        })?;
        for (field, role) in [(lf, "left"), (rf, "right")] {
            if matches!(field.data_type, DataType::Float64 | DataType::Vector(_)) {
                return Err(CoreError::Relational(RelationalError::TypeError(format!(
                    "join {role} key {} has type {}, which has no meaningful \
                     equality (hashable keys: Int64, Utf8, Date, Bool)",
                    field.name, field.data_type
                ))));
            }
        }
        if lf.data_type != rf.data_type {
            return Err(CoreError::Relational(RelationalError::TypeError(format!(
                "join keys {left_column} ({}) and {right_column} ({}) have \
                 different types",
                lf.data_type, rf.data_type
            ))));
        }
        // Join output preserves names, so shared names would be ambiguous.
        for field in r.schema.fields() {
            if l.schema.field(&field.name).is_ok() {
                return Err(CoreError::Relational(RelationalError::AmbiguousColumn(
                    field.name.clone(),
                )));
            }
        }
        let mut fields = l.schema.fields().to_vec();
        fields.extend(r.schema.fields().iter().cloned());
        let schema = Schema::new(fields).map_err(CoreError::from)?;

        let l_est = l.plan.estimate();
        let r_est = r.plan.estimate();
        // |L ⋈ R| = |L|·|R| / max(ndv_l, ndv_r); without key statistics, fall
        // back to the foreign-key assumption (the larger side's cardinality
        // as the key domain).
        let ndv = [
            l.stats
                .as_deref()
                .and_then(|s| s.column(left_column))
                .map(|c| c.distinct_count as f64),
            r.stats
                .as_deref()
                .and_then(|s| s.column(right_column))
                .map(|c| c.distinct_count as f64),
        ]
        .into_iter()
        .flatten()
        .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))))
        .unwrap_or_else(|| l_est.rows.max(r_est.rows))
        .max(1.0);
        let est_rows = l_est.rows * r_est.rows / ndv;
        let est = PlanEstimate::new(
            est_rows,
            l_est.cost + r_est.cost + (l_est.rows + r_est.rows + est_rows) * access,
        );

        // Propagate statistics across the join boundary: both sides keep
        // their names, every column's distribution survives (scaled to the
        // join cardinality), so filters above the join stay estimable.
        let out_rows = est_rows.round().max(0.0) as usize;
        let mut columns = HashMap::new();
        for side in [&l, &r] {
            if let Some(s) = side.stats.as_deref() {
                for name in s.column_names() {
                    if let Some(cs) = s.column(name) {
                        columns.insert(name.to_string(), cs.scaled(out_rows));
                    }
                }
            }
        }
        let stats = Some(Arc::new(TableStats::from_columns(out_rows, columns)));

        Ok(Lowered {
            plan: PhysicalPlan::HashJoin(Box::new(HashJoinNode {
                left: l.plan,
                right: r.plan,
                left_column: left_column.to_string(),
                right_column: right_column.to_string(),
                est,
            })),
            schema,
            stats,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_column: &str,
        right_column: &str,
        model: &str,
        predicate: SimilarityPredicate,
        catalog: &Catalog,
        registry: &ModelRegistry,
        indexes: &IndexManager,
    ) -> Result<Lowered> {
        if !registry.contains(model) {
            return Err(CoreError::Relational(
                cej_relational::RelationalError::UnknownModel(model.to_string()),
            ));
        }
        let outer = self.lower(left, catalog, registry, indexes)?;
        let inner = self.lower(right, catalog, registry, indexes)?;
        require_utf8(&outer.schema, left_column, "ejoin left column")?;
        require_utf8(&inner.schema, right_column, "ejoin right column")?;
        let outer_est = outer.plan.estimate();
        let inner_est = inner.plan.estimate();

        // Can the inner side be served by a persistent index over a base
        // table column?
        let indexable = analyze_indexable_inner(right, right_column, catalog);

        // The query shape the advisor reasons about: for an indexable inner
        // the index covers the *full* base table and the statistics-estimated
        // filtered cardinality acts as the inner selectivity — the axis of
        // Figures 15-17; otherwise the materialised inner relation is scanned
        // (and an ephemeral index would cover exactly its rows).
        let (inner_rows, inner_selectivity) = match &indexable {
            Some(ix) if ix.base_rows > 0 => (
                ix.base_rows,
                (inner_est.rows / ix.base_rows as f64).clamp(0.0, 1.0),
            ),
            _ => (inner_est.rows.round().max(0.0) as usize, 1.0),
        };
        let candidate_config = match self.strategy {
            JoinStrategy::Index(config) => config,
            _ => IndexJoinConfig::default(),
        };
        let index_available = indexable
            .as_ref()
            .map(|ix| {
                indexes.contains(&IndexKey::new(
                    &ix.table,
                    right_column,
                    model,
                    candidate_config.params,
                ))
            })
            .unwrap_or(false);
        let query = AccessPathQuery {
            outer_rows: outer_est.rows.round().max(0.0) as usize,
            inner_rows,
            inner_selectivity,
            predicate,
            index_available,
        };
        let scan_cost = self.advisor.scan_cost(&query);
        let probe_cost = self.advisor.probe_cost(&query);

        // Eviction-aware costing: a cold probe path is only worth planning
        // when its index could actually *stay* resident under the session's
        // memory budget (minus bytes pinned by in-flight queries).  An
        // already-resident index is always usable; a doomed one would
        // thrash build → evict → rebuild on every execution.
        let index_can_stay_resident = index_available
            || match &indexable {
                Some(ix) => {
                    let dim = registry.model(model).map_err(CoreError::from)?.dim();
                    indexes.would_stay_resident(crate::index_manager::estimate_index_bytes(
                        ix.base_rows,
                        dim,
                        &candidate_config.params,
                    ))
                }
                // a non-indexable inner builds an ephemeral (per-run) index
                // that never enters the budgeted cache
                None => true,
            };

        let (op, access_path) = match self.strategy {
            JoinStrategy::Auto => match self.advisor.choose(&query) {
                AccessPath::TensorScan => (
                    PhysicalJoinOp::Tensor(TensorJoinConfig::default()),
                    AccessPath::TensorScan,
                ),
                AccessPath::IndexProbe if !index_can_stay_resident => (
                    PhysicalJoinOp::Tensor(TensorJoinConfig::default()),
                    AccessPath::TensorScan,
                ),
                AccessPath::IndexProbe => (
                    PhysicalJoinOp::Index(candidate_config),
                    AccessPath::IndexProbe,
                ),
            },
            JoinStrategy::NaiveNlj => (PhysicalJoinOp::NaiveNlj, AccessPath::TensorScan),
            JoinStrategy::PrefetchNlj(config) => {
                (PhysicalJoinOp::PrefetchNlj(config), AccessPath::TensorScan)
            }
            JoinStrategy::Tensor(config) => {
                (PhysicalJoinOp::Tensor(config), AccessPath::TensorScan)
            }
            JoinStrategy::Index(config) => (PhysicalJoinOp::Index(config), AccessPath::IndexProbe),
        };

        let schema = join_schema(&outer.schema, &inner.schema)?;
        let outer_stats = outer.stats.clone();
        let inner_stats = inner.stats.clone();
        let physical_inner = match (&op, indexable) {
            (PhysicalJoinOp::Index(config), Some(ix)) => InnerInput::Indexed(IndexedInner {
                key: IndexKey::new(&ix.table, right_column, model, config.params),
                filters: ix.filters,
                projection: ix.projection,
                est_rows: inner_est.rows,
            }),
            _ => InnerInput::Plan(inner.plan),
        };

        // Output-cardinality estimate plus total cost: inputs, the linear
        // (|R| + |S|) · M prefetch term, and the chosen path's join cost.
        let est_rows = match predicate {
            SimilarityPredicate::TopK(k) => outer_est.rows * k as f64,
            SimilarityPredicate::Threshold(t) => {
                outer_est.rows * inner_est.rows * threshold_selectivity(t)
            }
        };
        let prefetch_cost =
            (outer_est.rows + inner_est.rows) * self.advisor.cost_model.params.model_cost;
        let path_cost = match access_path {
            AccessPath::TensorScan => scan_cost,
            AccessPath::IndexProbe => probe_cost,
        };
        let est = PlanEstimate::new(
            est_rows,
            outer_est.cost + inner_est.cost + prefetch_cost + path_cost,
        );

        // Propagate statistics across the ejoin boundary under the output's
        // `l_*` / `r_*` re-labelling: each side's distributions survive
        // (scaled to the join cardinality), and the synthesised `similarity`
        // column is opaque (no plan-time score distribution).
        let out_rows = est_rows.round().max(0.0) as usize;
        let mut columns = HashMap::new();
        for (side, prefix) in [(&outer_stats, "l_"), (&inner_stats, "r_")] {
            if let Some(s) = side.as_deref() {
                for name in s.column_names() {
                    if let Some(cs) = s.column(name) {
                        columns.insert(format!("{prefix}{name}"), cs.scaled(out_rows));
                    }
                }
            }
        }
        columns.insert(
            "similarity".to_string(),
            ColumnStats {
                row_count: out_rows,
                null_count: 0,
                distinct_count: out_rows.max(1),
                min: None,
                max: None,
                histogram: None,
                avg_utf8_len: None,
            },
        );
        let stats = Some(Arc::new(TableStats::from_columns(out_rows, columns)));

        Ok(Lowered {
            plan: PhysicalPlan::Join(Box::new(JoinNode {
                outer: outer.plan,
                inner: physical_inner,
                left_column: left_column.to_string(),
                right_column: right_column.to_string(),
                model: model.to_string(),
                predicate,
                op,
                access_path,
                est_inner_selectivity: inner_selectivity,
                scan_cost,
                probe_cost,
                est,
            })),
            schema,
            stats,
        })
    }
}

/// Re-derives a statistics view at a new cardinality: every column's
/// distribution shape is kept, masses and counts scale (see
/// [`ColumnStats::scaled`]).
fn scaled_stats(stats: &TableStats, new_rows: usize) -> TableStats {
    let columns = stats
        .column_names()
        .into_iter()
        .filter_map(|name| {
            stats
                .column(name)
                .map(|cs| (name.to_string(), cs.scaled(new_rows)))
        })
        .collect();
    TableStats::from_columns(new_rows, columns)
}

/// Requires `column` to exist in `schema` with type `Utf8`; the typed
/// plan-time error for context columns.
fn require_utf8(schema: &Schema, column: &str, role: &str) -> Result<()> {
    let field = schema
        .field(column)
        .map_err(|_| CoreError::Relational(RelationalError::UnknownColumn(column.to_string())))?;
    if field.data_type != DataType::Utf8 {
        return Err(CoreError::Relational(RelationalError::TypeError(format!(
            "{role} {column} must be a Utf8 string column, found {}",
            field.data_type
        ))));
    }
    Ok(())
}

/// The output schema of a context-enhanced join: `l_*` columns, `r_*`
/// columns, `similarity` — exactly what the executor materialises.
fn join_schema(outer: &Schema, inner: &Schema) -> Result<Schema> {
    let mut fields = Vec::with_capacity(outer.len() + inner.len() + 1);
    for f in outer.fields() {
        fields.push(Field::new(format!("l_{}", f.name), f.data_type));
    }
    for f in inner.fields() {
        fields.push(Field::new(format!("r_{}", f.name), f.data_type));
    }
    fields.push(Field::new("similarity", DataType::Float64));
    Schema::new(fields).map_err(CoreError::from)
}

/// Result of checking whether a join's inner subtree reduces to a
/// (filtered, projected) base-table column that a persistent index can cover.
struct IndexableInner {
    table: String,
    filters: Vec<Expr>,
    projection: Option<Vec<String>>,
    base_rows: usize,
}

/// Walks the inner subtree accepting only `Scan` / `Selection` / `Projection`
/// nodes.  Filters become probe-time bitmaps; the outermost projection (if
/// any) defines the inner side's output columns and must retain the join
/// column.  Anything else (nested joins, embeddings, unknown tables) makes
/// the inner side non-indexable and falls back to a materialised subplan.
fn analyze_indexable_inner(
    plan: &LogicalPlan,
    right_column: &str,
    catalog: &Catalog,
) -> Option<IndexableInner> {
    let mut filters = Vec::new();
    let mut projection: Option<Vec<String>> = None;
    let mut current = plan;
    loop {
        match current {
            LogicalPlan::Selection { predicate, input } => {
                filters.push(predicate.clone());
                current = input;
            }
            LogicalPlan::Projection { columns, input } => {
                if projection.is_none() {
                    projection = Some(columns.clone());
                }
                current = input;
            }
            LogicalPlan::Scan { table } => {
                if let Some(columns) = &projection {
                    if !columns.iter().any(|c| c == right_column) {
                        return None;
                    }
                }
                // row count from the statistics view, like every other
                // plan-time cardinality
                let base_rows = catalog.stats(table).ok()?.row_count;
                return Some(IndexableInner {
                    table: table.clone(),
                    filters,
                    projection,
                    base_rows,
                });
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_path::AccessPathAdvisor;
    use crate::cost::{CostModel, CostParameters};
    use cej_relational::{col, lit_i64, EmbedSpec};
    use cej_storage::TableBuilder;
    use std::sync::Arc;

    fn setup() -> (Catalog, ModelRegistry, IndexManager) {
        let catalog = Catalog::new();
        catalog.register(
            "r",
            TableBuilder::new()
                .int64("id", (0..50).collect())
                .utf8("word", (0..50).map(|i| format!("w{i}")).collect())
                .build()
                .unwrap(),
        );
        catalog.register(
            "s",
            TableBuilder::new()
                .int64("id", (0..200).collect())
                .utf8("word", (0..200).map(|i| format!("v{i}")).collect())
                .build()
                .unwrap(),
        );
        let mut registry = ModelRegistry::new();
        let model = cej_embedding::FastTextModel::new(cej_embedding::FastTextConfig {
            dim: 8,
            buckets: 500,
            ..cej_embedding::FastTextConfig::default()
        })
        .unwrap();
        registry.register("m", Arc::new(model));
        (catalog, registry, IndexManager::new())
    }

    fn join_plan() -> LogicalPlan {
        LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        )
    }

    #[test]
    fn scan_cardinalities_are_exact_and_filters_use_statistics() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        // ids are uniform 0..200, so `id > 10` keeps ~189/200 rows — the
        // histogram estimate must land near that, not at the old 0.5 constant
        let plan = LogicalPlan::scan("s").select(col("id").gt(lit_i64(10)));
        let physical = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        let est = physical.estimate().rows;
        assert!(
            (est - 189.0).abs() < 8.0,
            "statistics-driven estimate {est} should be ~189, not 100"
        );
        match physical {
            PhysicalPlan::Filter {
                input, selectivity, ..
            } => {
                assert_eq!(input.estimate().rows, 200.0);
                assert!((selectivity - 0.945).abs() < 0.05);
            }
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn selectivity_override_is_testing_only_but_still_wins() {
        let (catalog, registry, indexes) = setup();
        #[allow(deprecated)]
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto)
            .with_filter_selectivity(0.5);
        let plan = LogicalPlan::scan("s").select(col("id").gt(lit_i64(10)));
        let physical = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        assert_eq!(physical.estimate().rows, 100.0);
    }

    #[test]
    fn auto_small_join_lowers_to_tensor_with_both_costs() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        let physical = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        let joins = physical.join_nodes();
        assert_eq!(joins.len(), 1);
        let node = joins[0];
        assert!(matches!(node.op, PhysicalJoinOp::Tensor(_)));
        assert_eq!(node.access_path, AccessPath::TensorScan);
        assert!(node.scan_cost > 0.0 && node.probe_cost > 0.0);
        assert!(node.scan_cost < node.probe_cost);
        assert_eq!(node.est_inner_selectivity, 1.0);
    }

    #[test]
    fn forced_index_strategy_uses_persistent_inner_for_base_scans() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(
            AccessPathAdvisor::default(),
            JoinStrategy::Index(IndexJoinConfig::default()),
        );
        let physical = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        let node = physical.join_nodes()[0];
        assert_eq!(node.access_path, AccessPath::IndexProbe);
        match &node.inner {
            InnerInput::Indexed(ii) => {
                assert_eq!(ii.key.table, "s");
                assert_eq!(ii.key.column, "word");
                assert!(ii.filters.is_empty());
            }
            other => panic!("expected persistent index inner, got {other:?}"),
        }
    }

    #[test]
    fn inner_filters_become_probe_bitmaps_with_estimated_selectivity() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(
            AccessPathAdvisor::default(),
            JoinStrategy::Index(IndexJoinConfig::default()),
        );
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").select(col("id").lt(lit_i64(50))),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        let physical = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        let node = physical.join_nodes()[0];
        match &node.inner {
            InnerInput::Indexed(ii) => {
                assert_eq!(ii.filters.len(), 1);
                // `id < 50` over uniform 0..200 keeps ~25% of the base table
                assert!(
                    (ii.est_rows - 50.0).abs() < 8.0,
                    "est_rows {} should be ~50",
                    ii.est_rows
                );
            }
            other => panic!("expected persistent index inner, got {other:?}"),
        }
        assert!(
            (node.est_inner_selectivity - 0.25).abs() < 0.05,
            "inner selectivity {} should track the histogram (~0.25)",
            node.est_inner_selectivity
        );
    }

    #[test]
    fn advisor_choice_tracks_estimated_inner_selectivity() {
        // A probe-friendly cost model (cheap index traversal) so the
        // crossover happens inside a small test relation: the *only*
        // difference between the two plans is the inner filter cutoff, so a
        // flipped access path proves the advisor consumed the estimated
        // selectivity — with no with_filter_selectivity override anywhere.
        let (catalog, registry, indexes) = setup();
        catalog.register(
            "big",
            TableBuilder::new()
                .int64("filter", (0..2000).map(|i| i % 100).collect())
                .utf8("word", (0..2000).map(|i| format!("w{i}")).collect())
                .build()
                .unwrap(),
        );
        let advisor = AccessPathAdvisor::new(CostModel::new(CostParameters {
            index_probe_cost: 20.0,
            ..CostParameters::default()
        }));
        let planner = Planner::new(advisor, JoinStrategy::Auto);
        let plan_at = |cut: i64| {
            LogicalPlan::e_join(
                LogicalPlan::scan("r"),
                LogicalPlan::scan("big").select(col("filter").lt(lit_i64(cut))),
                "word",
                "word",
                "m",
                SimilarityPredicate::TopK(1),
            )
        };
        let low = planner
            .plan(&plan_at(5), &catalog, &registry, &indexes)
            .unwrap();
        let high = planner
            .plan(&plan_at(95), &catalog, &registry, &indexes)
            .unwrap();
        let low_node = low.join_nodes()[0];
        let high_node = high.join_nodes()[0];
        assert!(low_node.est_inner_selectivity < 0.1);
        assert!(high_node.est_inner_selectivity > 0.85);
        assert_eq!(
            low_node.access_path,
            AccessPath::TensorScan,
            "low selectivity: pre-filtered scan must win"
        );
        assert_eq!(
            high_node.access_path,
            AccessPath::IndexProbe,
            "high selectivity: the probe must win"
        );
    }

    #[test]
    fn embedded_inner_disables_persistent_index() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(
            AccessPathAdvisor::default(),
            JoinStrategy::Index(IndexJoinConfig::default()),
        );
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").embed(EmbedSpec::new("word", "m")),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        let physical = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        assert!(matches!(
            physical.join_nodes()[0].inner,
            InnerInput::Plan(_)
        ));
    }

    #[test]
    fn plan_time_schema_and_type_errors() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        // ejoin on a non-string column: typed error at plan time
        let non_string = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "id",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        assert!(matches!(
            planner.plan(&non_string, &catalog, &registry, &indexes),
            Err(CoreError::Relational(RelationalError::TypeError(_)))
        ));
        // ejoin on an unknown column
        let unknown_col = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "word",
            "nope",
            "m",
            SimilarityPredicate::TopK(1),
        );
        assert!(matches!(
            planner.plan(&unknown_col, &catalog, &registry, &indexes),
            Err(CoreError::Relational(RelationalError::UnknownColumn(_)))
        ));
        // projecting away the join column is caught at plan time too
        let dropped = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").project(&["id"]),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        assert!(planner
            .plan(&dropped, &catalog, &registry, &indexes)
            .is_err());
        // filter on an unknown column
        let bad_filter = LogicalPlan::scan("s").select(col("ghost").gt(lit_i64(1)));
        assert!(matches!(
            planner.plan(&bad_filter, &catalog, &registry, &indexes),
            Err(CoreError::Relational(RelationalError::UnknownColumn(_)))
        ));
        // ill-typed predicate (string column vs integer literal)
        let bad_type = LogicalPlan::scan("s").select(col("word").gt(lit_i64(1)));
        assert!(matches!(
            planner.plan(&bad_type, &catalog, &registry, &indexes),
            Err(CoreError::Relational(RelationalError::TypeError(_)))
        ));
        // embedding a non-string column
        let bad_embed = LogicalPlan::scan("s").embed(EmbedSpec::new("id", "m"));
        assert!(planner
            .plan(&bad_embed, &catalog, &registry, &indexes)
            .is_err());
        // selections above the join may reference l_/r_ columns + similarity
        let above = join_plan().select(col("similarity").gt_eq(cej_relational::lit_f64(0.5)));
        assert!(planner.plan(&above, &catalog, &registry, &indexes).is_ok());
        let above_l = join_plan().select(col("l_id").gt(lit_i64(3)));
        assert!(planner
            .plan(&above_l, &catalog, &registry, &indexes)
            .is_ok());
    }

    #[test]
    fn unknown_table_and_model_error_at_plan_time() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        assert!(planner
            .plan(&LogicalPlan::scan("nope"), &catalog, &registry, &indexes)
            .is_err());
        let bad_model = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "word",
            "word",
            "missing",
            SimilarityPredicate::TopK(1),
        );
        assert!(planner
            .plan(&bad_model, &catalog, &registry, &indexes)
            .is_err());
    }

    #[test]
    fn existing_index_lowers_auto_cost() {
        let (catalog, registry, indexes) = setup();
        let planner = Planner::new(AccessPathAdvisor::default(), JoinStrategy::Auto);
        let cold = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        // simulate a resident index for the candidate key
        let key = IndexKey::new("s", "word", "m", IndexJoinConfig::default().params);
        let (vectors, _) = cej_workload::clustered_matrix(20, 8, 2, 0.05, 5);
        indexes
            .get_or_build(&key, || {
                cej_index::HnswIndex::build(vectors.clone(), cej_index::HnswParams::tiny())
                    .map_err(CoreError::from)
            })
            .unwrap();
        let warm = planner
            .plan(&join_plan(), &catalog, &registry, &indexes)
            .unwrap();
        assert!(
            warm.join_nodes()[0].probe_cost < cold.join_nodes()[0].probe_cost,
            "a resident index must remove the build term from the probe cost"
        );
    }

    #[test]
    fn doomed_index_budget_declines_the_probe_path() {
        // Same probe-friendly setup as the selectivity-flip test: at high
        // inner selectivity Auto picks the index probe — unless the budget
        // could never hold the index, in which case the advisor must fall
        // back to the pre-filtered scan instead of planning a build → evict
        // → rebuild loop.
        let (catalog, registry, indexes) = setup();
        catalog.register(
            "big",
            TableBuilder::new()
                .int64("filter", (0..2000).map(|i| i % 100).collect())
                .utf8("word", (0..2000).map(|i| format!("w{i}")).collect())
                .build()
                .unwrap(),
        );
        let advisor = AccessPathAdvisor::new(CostModel::new(CostParameters {
            index_probe_cost: 20.0,
            ..CostParameters::default()
        }));
        let planner = Planner::new(advisor, JoinStrategy::Auto);
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("big").select(col("filter").lt(lit_i64(95))),
            "word",
            "word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        let unbudgeted = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        assert_eq!(
            unbudgeted.join_nodes()[0].access_path,
            AccessPath::IndexProbe,
            "without a budget the probe wins this shape"
        );
        // a budget far below the estimated index footprint dooms residency
        indexes.set_budget(Some(64));
        let budgeted = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        assert_eq!(
            budgeted.join_nodes()[0].access_path,
            AccessPath::TensorScan,
            "a never-resident index must not be planned"
        );
        // ... but an index that is *already* resident keeps the probe path
        indexes.set_budget(None);
        let key = IndexKey::new("big", "word", "m", IndexJoinConfig::default().params);
        let (vectors, _) = cej_workload::clustered_matrix(20, 8, 2, 0.05, 5);
        let (held, _) = indexes
            .get_or_build(&key, || {
                cej_index::HnswIndex::build(vectors.clone(), cej_index::HnswParams::tiny())
                    .map_err(CoreError::from)
            })
            .unwrap();
        // the held handle pins the entry, so the tiny budget cannot evict it
        indexes.set_budget(Some(64));
        assert!(indexes.contains(&key));
        let resident = planner.plan(&plan, &catalog, &registry, &indexes).unwrap();
        assert_eq!(
            resident.join_nodes()[0].access_path,
            AccessPath::IndexProbe,
            "an already-resident index stays usable"
        );
        drop(held);
    }

    #[test]
    fn threshold_selectivity_model() {
        // calibrated so sim >= 0.9 keeps 5% of pairs (the old constant)
        assert!((threshold_selectivity(0.9) - 0.05).abs() < 1e-6);
        assert!(threshold_selectivity(0.5) > threshold_selectivity(0.9));
        assert_eq!(threshold_selectivity(1.0), 0.0);
        assert_eq!(threshold_selectivity(-1.0), 1.0);
    }
}
