//! Access-path selection: scan-based tensor join vs. index-probe join.
//!
//! The paper frames the choice between its scan-based tensor join and a
//! vector-index join as an access path selection problem in the tradition of
//! Kester et al. (Section IV-B, VI-E).  The experimental setup of
//! Figures 15-17 is: an outer relation of probe vectors joins a large indexed
//! inner relation, and a relational predicate *on the inner relation* controls
//! selectivity.  The two paths react very differently to that selectivity:
//!
//! * the **scan** (tensor join) pre-filters the inner relation, so its cost
//!   shrinks linearly with the selectivity;
//! * the **index probe** cannot prune its graph traversal — pre-filtering only
//!   drops results — so its cost is flat in the selectivity and grows with
//!   `k` (and degrades further for range predicates, which it can only answer
//!   by over-probing with a fixed `k` and post-filtering).
//!
//! Consequently the index only wins when the selectivity is *high* (most of
//! the inner relation qualifies) and `k` is small — the paper reports a
//! crossover around 20-30 % selectivity for top-1, around 80 % for top-32
//! with the low-recall index, and essentially never for the high-recall index
//! or range predicates.  [`AccessPathAdvisor`] encodes exactly that decision
//! using the closed-form [`CostModel`].

use serde::{Deserialize, Serialize};

use cej_relational::SimilarityPredicate;

use crate::cost::CostModel;

/// The physical access path chosen for a context-enhanced join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Exhaustive scan with the tensor join (with relational pre-filtering).
    TensorScan,
    /// HNSW index probes (with relational post-filtering of results).
    IndexProbe,
}

impl AccessPath {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AccessPath::TensorScan => "tensor-scan",
            AccessPath::IndexProbe => "index-probe",
        }
    }
}

/// Inputs to an access-path decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessPathQuery {
    /// Number of outer tuples (probes) after relational filtering.
    pub outer_rows: usize,
    /// Number of inner tuples (the indexed / scanned side).
    pub inner_rows: usize,
    /// Fraction of the *inner* relation selected by relational predicates —
    /// the selectivity axis of Figures 15-17.
    pub inner_selectivity: f64,
    /// The join predicate.
    pub predicate: SimilarityPredicate,
    /// Whether an index on the inner relation already exists (otherwise the
    /// build cost counts against the probe path).
    pub index_available: bool,
}

impl AccessPathQuery {
    /// Convenience constructor with full selectivity and an existing index.
    pub fn new(outer_rows: usize, inner_rows: usize, predicate: SimilarityPredicate) -> Self {
        Self {
            outer_rows,
            inner_rows,
            inner_selectivity: 1.0,
            predicate,
            index_available: true,
        }
    }
}

/// The advisor that picks an access path.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AccessPathAdvisor {
    /// The cost model used for the scan-vs-probe comparison.
    pub cost_model: CostModel,
}

impl AccessPathAdvisor {
    /// Creates an advisor with an explicit cost model.
    pub fn new(cost_model: CostModel) -> Self {
        Self { cost_model }
    }

    /// Estimated cost of the scan path: the tensor join compares every probe
    /// against the *pre-filtered* inner relation.
    pub fn scan_cost(&self, query: &AccessPathQuery) -> f64 {
        let p = &self.cost_model.params;
        let filtered_inner =
            (query.inner_rows as f64 * query.inner_selectivity.clamp(0.0, 1.0)).max(1.0);
        query.outer_rows as f64 * filtered_inner * (p.access_cost + p.compute_cost)
    }

    /// Estimated cost of the probe path: one graph traversal per probe,
    /// insensitive to the relational selectivity, scaled by the top-k size
    /// (and a further penalty for range predicates, which over-probe and
    /// post-filter), plus the index build when no index exists.
    pub fn probe_cost(&self, query: &AccessPathQuery) -> f64 {
        let p = &self.cost_model.params;
        let per_probe = p.index_probe_cost * (1.0 + (query.inner_rows.max(2) as f64).ln());
        let k_factor = match query.predicate {
            SimilarityPredicate::TopK(k) => 1.0 + (k.max(1) as f64).ln(),
            // Range predicates probe with a fixed k (32 in the paper) and
            // post-filter, and lose the index's build-time distance
            // assumptions — Figure 17 shows them uncompetitive.
            SimilarityPredicate::Threshold(_) => (1.0 + 32.0f64.ln()) * 4.0,
        };
        let mut cost =
            query.outer_rows as f64 * per_probe * (p.access_cost + p.compute_cost) * k_factor;
        if !query.index_available {
            // Building HNSW costs roughly efConstruction · log(n) distance
            // computations per inserted vector.
            cost += query.inner_rows as f64
                * p.index_probe_cost
                * (1.0 + (query.inner_rows.max(2) as f64).ln())
                * 0.05;
        }
        cost
    }

    /// Chooses an access path for the given query shape.
    pub fn choose(&self, query: &AccessPathQuery) -> AccessPath {
        if self.probe_cost(query) < self.scan_cost(query) {
            AccessPath::IndexProbe
        } else {
            AccessPath::TensorScan
        }
    }

    /// The selectivity at which the two paths cost the same (holding the
    /// other query parameters fixed) — the "crossover" the paper reports per
    /// figure.  Returns a value above 1.0 when the index never wins.
    pub fn crossover_selectivity(&self, query: &AccessPathQuery) -> f64 {
        let p = &self.cost_model.params;
        let probe = self.probe_cost(query);
        let per_selectivity =
            query.outer_rows as f64 * query.inner_rows as f64 * (p.access_cost + p.compute_cost);
        if per_selectivity == 0.0 {
            return f64::INFINITY;
        }
        probe / per_selectivity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(
        outer_rows: usize,
        inner_rows: usize,
        selectivity: f64,
        predicate: SimilarityPredicate,
    ) -> AccessPathQuery {
        AccessPathQuery {
            outer_rows,
            inner_rows,
            inner_selectivity: selectivity,
            predicate,
            index_available: true,
        }
    }

    #[test]
    fn low_selectivity_prefers_scan_topk1() {
        // Figure 15: below the ~20-30% crossover the pre-filtered scan wins.
        let advisor = AccessPathAdvisor::default();
        let q = query(10_000, 1_000_000, 0.05, SimilarityPredicate::TopK(1));
        assert_eq!(advisor.choose(&q), AccessPath::TensorScan);
    }

    #[test]
    fn high_selectivity_prefers_index_topk1() {
        // Figure 15: near 100% selectivity the index probe wins for top-1.
        let advisor = AccessPathAdvisor::default();
        let q = query(10_000, 1_000_000, 1.0, SimilarityPredicate::TopK(1));
        assert_eq!(advisor.choose(&q), AccessPath::IndexProbe);
    }

    #[test]
    fn topk1_crossover_matches_paper_band() {
        let advisor = AccessPathAdvisor::default();
        let q = query(10_000, 1_000_000, 1.0, SimilarityPredicate::TopK(1));
        let crossover = advisor.crossover_selectivity(&q);
        assert!(
            (0.1..=0.45).contains(&crossover),
            "top-1 crossover {crossover} should land in the paper's 20-30% band (±)"
        );
    }

    #[test]
    fn larger_k_shifts_crossover_towards_full_selectivity() {
        // Figure 16: top-32 crosses over only around 80%+ selectivity.
        let advisor = AccessPathAdvisor::default();
        let q1 = query(10_000, 1_000_000, 1.0, SimilarityPredicate::TopK(1));
        let q32 = query(10_000, 1_000_000, 1.0, SimilarityPredicate::TopK(32));
        let c1 = advisor.crossover_selectivity(&q1);
        let c32 = advisor.crossover_selectivity(&q32);
        assert!(
            c32 > c1 * 2.0,
            "top-32 crossover {c32} should be far above top-1 {c1}"
        );
        assert!(
            c32 > 0.6,
            "top-32 crossover {c32} should sit in the high-selectivity range"
        );
        // at moderate selectivity top-32 therefore picks the scan
        let q32_mid = query(10_000, 1_000_000, 0.5, SimilarityPredicate::TopK(32));
        assert_eq!(advisor.choose(&q32_mid), AccessPath::TensorScan);
    }

    #[test]
    fn range_predicate_prefers_scan_even_at_full_selectivity() {
        // Figure 17: the range predicate makes the index uncompetitive.
        let advisor = AccessPathAdvisor::default();
        let q = query(10_000, 1_000_000, 1.0, SimilarityPredicate::Threshold(0.9));
        assert_eq!(advisor.choose(&q), AccessPath::TensorScan);
        assert!(advisor.crossover_selectivity(&q) > 1.0);
    }

    #[test]
    fn missing_index_charges_build_cost() {
        let advisor = AccessPathAdvisor::default();
        let mut q = query(10_000, 200_000, 0.9, SimilarityPredicate::TopK(1));
        q.index_available = true;
        let with_index = advisor.probe_cost(&q);
        q.index_available = false;
        let without_index = advisor.probe_cost(&q);
        assert!(without_index > with_index);
    }

    #[test]
    fn scan_cost_scales_with_selectivity_but_probe_cost_does_not() {
        let advisor = AccessPathAdvisor::default();
        let lo = query(1_000, 1_000_000, 0.1, SimilarityPredicate::TopK(1));
        let hi = query(1_000, 1_000_000, 1.0, SimilarityPredicate::TopK(1));
        assert!(advisor.scan_cost(&hi) > 5.0 * advisor.scan_cost(&lo));
        assert!((advisor.probe_cost(&hi) - advisor.probe_cost(&lo)).abs() < 1e-6);
    }

    #[test]
    fn convenience_constructor_and_labels() {
        let q = AccessPathQuery::new(10, 100, SimilarityPredicate::TopK(2));
        assert_eq!(q.inner_selectivity, 1.0);
        assert!(q.index_available);
        assert_eq!(AccessPath::TensorScan.label(), "tensor-scan");
        assert_eq!(AccessPath::IndexProbe.label(), "index-probe");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let advisor = AccessPathAdvisor::default();
        let q = query(0, 0, 0.0, SimilarityPredicate::TopK(1));
        let _ = advisor.choose(&q);
        assert!(advisor.crossover_selectivity(&q).is_infinite());
    }
}
