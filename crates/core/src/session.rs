//! End-to-end declarative API: from a logical plan with an `EJoin` node to a
//! joined table.
//!
//! [`ContextJoinSession`] is the "hybrid vector-relational engine" of the
//! paper in miniature.  The user registers tables and embedding models,
//! writes a declarative plan (by hand or through
//! [`ContextJoinSession::query`]'s fluent builder), and the session splits
//! the work into two explicit stages:
//!
//! * **Plan** ([`ContextJoinSession::prepare`]): the optimizer pushes
//!   relational predicates below the embedding (Section III-C / IV), then
//!   the [`crate::planner::Planner`] lowers the result to a
//!   [`crate::physical_plan::PhysicalPlan`], consulting the
//!   [`AccessPathAdvisor`] *at plan time* — the Section V cost-based choice,
//!   inspectable via `explain()` before anything runs.
//! * **Execute** ([`crate::prepared::PreparedQuery::run`]): the physical
//!   plan runs against session-owned shared state — one `Arc`-shared
//!   [`ModelRegistry`], per-model embedding caches, and persistent HNSW
//!   indexes in the [`IndexManager`] — so repeated executions pay no model
//!   calls for cached strings and no HNSW construction for resident indexes.
//!
//! [`ContextJoinSession::execute`] is a thin `prepare().run()` wrapper, so
//! the original one-shot `execute(&LogicalPlan)` path keeps working
//! unchanged.
//!
//! ## Shared sessions
//!
//! A session is a cheap handle over `Arc`-shared state: the (internally
//! synchronised) catalog, the model registry, the per-model embedding
//! caches, and the persistent index manager.  [`ContextJoinSession::clone`]
//! returns a second handle onto the *same* state, which is how the serving
//! layer gives every connection its own handle while all of them share one
//! catalog, one set of caches, and one index manager.  Any number of
//! threads may run prepared queries concurrently; registration methods
//! keep their `&mut self` signatures (a handle is trivially made `mut`)
//! and apply copy-on-write under the hood, so queries already in flight
//! keep the snapshots they were planned against.

use std::sync::Arc;

use cej_embedding::{Embedder, EmbeddingStats};
use cej_relational::{physical::ModelRegistry, reorder_joins, Catalog, LogicalPlan, Optimizer};
use cej_storage::{Delta, Table};

use crate::access_path::{AccessPath, AccessPathAdvisor};
use crate::builder::QueryBuilder;
use crate::error::CoreError;
use crate::executor::{EmbeddingCachePool, RunEmbedder};
use crate::index_manager::IndexManager;
use crate::ivm::{ChangeOutcome, IvmRuntime, IvmStats, StandingQuery, TableChange};
use crate::join::embed_all;
use crate::join::index_join::IndexJoinConfig;
use crate::join::prefetch_nlj::NljConfig;
use crate::join::tensor_join::TensorJoinConfig;
use crate::planner::Planner;
use crate::prepared::PreparedQuery;
use crate::result::JoinStats;
use crate::Result;

/// Which physical join operator the session should use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum JoinStrategy {
    /// Cost-based access-path selection between the tensor scan and the
    /// index probe (the paper's recommended policy).
    #[default]
    Auto,
    /// The naive per-pair-embedding NLJ (for demonstration only).
    NaiveNlj,
    /// The prefetch-optimised parallel NLJ.
    PrefetchNlj(NljConfig),
    /// The blocked tensor join.
    Tensor(TensorJoinConfig),
    /// The HNSW index-probe join.
    Index(IndexJoinConfig),
}

/// Everything the session reports about one executed query.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The materialised join output.
    pub table: Table,
    /// The optimised logical plan that was executed.
    pub optimized_plan: LogicalPlan,
    /// Operator-level statistics of the join.
    pub join_stats: JoinStats,
    /// Model access counters observed during the query (deltas over the
    /// session's shared embedding cache — a warm prepared run reports 0).
    pub embedding_stats: EmbeddingStats,
    /// The access path that was chosen (None when the plan had no join).
    pub access_path: Option<AccessPath>,
    /// Number of joined pairs.
    pub matched_pairs: usize,
    /// HNSW indexes built during this execution (cold index joins).
    pub index_builds: u64,
    /// Persistent HNSW indexes reused during this execution (warm runs).
    pub index_reuses: u64,
    /// Persistent HNSW indexes evicted by the memory budget during this
    /// execution.
    pub index_evictions: u64,
    /// Actual output rows of every physical operator, in the pre-order the
    /// plan renders in — the "actual" column of `explain_analyze()`.
    pub operator_rows: Vec<u64>,
    /// Measured wall time of every physical operator in microseconds, same
    /// pre-order as `operator_rows`.  Times are *inclusive* of input pulls,
    /// and operators fused into one morsel-parallel chain all report the
    /// chain's wall time.  Timing only — excluded from the byte-identity
    /// contract across executors, thread budgets, and batch sizes.
    pub operator_micros: Vec<u64>,
    /// Morsels (selection-vector batches) each physical operator processed,
    /// same pre-order as `operator_rows`.  The row executor reports 1 per
    /// operator; the batch executor reports the batch/morsel count.  Like
    /// timing, excluded from the byte-identity contract.
    pub operator_morsels: Vec<u64>,
    /// Persistent worker-pool activity observed across this run (tasks
    /// executed, steals, injector submissions, queue depth) — the scheduler
    /// side of `explain_analyze()`.  Process-wide deltas: under concurrent
    /// serving they measure contention, not per-run attribution.
    pub scheduler: cej_exec::PoolMetrics,
    /// Id of the [`cej_obs::Trace`] that captured this run — set when the
    /// run was traced (sampled, forced, or slow-query captured), `None`
    /// otherwise.  Look the trace up with [`cej_obs::trace_by_id`].
    pub trace_id: Option<u64>,
}

/// What one [`ContextJoinSession::apply_delta`] did: the published table
/// version plus how the session's standing queries absorbed the change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReport {
    /// Version number of the table after this delta.
    pub version: u64,
    /// Base rows the delta appended.
    pub added_rows: usize,
    /// Base rows the delta removed.
    pub removed_rows: usize,
    /// Standing queries that read the table (propagated + refreshed).
    pub standing_updated: usize,
    /// Standing queries updated by exact delta propagation.
    pub propagated: usize,
    /// Standing queries updated by a full re-run (non-linear operator,
    /// oversized delta, or divergence recovery).
    pub refreshed: usize,
}

/// The `Arc`-shared state behind every [`ContextJoinSession`] handle.
struct SessionState {
    catalog: Catalog,
    registry: parking_lot::RwLock<Arc<ModelRegistry>>,
    strategy: parking_lot::RwLock<JoinStrategy>,
    advisor: parking_lot::RwLock<AccessPathAdvisor>,
    optimizer: Optimizer,
    embeddings: EmbeddingCachePool,
    indexes: IndexManager,
    ivm: IvmRuntime,
}

/// The end-to-end hybrid vector-relational session: a cheap handle over
/// shared state (see the module docs on shared sessions).
pub struct ContextJoinSession {
    state: Arc<SessionState>,
}

impl Default for ContextJoinSession {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ContextJoinSession {
    /// Returns another handle onto the **same** session state (catalog,
    /// models, caches, indexes) — not a copy.  This is the sharing primitive
    /// the serving layer hands each connection.
    fn clone(&self) -> Self {
        Self {
            state: self.state.clone(),
        }
    }
}

impl ContextJoinSession {
    /// Creates an empty session with the default optimizer and advisor.
    pub fn new() -> Self {
        Self {
            state: Arc::new(SessionState {
                catalog: Catalog::new(),
                registry: parking_lot::RwLock::new(Arc::new(ModelRegistry::new())),
                strategy: parking_lot::RwLock::new(JoinStrategy::Auto),
                advisor: parking_lot::RwLock::new(AccessPathAdvisor::default()),
                optimizer: Optimizer::with_default_rules(),
                embeddings: EmbeddingCachePool::new(),
                indexes: IndexManager::new(),
                ivm: IvmRuntime::default(),
            }),
        }
    }

    /// Registers (or replaces) a base table.  Replacing a table invalidates
    /// every persistent index built over it.
    ///
    /// Order matters under concurrency: the new table is published *before*
    /// the invalidation, so a concurrent index build either embeds the new
    /// rows (fine) or overlaps the invalidation epoch and is discarded at
    /// publication — a graph over the replaced rows can never be cached.
    pub fn register_table(&mut self, name: &str, table: Table) -> &mut Self {
        self.state.catalog.register(name, table);
        self.state.indexes.invalidate_table(name);
        self
    }

    /// Removes a table, dropping its statistics and every persistent index
    /// built over it.  Returns whether the table existed.  (The serving
    /// layer reaps per-connection probe tables with this.)
    pub fn unregister_table(&mut self, name: &str) -> bool {
        let existed = self.state.catalog.unregister(name);
        // reap (not just invalidate): also forget the table's invalidation
        // epoch, so churning scratch tables never accumulate state
        self.state.indexes.reap_table(name);
        existed
    }

    /// Registers (or replaces) an embedding model.  Replacing a model drops
    /// its memoised embedding cache *and* every persistent index built from
    /// its vectors (a resident graph would otherwise be probed with the new
    /// model's embeddings).  Copy-on-write: queries already prepared keep
    /// the registry snapshot they were planned against.
    pub fn register_model<E: Embedder + 'static>(&mut self, name: &str, model: E) -> &mut Self {
        {
            let mut registry = self.state.registry.write();
            let mut next = (**registry).clone();
            next.register(name, Arc::new(model));
            *registry = Arc::new(next);
        }
        self.state.embeddings.invalidate(name);
        self.state.indexes.invalidate_model(name);
        self
    }

    /// Forces a particular physical join strategy (default: cost-based).
    pub fn with_strategy(&mut self, strategy: JoinStrategy) -> &mut Self {
        *self.state.strategy.write() = strategy;
        self
    }

    /// Replaces the access-path advisor (e.g. with a recalibrated cost
    /// model) consulted at plan time.
    pub fn with_advisor(&mut self, advisor: AccessPathAdvisor) -> &mut Self {
        *self.state.advisor.write() = advisor;
        self
    }

    /// Caps the resident memory of persistent HNSW indexes at `bytes`,
    /// evicting least-recently-used indexes beyond it.  Also configurable
    /// via the `CEJ_INDEX_BUDGET` environment variable at session creation
    /// (plain bytes with optional `k`/`m`/`g` suffix).
    pub fn with_index_budget(&mut self, bytes: usize) -> &mut Self {
        self.state.indexes.set_budget(Some(bytes));
        self
    }

    /// The table catalog (internally synchronised — lookups and
    /// registrations are thread-safe through this reference).
    pub fn catalog(&self) -> &Catalog {
        &self.state.catalog
    }

    /// The session's shared model registry snapshot (`Arc`-shared with
    /// prepared queries — never rebuilt per execution; re-registration
    /// swaps the `Arc` copy-on-write).
    pub fn model_registry(&self) -> Arc<ModelRegistry> {
        self.state.registry.read().clone()
    }

    /// The session's persistent HNSW index cache.
    pub fn index_manager(&self) -> &IndexManager {
        &self.state.indexes
    }

    /// The session's per-model embedding caches.
    pub fn embedding_caches(&self) -> &EmbeddingCachePool {
        &self.state.embeddings
    }

    /// The access-path advisor consulted at plan time.
    pub fn advisor(&self) -> AccessPathAdvisor {
        *self.state.advisor.read()
    }

    /// Starts a fluent query against a registered table.
    pub fn query(&self, table: &str) -> QueryBuilder<'_> {
        QueryBuilder::new(self, table)
    }

    /// Optimises and physically plans a query once; the returned
    /// [`PreparedQuery`] can be executed any number of times (and from any
    /// number of threads — see [`crate::prepared::PreparedQuery::detach`]).
    ///
    /// # Errors
    /// Propagates optimisation and planning errors (unknown tables or models
    /// surface here, before execution).
    pub fn prepare(&self, plan: &LogicalPlan) -> Result<PreparedQuery<'_>> {
        let registry = self.model_registry();
        // Each planning phase is timed so traced runs can report
        // plan/order/lower wall times next to execution (the phase spans of
        // `TRACE`); timing two Instants per phase is negligible against the
        // optimizer work itself.
        let start = std::time::Instant::now();
        let optimized = self
            .state
            .optimizer
            .optimize(plan.clone(), &self.state.catalog)?;
        let rewrite_us = start.elapsed().as_micros() as u64;
        // Join-order selection runs between the rewrite optimizer (whose
        // pushdowns shape the per-relation inputs the DP costs) and physical
        // lowering (which prices the access paths of the chosen tree).
        let start = std::time::Instant::now();
        let optimized = reorder_joins(&optimized, &self.state.catalog)?;
        let order_us = start.elapsed().as_micros() as u64;
        let planner = Planner::new(self.advisor(), *self.state.strategy.read());
        let start = std::time::Instant::now();
        let physical = planner.plan(
            &optimized,
            &self.state.catalog,
            &registry,
            &self.state.indexes,
        )?;
        let lower_us = start.elapsed().as_micros() as u64;
        Ok(PreparedQuery::new(
            self.clone(),
            registry,
            optimized,
            physical,
            [rewrite_us, order_us, lower_us],
        ))
    }

    /// Renders the physical plan for `plan` — operator tree, selected access
    /// path, and per-operator cost estimates — without executing it.
    ///
    /// # Errors
    /// Propagates optimisation and planning errors.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String> {
        Ok(self.prepare(plan)?.explain())
    }

    /// Plans and executes `plan`, rendering the operator tree with estimated
    /// and actual rows side by side (`EXPLAIN ANALYZE`).
    ///
    /// # Errors
    /// Propagates planning and execution errors.
    pub fn explain_analyze(&self, plan: &LogicalPlan) -> Result<crate::prepared::ExplainAnalyze> {
        self.prepare(plan)?.explain_analyze()
    }

    /// Optimises, plans, and executes a logical plan once — a thin
    /// `prepare().run()` wrapper kept for the original one-shot API.
    ///
    /// # Errors
    /// Propagates optimisation, planning, relational execution, embedding,
    /// and join errors.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<ExecutionReport> {
        self.prepare(plan)?.run()
    }

    /// [`ContextJoinSession::execute`] recording into a caller-provided
    /// [`cej_obs::Trace`]: planning runs under a `prepare` span and the run
    /// itself via [`crate::prepared::PreparedQuery::run_traced`] (phase and
    /// per-operator spans).  A disabled trace costs nothing extra beyond
    /// slow-query wall-time measurement.
    ///
    /// # Errors
    /// Propagates the same errors as [`ContextJoinSession::execute`].
    pub fn execute_traced(
        &self,
        plan: &LogicalPlan,
        trace: &cej_obs::Trace,
    ) -> Result<ExecutionReport> {
        let span = trace.span("prepare");
        let prepared = self.prepare(plan)?;
        drop(span);
        prepared.run_traced(trace)
    }

    /// The session's IVM runtime (standing-query registry plus delta
    /// bookkeeping).
    pub(crate) fn ivm_runtime(&self) -> &IvmRuntime {
        &self.state.ivm
    }

    /// Aggregate IVM counters: registered standing queries, applied deltas,
    /// propagation/refresh split, and propagation-latency percentiles.
    pub fn ivm_stats(&self) -> IvmStats {
        self.state.ivm.stats()
    }

    /// The delta-propagation latency histogram (a shared handle onto the
    /// live cells) — what the serving layer registers under `METRICS`.
    pub fn ivm_latency_histogram(&self) -> cej_obs::Histogram {
        self.state.ivm.latency_histogram()
    }

    /// Looks up a registered standing query by id (a second handle onto the
    /// same mailbox — what the serving layer's `SUBSCRIBE <id>` resolves).
    pub fn standing_query(&self, id: u64) -> Option<StandingQuery> {
        self.state.ivm.get(id)
    }

    /// Deregisters a standing query: later deltas no longer maintain it.
    /// Outstanding handles keep their (now frozen) state.  Returns whether
    /// the id was registered.
    pub fn unsubscribe(&self, id: u64) -> bool {
        self.state.ivm.unregister(id)
    }

    /// Applies a batch mutation to a registered table and drives the whole
    /// incremental-maintenance pipeline:
    ///
    /// 1. the catalog publishes a new [`cej_storage::TableVersion`] (and
    ///    folds the change into the table's statistics incrementally);
    /// 2. resident HNSW indexes over the table are **extended in place**
    ///    for append-only deltas (new vectors inserted into a clone of the
    ///    persistent graph, atomically swapped in) or invalidated when rows
    ///    were removed (row ids shift);
    /// 3. every standing query that reads the table absorbs the change —
    ///    by exact delta propagation where linear, by a full re-run where
    ///    not — and queues a [`crate::ivm::ResultDelta`] frame.
    ///
    /// Whole applications are serialised on an internal gate, so every
    /// standing query observes table changes in one global order.
    ///
    /// # Errors
    /// Propagates schema/key-type mismatches from the delta check, and
    /// catalog, embedding, index, and execution errors from maintenance.
    pub fn apply_delta(&self, table: &str, delta: &Delta) -> Result<DeltaReport> {
        let trace = cej_obs::Trace::start(&format!("apply {table}"));
        let _gate = self.state.ivm.apply_gate.lock();
        let span = trace.span("catalog.apply");
        let (head, applied) = self
            .state
            .catalog
            .apply_delta(table, delta)
            .map_err(CoreError::from)?;
        drop(span);
        let span = trace.span("index.maintain");
        if applied.removed.num_rows() == 0 {
            span.attr("mode", "extend");
            self.extend_table_indexes(table, &applied.added)?;
        } else {
            span.attr("mode", "invalidate");
            self.state.indexes.invalidate_table(table);
        }
        drop(span);
        let version = head.version();
        let change = TableChange {
            table: table.to_string(),
            added: applied.added,
            removed: applied.removed,
        };
        // Process-wide apply sequence: every frame produced by this call
        // carries the same `seq`, so a serving layer can recognise that two
        // standing queries over the same plan just rendered the same body
        // (the fan-out cache key is `(plan fingerprint, seq)`).  Starts at 1
        // so 0 stays reserved for snapshot frames.
        static APPLY_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let seq = APPLY_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let start = std::time::Instant::now();
        let span = trace.span("ivm.propagate");
        let queries = self.state.ivm.queries();
        let mut outcomes = Vec::with_capacity(queries.len());
        for query in &queries {
            outcomes.push(query.on_table_change(&change, version, seq)?);
        }
        drop(span);
        self.state.ivm.record_apply(&outcomes, start.elapsed());
        let propagated = outcomes
            .iter()
            .filter(|o| **o == ChangeOutcome::Propagated)
            .count();
        let refreshed = outcomes
            .iter()
            .filter(|o| **o == ChangeOutcome::Refreshed)
            .count();
        trace.attr("version", version);
        trace.attr("seq", seq);
        trace.attr("added_rows", change.added.num_rows());
        trace.attr("removed_rows", change.removed.num_rows());
        trace.attr("propagated", propagated);
        trace.attr("refreshed", refreshed);
        trace.finish();
        Ok(DeltaReport {
            version,
            added_rows: change.added.num_rows(),
            removed_rows: change.removed.num_rows(),
            standing_updated: propagated + refreshed,
            propagated,
            refreshed,
        })
    }

    /// Append-only index maintenance: embeds the appended rows' strings for
    /// every resident index over `table` and publishes extended graphs in
    /// one atomic swap.  Indexes whose extension fails (e.g. a replaced
    /// column) are simply dropped and rebuilt on next use.  Always bumps the
    /// table's publication epoch, fencing in-flight builds over the old
    /// snapshot.
    fn extend_table_indexes(&self, table: &str, added: &Table) -> Result<()> {
        let keys = self.state.indexes.keys_for_table(table);
        let registry = self.model_registry();
        let mut replacements = Vec::new();
        for key in keys {
            let Some(index) = self.state.indexes.get(&key) else {
                continue;
            };
            let Ok(column) = added.column_by_name(&key.column) else {
                continue;
            };
            let Ok(strings) = column.as_utf8() else {
                continue;
            };
            let Ok(cache) = self.state.embeddings.cache(&key.model, &registry) else {
                continue;
            };
            let run = RunEmbedder::new(cache.as_ref());
            let matrix = embed_all(&run, strings)?;
            if let Ok(extended) = index.extend(&matrix) {
                replacements.push((key, Arc::new(extended)));
            }
        }
        self.state.indexes.publish_replacements(table, replacements);
        Ok(())
    }

    /// Resolves a model by name from the shared registry.
    ///
    /// # Errors
    /// Returns an unknown-model error when absent.
    pub fn shared_model(&self, name: &str) -> Result<Arc<dyn Embedder>> {
        self.state
            .registry
            .read()
            .model(name)
            .map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{sim_gte, top_k};
    use cej_embedding::{FastTextConfig, FastTextModel};
    use cej_relational::{col, lit_i64, SimilarityPredicate};
    use cej_storage::TableBuilder;

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn session() -> ContextJoinSession {
        let mut s = ContextJoinSession::new();
        s.register_table(
            "photos",
            TableBuilder::new()
                .int64("photo_id", vec![1, 2, 3, 4])
                .utf8(
                    "caption",
                    vec![
                        "barbecue".into(),
                        "database".into(),
                        "laptop".into(),
                        "vacation".into(),
                    ],
                )
                .int64("year", vec![2021, 2022, 2023, 2024])
                .build()
                .unwrap(),
        );
        s.register_table(
            "products",
            TableBuilder::new()
                .int64("product_id", vec![10, 20, 30])
                .utf8(
                    "title",
                    vec!["barbecues".into(), "databases".into(), "notebooks".into()],
                )
                .build()
                .unwrap(),
        );
        s.register_model("fasttext", model());
        s
    }

    fn join_plan(predicate: SimilarityPredicate) -> LogicalPlan {
        LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("products"),
            "caption",
            "title",
            "fasttext",
            predicate,
        )
    }

    #[test]
    fn threshold_join_produces_expected_schema_and_matches() {
        let s = session();
        let report = s
            .execute(&join_plan(SimilarityPredicate::Threshold(0.5)))
            .unwrap();
        let table = &report.table;
        assert!(table.schema().field("l_caption").is_ok());
        assert!(table.schema().field("r_title").is_ok());
        assert!(table.schema().field("similarity").is_ok());
        // barbecue-barbecues and database-databases must match
        let captions = table
            .column_by_name("l_caption")
            .unwrap()
            .as_utf8()
            .unwrap();
        let titles = table.column_by_name("r_title").unwrap().as_utf8().unwrap();
        let pairs: Vec<(String, String)> = captions
            .iter()
            .cloned()
            .zip(titles.iter().cloned())
            .collect();
        assert!(pairs.contains(&("barbecue".into(), "barbecues".into())));
        assert!(pairs.contains(&("database".into(), "databases".into())));
        assert_eq!(report.matched_pairs, table.num_rows());
        assert!(report.access_path.is_some());
    }

    #[test]
    fn prefetch_embedding_counts_are_linear() {
        let s = session();
        let report = s
            .execute(&join_plan(SimilarityPredicate::Threshold(0.5)))
            .unwrap();
        // 4 left + 3 right distinct strings = 7 model calls through the cache
        assert_eq!(report.embedding_stats.model_calls, 7);
        assert_eq!(report.join_stats.model_calls, 7);
    }

    #[test]
    fn repeated_execute_reuses_the_session_embedding_cache() {
        let s = session();
        let plan = join_plan(SimilarityPredicate::Threshold(0.5));
        let cold = s.execute(&plan).unwrap();
        assert_eq!(cold.embedding_stats.model_calls, 7);
        let warm = s.execute(&plan).unwrap();
        // same strings, same session: everything is memoised
        assert_eq!(warm.embedding_stats.model_calls, 0);
        assert_eq!(warm.table.num_rows(), cold.table.num_rows());
    }

    #[test]
    fn topk_join_returns_k_rows_per_left_tuple() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
        let report = s.execute(&join_plan(SimilarityPredicate::TopK(1))).unwrap();
        assert_eq!(report.table.num_rows(), 4);
    }

    #[test]
    fn relational_predicate_pushed_below_join_reduces_model_calls() {
        let s = session();
        let plan =
            join_plan(SimilarityPredicate::Threshold(0.5)).select(col("year").gt_eq(lit_i64(2023)));
        let report = s.execute(&plan).unwrap();
        // after pushdown only 2 left rows survive: 2 + 3 = 5 model calls
        assert_eq!(report.embedding_stats.model_calls, 5);
        assert_eq!(report.optimized_plan.selections_below_embedding(), 1);
        // all output rows satisfy the relational predicate
        let years = report
            .table
            .column_by_name("l_year")
            .unwrap()
            .as_int64()
            .unwrap();
        assert!(years.iter().all(|&y| y >= 2023));
    }

    #[test]
    fn all_strategies_agree_on_threshold_join() {
        let strategies = vec![
            JoinStrategy::NaiveNlj,
            JoinStrategy::PrefetchNlj(NljConfig::default()),
            JoinStrategy::Tensor(TensorJoinConfig::default()),
        ];
        let mut reference: Option<Vec<(String, String)>> = None;
        for strategy in strategies {
            let mut s = session();
            s.with_strategy(strategy);
            let report = s
                .execute(&join_plan(SimilarityPredicate::Threshold(0.5)))
                .unwrap();
            let captions = report
                .table
                .column_by_name("l_caption")
                .unwrap()
                .as_utf8()
                .unwrap()
                .to_vec();
            let titles = report
                .table
                .column_by_name("r_title")
                .unwrap()
                .as_utf8()
                .unwrap()
                .to_vec();
            let mut pairs: Vec<(String, String)> = captions.into_iter().zip(titles).collect();
            pairs.sort();
            match &reference {
                None => reference = Some(pairs),
                Some(expected) => assert_eq!(&pairs, expected, "strategy {strategy:?} diverged"),
            }
        }
    }

    #[test]
    fn index_strategy_executes_and_caches_the_index() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Index(IndexJoinConfig {
            params: cej_index::HnswParams::tiny(),
            range_probe_k: 3,
        }));
        let report = s.execute(&join_plan(SimilarityPredicate::TopK(1))).unwrap();
        assert_eq!(report.access_path, Some(AccessPath::IndexProbe));
        assert_eq!(report.table.num_rows(), 4);
        assert!(report.join_stats.probe_stats.distance_computations > 0);
        assert_eq!(report.index_builds, 1);
        // a second one-shot execute reuses the persistent index
        let warm = s.execute(&join_plan(SimilarityPredicate::TopK(1))).unwrap();
        assert_eq!(warm.index_builds, 0);
        assert_eq!(warm.index_reuses, 1);
        assert_eq!(s.index_manager().stats().builds, 1);
    }

    #[test]
    fn purely_relational_plan_still_executes() {
        let s = session();
        let plan = LogicalPlan::scan("photos").select(col("year").gt(lit_i64(2022)));
        let report = s.execute(&plan).unwrap();
        assert_eq!(report.table.num_rows(), 2);
        assert!(report.access_path.is_none());
        assert_eq!(report.matched_pairs, 0);
    }

    #[test]
    fn selection_above_join_on_joined_columns() {
        let s = session();
        // predicate references both sides, so it cannot be pushed down and is
        // evaluated over the join output
        let plan = join_plan(SimilarityPredicate::Threshold(0.5))
            .select(col("similarity").gt_eq(cej_relational::lit_f64(0.9)));
        let report = s.execute(&plan).unwrap();
        let sims = report
            .table
            .column_by_name("similarity")
            .unwrap()
            .as_float64()
            .unwrap();
        assert!(sims.iter().all(|&s| s >= 0.9));
    }

    #[test]
    fn unknown_model_and_table_errors() {
        let mut s = ContextJoinSession::new();
        s.register_table(
            "t",
            TableBuilder::new()
                .utf8("w", vec!["a".into()])
                .build()
                .unwrap(),
        );
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("t"),
            LogicalPlan::scan("t"),
            "w",
            "w",
            "missing-model",
            SimilarityPredicate::TopK(1),
        );
        assert!(s.execute(&plan).is_err());
        let s2 = session();
        let bad_table = LogicalPlan::e_join(
            LogicalPlan::scan("nope"),
            LogicalPlan::scan("products"),
            "caption",
            "title",
            "fasttext",
            SimilarityPredicate::TopK(1),
        );
        assert!(s2.execute(&bad_table).is_err());
        // both surface at plan time already
        assert!(s.prepare(&plan).is_err());
        assert!(s2.prepare(&bad_table).is_err());
    }

    #[test]
    fn join_on_non_string_column_is_type_error() {
        let s = session();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("products"),
            "photo_id",
            "title",
            "fasttext",
            SimilarityPredicate::TopK(1),
        );
        assert!(s.execute(&plan).is_err());
    }

    #[test]
    fn explain_matches_executed_access_path() {
        let s = session();
        let plan = join_plan(SimilarityPredicate::TopK(1));
        let prepared = s.prepare(&plan).unwrap();
        let text = prepared.explain();
        assert!(text.contains("scan cost") && text.contains("probe cost"));
        let report = prepared.run().unwrap();
        let path = report.access_path.unwrap();
        assert!(
            text.contains(&format!("access path: {}", path.label())),
            "explain `{text}` must name the executed path {path:?}"
        );
    }

    #[test]
    fn query_builder_matches_hand_built_plan() {
        let s = session();
        let built = s
            .query("photos")
            .select(col("year").gt_eq(lit_i64(2023)))
            .ejoin("products", ("caption", "title"), "fasttext", sim_gte(0.5))
            .build();
        let hand = LogicalPlan::e_join(
            LogicalPlan::scan("photos").select(col("year").gt_eq(lit_i64(2023))),
            LogicalPlan::scan("products"),
            "caption",
            "title",
            "fasttext",
            SimilarityPredicate::Threshold(0.5),
        );
        assert_eq!(built, hand);
        let report = s
            .query("photos")
            .ejoin("products", ("caption", "title"), "fasttext", top_k(1))
            .run()
            .unwrap();
        assert_eq!(report.table.num_rows(), 4);
    }

    #[test]
    fn model_registry_is_shared_not_rebuilt() {
        let s = session();
        let before = Arc::as_ptr(&s.model_registry());
        let _ = s.execute(&join_plan(SimilarityPredicate::TopK(1))).unwrap();
        let _ = s.execute(&join_plan(SimilarityPredicate::TopK(1))).unwrap();
        assert_eq!(
            before,
            Arc::as_ptr(&s.model_registry()),
            "execute must not rebuild the registry"
        );
        assert!(s.shared_model("fasttext").is_ok());
        assert!(s.shared_model("bert").is_err());
    }

    #[test]
    fn reregistering_a_model_invalidates_its_indexes_and_cache() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Index(IndexJoinConfig {
            params: cej_index::HnswParams::tiny(),
            range_probe_k: 3,
        }));
        let plan = join_plan(SimilarityPredicate::TopK(1));
        s.execute(&plan).unwrap();
        assert_eq!(s.index_manager().stats().resident, 1);
        // replacing the model drops both the memoised vectors and the graph
        // built from them — probing the old graph with new-model embeddings
        // would silently return wrong pairs
        s.register_model("fasttext", model());
        assert_eq!(s.index_manager().stats().resident, 0);
        assert_eq!(s.embedding_caches().cached_entries(), 0);
        let report = s.execute(&plan).unwrap();
        assert_eq!(report.index_builds, 1);
        assert_eq!(report.embedding_stats.model_calls, 7);
    }

    #[test]
    fn reregistering_a_table_invalidates_its_indexes() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Index(IndexJoinConfig {
            params: cej_index::HnswParams::tiny(),
            range_probe_k: 3,
        }));
        let plan = join_plan(SimilarityPredicate::TopK(1));
        s.execute(&plan).unwrap();
        assert_eq!(s.index_manager().stats().resident, 1);
        s.register_table(
            "products",
            TableBuilder::new()
                .int64("product_id", vec![1])
                .utf8("title", vec!["grill".into()])
                .build()
                .unwrap(),
        );
        assert_eq!(s.index_manager().stats().resident, 0);
        assert_eq!(s.index_manager().stats().invalidations, 1);
        let report = s.execute(&plan).unwrap();
        assert_eq!(report.index_builds, 1, "index must be rebuilt");
        assert_eq!(report.table.num_rows(), 4);
    }
}
