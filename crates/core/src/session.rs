//! End-to-end declarative API: from a logical plan with an `EJoin` node to a
//! joined table.
//!
//! [`ContextJoinSession`] is the "hybrid vector-relational engine" of the
//! paper in miniature: the user registers tables and embedding models, writes
//! a declarative plan (scan / filter / context-enhanced join), and the
//! session
//!
//! 1. optimises the plan (relational predicate pushdown below the embedding,
//!    Section III-C / IV),
//! 2. executes the relational inputs of the join,
//! 3. prefetches embeddings through a counting cache (`(|R| + |S|)` model
//!    calls — the logical optimisation of Section IV-A),
//! 4. picks a physical join operator via cost-based access-path selection
//!    (or an explicitly requested strategy), and
//! 5. materialises the joined table (left columns prefixed `l_`, right
//!    columns prefixed `r_`, plus a `similarity` score column).

use std::collections::HashMap;
use std::sync::Arc;

use cej_embedding::{CachedEmbedder, Embedder, EmbeddingStats};
use cej_relational::{
    physical::{apply_embedding, execute_relational},
    Catalog, LogicalPlan, ModelRegistry, Optimizer, SimilarityPredicate,
};
use cej_storage::{Column, Field, Schema, Table};
use cej_vector::Vector;

use crate::access_path::{AccessPath, AccessPathAdvisor, AccessPathQuery};
use crate::error::CoreError;
use crate::join::index_join::{IndexJoin, IndexJoinConfig};
use crate::join::naive_nlj::NaiveNlJoin;
use crate::join::prefetch_nlj::{NljConfig, PrefetchNlJoin};
use crate::join::tensor_join::{TensorJoin, TensorJoinConfig};
use crate::result::{JoinResult, JoinStats};
use crate::Result;

/// Which physical join operator the session should use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum JoinStrategy {
    /// Cost-based access-path selection between the tensor scan and the
    /// index probe (the paper's recommended policy).
    #[default]
    Auto,
    /// The naive per-pair-embedding NLJ (for demonstration only).
    NaiveNlj,
    /// The prefetch-optimised parallel NLJ.
    PrefetchNlj(NljConfig),
    /// The blocked tensor join.
    Tensor(TensorJoinConfig),
    /// The HNSW index-probe join.
    Index(IndexJoinConfig),
}

/// Everything the session reports about one executed query.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The materialised join output.
    pub table: Table,
    /// The optimised logical plan that was executed.
    pub optimized_plan: LogicalPlan,
    /// Operator-level statistics of the join.
    pub join_stats: JoinStats,
    /// Model access counters observed during the query.
    pub embedding_stats: EmbeddingStats,
    /// The access path that was chosen (None when the plan had no join).
    pub access_path: Option<AccessPath>,
    /// Number of joined pairs.
    pub matched_pairs: usize,
}

/// Adapter so a shared `Arc<dyn Embedder>` can be wrapped by
/// [`CachedEmbedder`] (which needs an owned `Embedder`).
struct SharedEmbedder(Arc<dyn Embedder>);

impl Embedder for SharedEmbedder {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn embed(&self, input: &str) -> Vector {
        self.0.embed(input)
    }
}

/// The end-to-end hybrid vector-relational session.
pub struct ContextJoinSession {
    catalog: Catalog,
    models: HashMap<String, Arc<dyn Embedder>>,
    strategy: JoinStrategy,
    advisor: AccessPathAdvisor,
    optimizer: Optimizer,
}

impl Default for ContextJoinSession {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextJoinSession {
    /// Creates an empty session with the default optimizer and advisor.
    pub fn new() -> Self {
        Self {
            catalog: Catalog::new(),
            models: HashMap::new(),
            strategy: JoinStrategy::Auto,
            advisor: AccessPathAdvisor::default(),
            optimizer: Optimizer::with_default_rules(),
        }
    }

    /// Registers a base table.
    pub fn register_table(&mut self, name: &str, table: Table) -> &mut Self {
        self.catalog.register(name, table);
        self
    }

    /// Registers an embedding model.
    pub fn register_model<E: Embedder + 'static>(&mut self, name: &str, model: E) -> &mut Self {
        self.models.insert(name.to_string(), Arc::new(model));
        self
    }

    /// Forces a particular physical join strategy (default: cost-based).
    pub fn with_strategy(&mut self, strategy: JoinStrategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// The table catalog (e.g. for inspection in tests).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn model_registry(&self) -> ModelRegistry {
        let mut registry = ModelRegistry::new();
        for (name, model) in &self.models {
            registry.register(name, model.clone());
        }
        registry
    }

    fn shared_model(&self, name: &str) -> Result<Arc<dyn Embedder>> {
        self.models.get(name).cloned().ok_or_else(|| {
            CoreError::Relational(cej_relational::RelationalError::UnknownModel(
                name.to_string(),
            ))
        })
    }

    /// Optimises and executes a logical plan.
    ///
    /// # Errors
    /// Propagates optimisation, relational execution, embedding, and join
    /// errors.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<ExecutionReport> {
        let optimized = self.optimizer.optimize(plan.clone(), &self.catalog)?;
        let registry = self.model_registry();
        let mut context = QueryContext::default();
        let table = self.execute_node(&optimized, &registry, &mut context)?;
        Ok(ExecutionReport {
            table,
            optimized_plan: optimized,
            join_stats: context.join_stats,
            embedding_stats: context.embedding_stats,
            access_path: context.access_path,
            matched_pairs: context.matched_pairs,
        })
    }

    fn execute_node(
        &self,
        plan: &LogicalPlan,
        registry: &ModelRegistry,
        context: &mut QueryContext,
    ) -> Result<Table> {
        if plan.embed_count() == 0 && !contains_join(plan) {
            // Purely relational subtree.
            return execute_relational(plan, &self.catalog, registry).map_err(CoreError::from);
        }
        match plan {
            LogicalPlan::EJoin {
                left,
                right,
                left_column,
                right_column,
                model,
                predicate,
            } => {
                let left_table = self.execute_node(left, registry, context)?;
                let right_table = self.execute_node(right, registry, context)?;
                self.execute_join(
                    &left_table,
                    &right_table,
                    left_column,
                    right_column,
                    model,
                    *predicate,
                    context,
                )
            }
            LogicalPlan::Selection { predicate, input } => {
                let table = self.execute_node(input, registry, context)?;
                let selection = cej_relational::eval::evaluate_predicate(predicate, &table)
                    .map_err(CoreError::from)?;
                table.filter(&selection).map_err(CoreError::from)
            }
            LogicalPlan::Projection { columns, input } => {
                let table = self.execute_node(input, registry, context)?;
                let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                table.project(&names).map_err(CoreError::from)
            }
            LogicalPlan::Embed { spec, input } => {
                let table = self.execute_node(input, registry, context)?;
                apply_embedding(&table, spec, registry).map_err(CoreError::from)
            }
            LogicalPlan::Scan { .. } => {
                execute_relational(plan, &self.catalog, registry).map_err(CoreError::from)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_join(
        &self,
        left: &Table,
        right: &Table,
        left_column: &str,
        right_column: &str,
        model_name: &str,
        predicate: SimilarityPredicate,
        context: &mut QueryContext,
    ) -> Result<Table> {
        let left_strings = left
            .column_by_name(left_column)
            .map_err(CoreError::from)?
            .as_utf8()?;
        let right_strings = right
            .column_by_name(right_column)
            .map_err(CoreError::from)?
            .as_utf8()?;

        let model = self.shared_model(model_name)?;
        let counted = CachedEmbedder::new(SharedEmbedder(model));

        let (result, path) = self.run_strategy(
            &counted,
            left_strings,
            right_strings,
            predicate,
            left.num_rows(),
            right.num_rows(),
        )?;
        context.embedding_stats = counted.stats();
        context.join_stats = result.stats;
        context.join_stats.model_calls = counted.stats().model_calls;
        context.access_path = Some(path);
        context.matched_pairs = result.len();

        self.materialize_output(left, right, &result)
    }

    fn run_strategy(
        &self,
        model: &dyn Embedder,
        left: &[String],
        right: &[String],
        predicate: SimilarityPredicate,
        left_rows: usize,
        right_rows: usize,
    ) -> Result<(JoinResult, AccessPath)> {
        match self.strategy {
            JoinStrategy::NaiveNlj => Ok((
                NaiveNlJoin::new().join(model, left, right, predicate)?,
                AccessPath::TensorScan,
            )),
            JoinStrategy::PrefetchNlj(config) => Ok((
                PrefetchNlJoin::new(config).join(model, left, right, predicate)?,
                AccessPath::TensorScan,
            )),
            JoinStrategy::Tensor(config) => Ok((
                TensorJoin::new(config).join(model, left, right, predicate)?,
                AccessPath::TensorScan,
            )),
            JoinStrategy::Index(config) => Ok((
                IndexJoin::new(config).join(model, left, right, predicate)?,
                AccessPath::IndexProbe,
            )),
            JoinStrategy::Auto => {
                let query = AccessPathQuery {
                    outer_rows: left_rows,
                    inner_rows: right_rows,
                    inner_selectivity: 1.0,
                    predicate,
                    index_available: false,
                };
                let path = self.advisor.choose(&query);
                let result = match path {
                    AccessPath::TensorScan => TensorJoin::new(TensorJoinConfig::default())
                        .join(model, left, right, predicate)?,
                    AccessPath::IndexProbe => IndexJoin::new(IndexJoinConfig::default())
                        .join(model, left, right, predicate)?,
                };
                Ok((result, path))
            }
        }
    }

    /// Builds the output table: `l_*` columns, `r_*` columns, `similarity`.
    fn materialize_output(
        &self,
        left: &Table,
        right: &Table,
        result: &JoinResult,
    ) -> Result<Table> {
        let pairs = result.sorted_pairs();
        let left_indices: Vec<usize> = pairs.iter().map(|p| p.left).collect();
        let right_indices: Vec<usize> = pairs.iter().map(|p| p.right).collect();
        let scores: Vec<f64> = pairs.iter().map(|p| p.score as f64).collect();

        let left_taken = left.take(&left_indices).map_err(CoreError::from)?;
        let right_taken = right.take(&right_indices).map_err(CoreError::from)?;

        let mut fields: Vec<Field> = Vec::new();
        let mut columns: Vec<Column> = Vec::new();
        for (field, column) in left_taken
            .schema()
            .fields()
            .iter()
            .zip(left_taken.columns())
        {
            fields.push(Field::new(format!("l_{}", field.name), field.data_type));
            columns.push(column.clone());
        }
        for (field, column) in right_taken
            .schema()
            .fields()
            .iter()
            .zip(right_taken.columns())
        {
            fields.push(Field::new(format!("r_{}", field.name), field.data_type));
            columns.push(column.clone());
        }
        fields.push(Field::new("similarity", cej_storage::DataType::Float64));
        columns.push(Column::Float64(scores));

        let schema = Schema::new(fields).map_err(CoreError::from)?;
        Table::new(schema, columns).map_err(CoreError::from)
    }
}

/// Whether a plan tree contains an `EJoin` node.
fn contains_join(plan: &LogicalPlan) -> bool {
    matches!(plan, LogicalPlan::EJoin { .. }) || plan.children().iter().any(|c| contains_join(c))
}

#[derive(Debug, Default)]
struct QueryContext {
    join_stats: JoinStats,
    embedding_stats: EmbeddingStats,
    access_path: Option<AccessPath>,
    matched_pairs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_embedding::{FastTextConfig, FastTextModel};
    use cej_relational::{col, lit_i64};
    use cej_storage::TableBuilder;

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn session() -> ContextJoinSession {
        let mut s = ContextJoinSession::new();
        s.register_table(
            "photos",
            TableBuilder::new()
                .int64("photo_id", vec![1, 2, 3, 4])
                .utf8(
                    "caption",
                    vec![
                        "barbecue".into(),
                        "database".into(),
                        "laptop".into(),
                        "vacation".into(),
                    ],
                )
                .int64("year", vec![2021, 2022, 2023, 2024])
                .build()
                .unwrap(),
        );
        s.register_table(
            "products",
            TableBuilder::new()
                .int64("product_id", vec![10, 20, 30])
                .utf8(
                    "title",
                    vec!["barbecues".into(), "databases".into(), "notebooks".into()],
                )
                .build()
                .unwrap(),
        );
        s.register_model("fasttext", model());
        s
    }

    fn join_plan(predicate: SimilarityPredicate) -> LogicalPlan {
        LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("products"),
            "caption",
            "title",
            "fasttext",
            predicate,
        )
    }

    #[test]
    fn threshold_join_produces_expected_schema_and_matches() {
        let s = session();
        let report = s
            .execute(&join_plan(SimilarityPredicate::Threshold(0.5)))
            .unwrap();
        let table = &report.table;
        assert!(table.schema().field("l_caption").is_ok());
        assert!(table.schema().field("r_title").is_ok());
        assert!(table.schema().field("similarity").is_ok());
        // barbecue-barbecues and database-databases must match
        let captions = table
            .column_by_name("l_caption")
            .unwrap()
            .as_utf8()
            .unwrap();
        let titles = table.column_by_name("r_title").unwrap().as_utf8().unwrap();
        let pairs: Vec<(String, String)> = captions
            .iter()
            .cloned()
            .zip(titles.iter().cloned())
            .collect();
        assert!(pairs.contains(&("barbecue".into(), "barbecues".into())));
        assert!(pairs.contains(&("database".into(), "databases".into())));
        assert_eq!(report.matched_pairs, table.num_rows());
        assert!(report.access_path.is_some());
    }

    #[test]
    fn prefetch_embedding_counts_are_linear() {
        let s = session();
        let report = s
            .execute(&join_plan(SimilarityPredicate::Threshold(0.5)))
            .unwrap();
        // 4 left + 3 right distinct strings = 7 model calls through the cache
        assert_eq!(report.embedding_stats.model_calls, 7);
        assert_eq!(report.join_stats.model_calls, 7);
    }

    #[test]
    fn topk_join_returns_k_rows_per_left_tuple() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
        let report = s.execute(&join_plan(SimilarityPredicate::TopK(1))).unwrap();
        assert_eq!(report.table.num_rows(), 4);
    }

    #[test]
    fn relational_predicate_pushed_below_join_reduces_model_calls() {
        let s = session();
        let plan =
            join_plan(SimilarityPredicate::Threshold(0.5)).select(col("year").gt_eq(lit_i64(2023)));
        let report = s.execute(&plan).unwrap();
        // after pushdown only 2 left rows survive: 2 + 3 = 5 model calls
        assert_eq!(report.embedding_stats.model_calls, 5);
        assert_eq!(report.optimized_plan.selections_below_embedding(), 1);
        // all output rows satisfy the relational predicate
        let years = report
            .table
            .column_by_name("l_year")
            .unwrap()
            .as_int64()
            .unwrap();
        assert!(years.iter().all(|&y| y >= 2023));
    }

    #[test]
    fn all_strategies_agree_on_threshold_join() {
        let strategies = vec![
            JoinStrategy::NaiveNlj,
            JoinStrategy::PrefetchNlj(NljConfig::default()),
            JoinStrategy::Tensor(TensorJoinConfig::default()),
        ];
        let mut reference: Option<Vec<(String, String)>> = None;
        for strategy in strategies {
            let mut s = session();
            s.with_strategy(strategy);
            let report = s
                .execute(&join_plan(SimilarityPredicate::Threshold(0.5)))
                .unwrap();
            let captions = report
                .table
                .column_by_name("l_caption")
                .unwrap()
                .as_utf8()
                .unwrap()
                .to_vec();
            let titles = report
                .table
                .column_by_name("r_title")
                .unwrap()
                .as_utf8()
                .unwrap()
                .to_vec();
            let mut pairs: Vec<(String, String)> = captions.into_iter().zip(titles).collect();
            pairs.sort();
            match &reference {
                None => reference = Some(pairs),
                Some(expected) => assert_eq!(&pairs, expected, "strategy {strategy:?} diverged"),
            }
        }
    }

    #[test]
    fn index_strategy_executes() {
        let mut s = session();
        s.with_strategy(JoinStrategy::Index(IndexJoinConfig {
            params: cej_index::HnswParams::tiny(),
            range_probe_k: 3,
        }));
        let report = s.execute(&join_plan(SimilarityPredicate::TopK(1))).unwrap();
        assert_eq!(report.access_path, Some(AccessPath::IndexProbe));
        assert_eq!(report.table.num_rows(), 4);
        assert!(report.join_stats.probe_stats.distance_computations > 0);
    }

    #[test]
    fn purely_relational_plan_still_executes() {
        let s = session();
        let plan = LogicalPlan::scan("photos").select(col("year").gt(lit_i64(2022)));
        let report = s.execute(&plan).unwrap();
        assert_eq!(report.table.num_rows(), 2);
        assert!(report.access_path.is_none());
        assert_eq!(report.matched_pairs, 0);
    }

    #[test]
    fn selection_above_join_on_joined_columns() {
        let s = session();
        // predicate references both sides, so it cannot be pushed down and is
        // evaluated over the join output
        let plan = join_plan(SimilarityPredicate::Threshold(0.5))
            .select(col("similarity").gt_eq(cej_relational::lit_f64(0.9)));
        let report = s.execute(&plan).unwrap();
        let sims = report
            .table
            .column_by_name("similarity")
            .unwrap()
            .as_float64()
            .unwrap();
        assert!(sims.iter().all(|&s| s >= 0.9));
    }

    #[test]
    fn unknown_model_and_table_errors() {
        let mut s = ContextJoinSession::new();
        s.register_table(
            "t",
            TableBuilder::new()
                .utf8("w", vec!["a".into()])
                .build()
                .unwrap(),
        );
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("t"),
            LogicalPlan::scan("t"),
            "w",
            "w",
            "missing-model",
            SimilarityPredicate::TopK(1),
        );
        assert!(s.execute(&plan).is_err());
        let s2 = session();
        let bad_table = LogicalPlan::e_join(
            LogicalPlan::scan("nope"),
            LogicalPlan::scan("products"),
            "caption",
            "title",
            "fasttext",
            SimilarityPredicate::TopK(1),
        );
        assert!(s2.execute(&bad_table).is_err());
    }

    #[test]
    fn join_on_non_string_column_is_type_error() {
        let s = session();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("products"),
            "photo_id",
            "title",
            "fasttext",
            SimilarityPredicate::TopK(1),
        );
        assert!(s.execute(&plan).is_err());
    }
}
