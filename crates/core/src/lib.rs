//! # cej-core
//!
//! The paper's primary contribution: **context-enhanced relational join
//! operators** over vector embeddings, their cost model, and access-path
//! selection — plus an end-to-end session API that ties the substrates
//! (storage, relational algebra, embedding model, vector index) together.
//!
//! ## Operator inventory
//!
//! | Operator | Paper section | Model cost | Compute pattern |
//! |---|---|---|---|
//! | [`join::NaiveNlJoin`] | IV-A (E-NL Join Cost) | `|R|·|S|·M` | per-pair embed + compare |
//! | [`join::PrefetchNlJoin`] | IV-A (Prefetch Optimization), V-A | `(|R|+|S|)·M` | embed once, parallel pair-wise NLJ, SIMD / scalar kernels |
//! | [`join::TensorJoin`] | IV-C, V-B | `(|R|+|S|)·M` | blocked matrix multiplication with mini-batching under a buffer budget |
//! | [`join::IndexJoin`] | IV-B, VI-E | `(|R|+|S|)·M` + build | HNSW top-k probes with relational pre-filtering |
//!
//! ## Cost model and access-path selection
//!
//! [`cost::CostModel`] implements the four closed-form costs of Section IV
//! and [`access_path::AccessPathAdvisor`] uses them (plus the estimated
//! selectivity) to choose between the scan-based tensor join and the
//! index-probe join, reproducing the paper's scan-vs-probe analysis.
//!
//! ## The physical layer: plan once, execute many
//!
//! Planning and execution are separate stages:
//!
//! * [`planner::Planner`] lowers an optimised
//!   [`cej_relational::LogicalPlan`] to a [`physical_plan::PhysicalPlan`],
//!   consulting the advisor *at plan time*; the decision (operator, access
//!   path, cost estimates) is rendered by
//!   [`physical_plan::PhysicalPlan::explain`] before execution.
//! * [`prepared::PreparedQuery`] executes one physical plan many times
//!   against session-shared state: the `Arc`-shared model registry, the
//!   per-model embedding caches ([`executor::EmbeddingCachePool`]), and the
//!   persistent HNSW indexes of [`index_manager::IndexManager`] — so warm
//!   index-join runs perform zero model calls and zero HNSW construction.
//! * [`session::ContextJoinSession::execute`] is a thin `prepare().run()`
//!   wrapper and [`session::ContextJoinSession::query`] offers a fluent
//!   [`builder::QueryBuilder`] so plans need not be hand-assembled.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod access_path;
pub mod batch_exec;
pub mod builder;
pub mod cost;
pub mod error;
pub mod executor;
pub mod index_manager;
pub mod ivm;
pub mod join;
#[cfg(test)]
mod multi_join_tests;
pub mod physical_plan;
pub mod planner;
pub mod prepared;
pub mod result;
pub mod session;

pub use access_path::{AccessPath, AccessPathAdvisor, AccessPathQuery};
pub use batch_exec::ExecMode;
pub use builder::{sim_gte, top_k, QueryBuilder};
pub use cost::{CostModel, CostParameters};
pub use error::CoreError;
pub use executor::{EmbeddingCachePool, ExecContext, ExecOutcome, RunStats};
pub use index_manager::{IndexKey, IndexManager, IndexManagerStats};
pub use ivm::{
    DeltaBatch, DeltaEngine, IvmPolicy, IvmStats, MaintainedResult, Propagation, ResultDelta,
    StandingQuery, StandingStats, TableChange,
};
pub use join::index_join::{IndexJoin, IndexJoinConfig};
pub use join::naive_nlj::NaiveNlJoin;
pub use join::prefetch_nlj::{NljConfig, PrefetchNlJoin};
pub use join::tensor_join::{TensorJoin, TensorJoinConfig};
pub use physical_plan::{
    q_error, IndexedInner, InnerInput, JoinNode, PhysicalJoinOp, PhysicalPlan, PlanEstimate,
};
pub use planner::Planner;
pub use prepared::{ExplainAnalyze, PreparedQuery};
pub use result::{JoinPair, JoinResult, JoinStats};
pub use session::{ContextJoinSession, DeltaReport, ExecutionReport, JoinStrategy};

// The delta vocabulary of [`ContextJoinSession::apply_delta`], re-exported so
// API users need not depend on `cej-storage` directly.
pub use cej_storage::{Delta, ScalarValue};

/// Result alias for the core layer.
pub type Result<T> = std::result::Result<T, CoreError>;
