//! # cej-core
//!
//! The paper's primary contribution: **context-enhanced relational join
//! operators** over vector embeddings, their cost model, and access-path
//! selection — plus an end-to-end session API that ties the substrates
//! (storage, relational algebra, embedding model, vector index) together.
//!
//! ## Operator inventory
//!
//! | Operator | Paper section | Model cost | Compute pattern |
//! |---|---|---|---|
//! | [`join::NaiveNlJoin`] | IV-A (E-NL Join Cost) | `|R|·|S|·M` | per-pair embed + compare |
//! | [`join::PrefetchNlJoin`] | IV-A (Prefetch Optimization), V-A | `(|R|+|S|)·M` | embed once, parallel pair-wise NLJ, SIMD / scalar kernels |
//! | [`join::TensorJoin`] | IV-C, V-B | `(|R|+|S|)·M` | blocked matrix multiplication with mini-batching under a buffer budget |
//! | [`join::IndexJoin`] | IV-B, VI-E | `(|R|+|S|)·M` + build | HNSW top-k probes with relational pre-filtering |
//!
//! ## Cost model and access-path selection
//!
//! [`cost::CostModel`] implements the four closed-form costs of Section IV
//! and [`access_path::AccessPathAdvisor`] uses them (plus the observed
//! selectivity) to choose between the scan-based tensor join and the
//! index-probe join, reproducing the paper's scan-vs-probe analysis.
//!
//! ## End-to-end API
//!
//! [`session::ContextJoinSession`] accepts a declarative
//! [`cej_relational::LogicalPlan`] containing an `EJoin` node, optimises it
//! (relational predicate pushdown below the embedding), executes the
//! relational inputs, prefetches embeddings through a counting cache, picks a
//! physical join operator, and returns the joined table together with
//! detailed execution statistics.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod access_path;
pub mod cost;
pub mod error;
pub mod join;
pub mod result;
pub mod session;

pub use access_path::{AccessPath, AccessPathAdvisor, AccessPathQuery};
pub use cost::{CostModel, CostParameters};
pub use error::CoreError;
pub use join::index_join::{IndexJoin, IndexJoinConfig};
pub use join::naive_nlj::NaiveNlJoin;
pub use join::prefetch_nlj::{NljConfig, PrefetchNlJoin};
pub use join::tensor_join::{TensorJoin, TensorJoinConfig};
pub use result::{JoinPair, JoinResult, JoinStats};
pub use session::{ContextJoinSession, ExecutionReport, JoinStrategy};

/// Result alias for the core layer.
pub type Result<T> = std::result::Result<T, CoreError>;
