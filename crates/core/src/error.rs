//! Error type for the core join layer.

use std::fmt;

use cej_embedding::EmbeddingError;
use cej_index::IndexError;
use cej_relational::RelationalError;
use cej_storage::StorageError;
use cej_vector::VectorError;

/// Errors raised by the context-enhanced join operators and the session API.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Error from the vector substrate.
    Vector(VectorError),
    /// Error from the embedding substrate.
    Embedding(EmbeddingError),
    /// Error from the storage substrate.
    Storage(StorageError),
    /// Error from the relational layer.
    Relational(RelationalError),
    /// Error from the vector index substrate.
    Index(IndexError),
    /// The join inputs are inconsistent (e.g. mismatched dimensions after
    /// embedding with different models).
    InvalidInput(String),
    /// The requested plan or operator configuration is unsupported.
    Unsupported(String),
    /// A threshold re-bind on a multi-join plan did not name which of the
    /// plan's several `sim_gte` ejoins to target.  Carries the number of
    /// candidate joins; target one with `bind_threshold_at`.
    AmbiguousThresholdBind(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Vector(e) => write!(f, "vector error: {e}"),
            CoreError::Embedding(e) => write!(f, "embedding error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Relational(e) => write!(f, "relational error: {e}"),
            CoreError::Index(e) => write!(f, "index error: {e}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid join input: {msg}"),
            CoreError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            CoreError::AmbiguousThresholdBind(n) => write!(
                f,
                "ambiguous threshold bind: plan has {n} sim_gte ejoins; \
                 target one with bind_threshold_at(index, threshold)"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Vector(e) => Some(e),
            CoreError::Embedding(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::Relational(e) => Some(e),
            CoreError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VectorError> for CoreError {
    fn from(e: VectorError) -> Self {
        CoreError::Vector(e)
    }
}

impl From<EmbeddingError> for CoreError {
    fn from(e: EmbeddingError) -> Self {
        CoreError::Embedding(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<RelationalError> for CoreError {
    fn from(e: RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

impl From<IndexError> for CoreError {
    fn from(e: IndexError) -> Self {
        CoreError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = VectorError::Empty("x").into();
        assert!(e.to_string().contains("vector error"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = EmbeddingError::EmptyCorpus.into();
        assert!(e.to_string().contains("embedding error"));
        let e: CoreError = StorageError::ColumnNotFound("c".into()).into();
        assert!(e.to_string().contains("storage error"));
        let e: CoreError = RelationalError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("relational error"));
        let e: CoreError = IndexError::EmptyIndex.into();
        assert!(e.to_string().contains("index error"));
        assert!(CoreError::InvalidInput("bad".into())
            .to_string()
            .contains("bad"));
        assert!(CoreError::Unsupported("nope".into())
            .to_string()
            .contains("nope"));
        assert!(std::error::Error::source(&CoreError::Unsupported("x".into())).is_none());
    }
}
