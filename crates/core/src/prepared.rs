//! Prepared queries: plan once, execute many (and bind many).
//!
//! [`PreparedQuery`] is the product of
//! [`crate::session::ContextJoinSession::prepare`]: the logical plan has been
//! optimised and lowered to a [`PhysicalPlan`] exactly once, and every
//! [`PreparedQuery::run`] re-executes that same physical plan against the
//! session's shared state — the `Arc`-shared
//! [`cej_relational::physical::ModelRegistry`], the per-model embedding
//! caches, and the persistent HNSW indexes of the
//! [`crate::index_manager::IndexManager`].  A warm run of an index join
//! therefore performs **zero model calls** (for unchanged inputs) and **zero
//! HNSW construction**, which is the "plan-once / execute-many" contract a
//! server workload issuing many small joins needs.
//!
//! Two observability/parameterisation extensions ride on that contract:
//!
//! * [`PreparedQuery::explain_analyze`] executes the plan and renders the
//!   planner's estimated rows next to the recorded actual rows of every
//!   operator (with per-operator q-errors) — the feedback loop that shows
//!   whether the statistics the plan was costed with still hold;
//! * [`PreparedQuery::bind_threshold`] is the `sim_gte(?)`-style bind
//!   parameter: it re-binds every similarity threshold in the *already
//!   planned* operator tree and re-estimates the affected output
//!   cardinalities, so one prepared query serves a whole family of
//!   thresholds without re-running the optimizer, planner, or advisor.

use std::sync::Arc;

use cej_obs::{AttrValue, SpanId, Trace};
use cej_relational::physical::ModelRegistry;
use cej_relational::{LogicalPlan, SimilarityPredicate};

use crate::batch_exec::ExecMode;
use crate::error::CoreError;
use crate::executor::{ExecContext, ExecOutcome};
use crate::ivm::IvmPolicy;
use crate::physical_plan::{InnerInput, PhysicalPlan};
use crate::planner::threshold_selectivity;
use crate::session::{ContextJoinSession, ExecutionReport};
use crate::Result;

/// The outcome of [`PreparedQuery::explain_analyze`]: the rendered
/// estimated-vs-actual operator tree plus the full execution report it was
/// measured from.
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// The operator tree with per-operator estimated rows, actual rows, and
    /// q-errors.
    pub text: String,
    /// The execution report of the run that produced the actuals.
    pub report: ExecutionReport,
}

impl std::fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A query that has been optimised and physically planned once and can be
/// executed any number of times — including concurrently from many threads,
/// since `run` takes `&self` and all session state is internally
/// synchronised.
///
/// Holds its own handle onto the shared session state (catalog, caches,
/// indexes) plus the registry snapshot it was planned against.  The
/// lifetime parameter preserves the original borrow-scoped API (dropping
/// the prepared query before re-registering tables); a server that needs
/// to *store* prepared statements unbinds it with
/// [`PreparedQuery::detach`].
pub struct PreparedQuery<'s> {
    session: ContextJoinSession,
    registry: Arc<ModelRegistry>,
    optimized: LogicalPlan,
    physical: PhysicalPlan,
    /// Wall time of the three planning phases (rewrite, join ordering,
    /// physical lowering) in microseconds, measured once at `prepare` time
    /// and replayed as `phase.*` spans on every traced run.
    plan_micros: [u64; 3],
    _borrow: std::marker::PhantomData<&'s ContextJoinSession>,
}

impl<'s> PreparedQuery<'s> {
    pub(crate) fn new(
        session: ContextJoinSession,
        registry: Arc<ModelRegistry>,
        optimized: LogicalPlan,
        physical: PhysicalPlan,
        plan_micros: [u64; 3],
    ) -> Self {
        Self {
            session,
            registry,
            optimized,
            physical,
            plan_micros,
            _borrow: std::marker::PhantomData,
        }
    }

    /// Unbinds the prepared query from the session borrow, returning an
    /// owned (`'static`) statement that shares the same session state.
    /// This is what a serving layer stores in its statement cache: the
    /// session lives on in the handle inside.
    pub fn detach(self) -> PreparedQuery<'static> {
        PreparedQuery {
            session: self.session,
            registry: self.registry,
            optimized: self.optimized,
            physical: self.physical,
            plan_micros: self.plan_micros,
            _borrow: std::marker::PhantomData,
        }
    }

    /// The session handle this query executes against (shared state).
    pub(crate) fn exec_session(&self) -> &ContextJoinSession {
        &self.session
    }

    /// The registry snapshot this query was planned against.
    pub(crate) fn exec_registry(&self) -> Arc<ModelRegistry> {
        self.registry.clone()
    }

    /// Turns this prepared query into a delta-maintained
    /// [`crate::ivm::StandingQuery`] with the default [`IvmPolicy`]: one
    /// seeding run now, then every
    /// [`crate::session::ContextJoinSession::apply_delta`] that touches one
    /// of its tables updates the maintained result incrementally (or by a
    /// full re-run when propagation would not be exact) and queues a
    /// [`crate::ivm::ResultDelta`] frame.
    ///
    /// # Errors
    /// Propagates execution errors from the seeding run.
    pub fn subscribe(self) -> Result<crate::ivm::StandingQuery> {
        self.subscribe_with(IvmPolicy::default())
    }

    /// [`PreparedQuery::subscribe`] with explicit maintenance tunables.
    ///
    /// # Errors
    /// Propagates execution errors from the seeding run.
    pub fn subscribe_with(self, policy: IvmPolicy) -> Result<crate::ivm::StandingQuery> {
        crate::ivm::subscribe(self.detach(), policy)
    }

    /// The optimised logical plan this query was planned from.
    pub fn optimized_plan(&self) -> &LogicalPlan {
        &self.optimized
    }

    /// The physical plan executed by every [`PreparedQuery::run`].
    pub fn physical_plan(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// FNV-1a fingerprint of the physical operator tree.  Two prepared
    /// queries with the same fingerprint execute the same plan, so standing
    /// queries over them emit identical frame content for the same table
    /// change — the property the serving layer's DELTA fan-out cache keys
    /// on (together with [`crate::ivm::ResultDelta::seq`]).
    pub fn fingerprint(&self) -> u64 {
        let rendered = format!("{:?}", self.physical);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in rendered.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Renders the physical operator tree with the planner's access-path
    /// choice and cost estimates — available before (and unchanged by)
    /// execution.
    pub fn explain(&self) -> String {
        self.physical.explain()
    }

    /// Executes the plan.  Repeated calls reuse the optimised plan, the
    /// shared model registry, memoised embeddings, and persistent indexes.
    ///
    /// # Errors
    /// Propagates catalog, evaluation, embedding, index, and join errors.
    pub fn run(&self) -> Result<ExecutionReport> {
        self.run_with_pool(*cej_exec::ExecPool::global())
    }

    /// [`PreparedQuery::run`] with an explicit worker-pool budget, instead of
    /// the process-wide `CEJ_THREADS` default.  Results are byte-identical
    /// across budgets (only timing and scheduler counters differ) — this is
    /// how equivalence tests sweep thread counts inside one process.
    ///
    /// # Errors
    /// Propagates the same errors as [`PreparedQuery::run`].
    pub fn run_with_pool(&self, pool: cej_exec::ExecPool) -> Result<ExecutionReport> {
        self.run_traced_with(&Trace::disabled(), pool, ExecMode::default())
    }

    /// [`PreparedQuery::run`] recording into a caller-provided
    /// [`cej_obs::Trace`].  On a sampled trace this attaches the plan
    /// fingerprint, the `phase.rewrite`/`phase.order`/`phase.lower` planning
    /// spans (measured at `prepare` time), a `phase.execute` span carrying
    /// run statistics, and one span per physical operator with its actual
    /// rows, morsels, and inclusive wall time.  Results are byte-identical
    /// with tracing on or off: spans are synthesised *after* the run from
    /// the per-operator metrics the executor records unconditionally, so
    /// the execution path itself never branches on the trace.
    ///
    /// # Errors
    /// Propagates the same errors as [`PreparedQuery::run`].
    pub fn run_traced(&self, trace: &Trace) -> Result<ExecutionReport> {
        self.run_traced_with(trace, *cej_exec::ExecPool::global(), ExecMode::default())
    }

    /// [`PreparedQuery::run_traced`] with an explicit pool budget and
    /// [`ExecMode`] — how tests assert span-tree shape under both the row
    /// and the batch executor.
    ///
    /// # Errors
    /// Propagates the same errors as [`PreparedQuery::run`].
    pub fn run_traced_with(
        &self,
        trace: &Trace,
        pool: cej_exec::ExecPool,
        mode: ExecMode,
    ) -> Result<ExecutionReport> {
        let ctx = ExecContext {
            catalog: self.session.catalog(),
            registry: &self.registry,
            embeddings: self.session.embedding_caches(),
            indexes: self.session.index_manager(),
            pool,
        };
        let started = std::time::Instant::now();
        let outcome = self.physical.execute_with(&ctx, mode)?;
        let elapsed_us = started.elapsed().as_micros() as u64;
        let trace_id = if trace.is_sampled() {
            self.annotate_trace(trace, &outcome, elapsed_us);
            trace.id()
        } else if cej_obs::slow_query_us().is_some_and(|limit| elapsed_us >= limit) {
            // Slow queries are captured even when sampling skipped them:
            // the per-operator metrics were recorded unconditionally, so
            // the full trace is reconstructed post-hoc at zero cost to the
            // fast path (one `Instant` and this comparison).
            let forced = Trace::forced("slow query");
            self.annotate_trace(&forced, &outcome, elapsed_us);
            forced.finish()
        } else {
            None
        };
        Ok(ExecutionReport {
            table: outcome.table,
            optimized_plan: self.optimized.clone(),
            join_stats: outcome.stats.join_stats,
            embedding_stats: outcome.stats.embedding_stats,
            access_path: outcome.stats.access_path,
            matched_pairs: outcome.stats.matched_pairs,
            index_builds: outcome.stats.index_builds,
            index_reuses: outcome.stats.index_reuses,
            index_evictions: outcome.stats.index_evictions,
            operator_rows: outcome.operator_rows,
            operator_micros: outcome.operator_micros,
            operator_morsels: outcome.operator_morsels,
            scheduler: outcome.stats.scheduler,
            trace_id,
        })
    }

    /// Converts a finished run's unconditionally-recorded metrics into
    /// spans: planning phases, the execute phase with run-level attributes,
    /// and the per-operator tree.
    fn annotate_trace(&self, trace: &Trace, outcome: &ExecOutcome, elapsed_us: u64) {
        trace.set_fingerprint(self.fingerprint());
        let root = trace.root();
        let [rewrite_us, order_us, lower_us] = self.plan_micros;
        trace.add_span(root, "phase.rewrite", 0, rewrite_us, Vec::new());
        trace.add_span(root, "phase.order", 0, order_us, Vec::new());
        trace.add_span(root, "phase.lower", 0, lower_us, Vec::new());
        let stats = &outcome.stats;
        let mut attrs: Vec<(&'static str, AttrValue)> = vec![
            ("rows", outcome.table.num_rows().into()),
            ("matched_pairs", stats.matched_pairs.into()),
            ("index_builds", stats.index_builds.into()),
            ("index_reuses", stats.index_reuses.into()),
            ("index_evictions", stats.index_evictions.into()),
            ("embed_calls", stats.embedding_stats.model_calls.into()),
            ("embed_hits", stats.embedding_stats.cache_hits.into()),
            ("pool_tasks", stats.scheduler.tasks_executed.into()),
            ("pool_steals", stats.scheduler.steals.into()),
        ];
        if let Some(path) = stats.access_path {
            attrs.push(("access_path", format!("{path:?}").into()));
        }
        let execute = trace.add_span(root, "phase.execute", 0, elapsed_us, attrs);
        let mut cursor = 0usize;
        add_operator_spans(
            trace,
            execute,
            &self.physical,
            &outcome.operator_rows,
            &outcome.operator_micros,
            &outcome.operator_morsels,
            &mut cursor,
        );
    }

    /// Executes the plan and renders the operator tree with estimated and
    /// *actual* rows side by side — `EXPLAIN ANALYZE`.  The actual counts are
    /// the per-operator outputs recorded by the executor during this very
    /// run ([`ExecutionReport::operator_rows`]), and each operator carries
    /// its measured wall time in microseconds (inclusive of its inputs;
    /// morsel-parallel fused chains report the chain's wall time on every
    /// fused operator).
    ///
    /// # Errors
    /// Propagates the same errors as [`PreparedQuery::run`].
    pub fn explain_analyze(&self) -> Result<ExplainAnalyze> {
        self.explain_analyze_traced(&Trace::disabled())
    }

    /// [`PreparedQuery::explain_analyze`] recording the measuring run into
    /// a caller-provided [`cej_obs::Trace`] — the serving layer's `ANALYZE`
    /// path, so an analysed query also shows up under `TRACE LAST`.
    ///
    /// # Errors
    /// Propagates the same errors as [`PreparedQuery::run`].
    pub fn explain_analyze_traced(&self, trace: &Trace) -> Result<ExplainAnalyze> {
        let report = self.run_traced(trace)?;
        let mut text = self
            .physical
            .explain_analyze_timed(&report.operator_rows, &report.operator_micros);
        let pool = &report.scheduler;
        text.push_str(&format!(
            "scheduler: tasks={} steals={} injected={} wakeups={} queue_depth={} workers={}\n",
            pool.tasks_executed,
            pool.steals,
            pool.injected,
            pool.wakeups,
            pool.queue_depth,
            pool.workers
        ));
        Ok(ExplainAnalyze { text, report })
    }

    /// Re-binds the plan's similarity threshold to `threshold`, returning a
    /// new prepared query that shares this one's session state.  No
    /// optimisation, lowering, or access-path selection is repeated — the
    /// affected output-cardinality estimates are recomputed bottom-up from
    /// the new threshold, through every operator of the (possibly
    /// DP-reordered) tree (the advisor's scan-vs-probe costs are invariant in
    /// the threshold *value*, so the planned access path stays correct).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidInput`] when the plan has no threshold
    /// predicate to bind (e.g. a pure top-k join or a join-less plan), and
    /// [`CoreError::AmbiguousThresholdBind`] on a multi-ejoin plan with more
    /// than one `sim_gte` join — use [`PreparedQuery::bind_threshold_at`] to
    /// name the target.
    pub fn bind_threshold(&self, threshold: f32) -> Result<PreparedQuery<'s>> {
        let candidates = self.threshold_join_count();
        if candidates > 1 {
            return Err(CoreError::AmbiguousThresholdBind(candidates));
        }
        self.bind(threshold, None)
    }

    /// Re-binds the threshold of one specific `sim_gte` ejoin: `index` counts
    /// the plan's threshold joins in the order [`PreparedQuery::explain`]
    /// renders them (outermost first), starting at 0.  Top-k joins are not
    /// counted.  Cardinality estimates re-derive through the whole tree, so
    /// enclosing hash joins and ejoins above the re-bound one reflect it.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidInput`] when `index` is out of range.
    pub fn bind_threshold_at(&self, index: usize, threshold: f32) -> Result<PreparedQuery<'s>> {
        let candidates = self.threshold_join_count();
        if index >= candidates {
            return Err(CoreError::InvalidInput(format!(
                "threshold join index {index} out of range: plan has \
                 {candidates} sim_gte ejoin(s)"
            )));
        }
        self.bind(threshold, Some(index))
    }

    /// Number of `sim_gte` (threshold) ejoins in the plan, in explain order.
    pub fn threshold_join_count(&self) -> usize {
        self.physical
            .join_nodes()
            .iter()
            .filter(|n| matches!(n.predicate, SimilarityPredicate::Threshold(_)))
            .count()
    }

    fn bind(&self, threshold: f32, target: Option<usize>) -> Result<PreparedQuery<'s>> {
        let mut physical = self.physical.clone();
        let mut next = 0usize;
        let bound = rebind_physical(&mut physical, threshold, target, &mut next);
        if bound == 0 {
            return Err(CoreError::InvalidInput(
                "no sim_gte threshold predicate to bind in this plan".into(),
            ));
        }
        let mut optimized = self.optimized.clone();
        let mut next = 0usize;
        rebind_logical(&mut optimized, threshold, target, &mut next);
        Ok(PreparedQuery::new(
            self.session.clone(),
            self.registry.clone(),
            optimized,
            physical,
            self.plan_micros,
        ))
    }
}

/// Synthesises one span per physical operator under `parent`, consuming
/// pre-order slots from the executor's metric vectors (the same slot order
/// `explain_analyze` renders in).  A persistent-index inner side executes
/// no operator slot; it is rendered as a zero-duration `IndexProbe` span.
fn add_operator_spans(
    trace: &Trace,
    parent: SpanId,
    plan: &PhysicalPlan,
    rows: &[u64],
    micros: &[u64],
    morsels: &[u64],
    cursor: &mut usize,
) {
    let slot = *cursor;
    *cursor += 1;
    let mut attrs: Vec<(&'static str, AttrValue)> = Vec::new();
    if let Some(r) = rows.get(slot) {
        attrs.push(("rows", (*r).into()));
    }
    if let Some(m) = morsels.get(slot) {
        attrs.push(("morsels", (*m).into()));
    }
    let dur_us = micros.get(slot).copied().unwrap_or(0);
    let id = trace.add_span(parent, &operator_span_name(plan), 0, dur_us, attrs);
    match plan {
        PhysicalPlan::TableScan { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Embed { input, .. }
        | PhysicalPlan::Rename { input, .. } => {
            add_operator_spans(trace, id, input, rows, micros, morsels, cursor);
        }
        PhysicalPlan::Join(node) => {
            add_operator_spans(trace, id, &node.outer, rows, micros, morsels, cursor);
            match &node.inner {
                InnerInput::Plan(inner) => {
                    add_operator_spans(trace, id, inner, rows, micros, morsels, cursor);
                }
                InnerInput::Indexed(indexed) => {
                    trace.add_span(
                        id,
                        &format!("IndexProbe {}.{}", indexed.key.table, indexed.key.column),
                        0,
                        0,
                        vec![("model", indexed.key.model.clone().into())],
                    );
                }
            }
        }
        PhysicalPlan::HashJoin(node) => {
            add_operator_spans(trace, id, &node.left, rows, micros, morsels, cursor);
            add_operator_spans(trace, id, &node.right, rows, micros, morsels, cursor);
        }
    }
}

/// Short operator label for a synthesised span.
fn operator_span_name(plan: &PhysicalPlan) -> String {
    match plan {
        PhysicalPlan::TableScan { table, .. } => format!("TableScan {table}"),
        PhysicalPlan::Filter { .. } => "Filter".to_string(),
        PhysicalPlan::Project { .. } => "Project".to_string(),
        PhysicalPlan::Embed { .. } => "Embed".to_string(),
        PhysicalPlan::Rename { .. } => "Rename".to_string(),
        PhysicalPlan::HashJoin(node) => {
            format!("HashJoin {}={}", node.left_column, node.right_column)
        }
        PhysicalPlan::Join(node) => format!(
            "{} {}~{}",
            node.op.name(),
            node.left_column,
            node.right_column
        ),
    }
}

/// Rewrites `Threshold` join predicates in the physical tree and re-estimates
/// output cardinalities bottom-up, so operators *above* a re-bound join
/// (filters on `similarity`, projections, enclosing joins) also reflect the
/// new threshold.  Estimated costs keep their plan-time values — binding
/// never re-runs the advisor.
///
/// `target` selects which threshold ejoin to rebind, counted pre-order (the
/// order `explain` renders them) via `next`; `None` rebinds all of them.
/// Returns the number of predicates re-bound.
fn rebind_physical(
    plan: &mut PhysicalPlan,
    threshold: f32,
    target: Option<usize>,
    next: &mut usize,
) -> usize {
    match plan {
        PhysicalPlan::TableScan { .. } => 0,
        PhysicalPlan::Filter {
            input,
            selectivity,
            est,
            ..
        } => {
            let bound = rebind_physical(input, threshold, target, next);
            est.rows = input.estimate().rows * *selectivity;
            bound
        }
        PhysicalPlan::Project { input, est, .. }
        | PhysicalPlan::Embed { input, est, .. }
        | PhysicalPlan::Rename { input, est, .. } => {
            let bound = rebind_physical(input, threshold, target, next);
            est.rows = input.estimate().rows;
            bound
        }
        PhysicalPlan::HashJoin(node) => {
            // A hash join's output estimate is (input product) / key-domain;
            // the key domain is threshold-invariant, so scale the plan-time
            // estimate by the change in the input-cardinality product.
            let old = node.left.estimate().rows.max(1.0) * node.right.estimate().rows.max(1.0);
            let mut bound = rebind_physical(&mut node.left, threshold, target, next);
            bound += rebind_physical(&mut node.right, threshold, target, next);
            let new = node.left.estimate().rows.max(1.0) * node.right.estimate().rows.max(1.0);
            node.est.rows *= new / old;
            bound
        }
        PhysicalPlan::Join(node) => {
            let targeted = if matches!(node.predicate, SimilarityPredicate::Threshold(_)) {
                let index = *next;
                *next += 1;
                target.is_none() || target == Some(index)
            } else {
                false
            };
            let mut bound = rebind_physical(&mut node.outer, threshold, target, next);
            let inner_rows = match &mut node.inner {
                InnerInput::Plan(inner) => {
                    bound += rebind_physical(inner, threshold, target, next);
                    inner.estimate().rows
                }
                InnerInput::Indexed(ii) => ii.est_rows,
            };
            if targeted {
                node.predicate = SimilarityPredicate::Threshold(threshold);
                bound += 1;
            }
            // re-estimate at bind time with the planner's own formulas: the
            // (possibly re-bound) threshold model, or top-k over the
            // (possibly re-estimated) outer side
            node.est.rows = match node.predicate {
                SimilarityPredicate::TopK(k) => node.outer.estimate().rows * k as f64,
                SimilarityPredicate::Threshold(t) => {
                    node.outer.estimate().rows * inner_rows * threshold_selectivity(t)
                }
            };
            bound
        }
    }
}

/// Mirrors the threshold rebinding on the optimised logical plan (kept for
/// reporting consistency — `ExecutionReport::optimized_plan`).  The same
/// pre-order counter as [`rebind_physical`] keeps the logical and physical
/// target indexes aligned: lowering is structural, so the N-th threshold
/// ejoin pre-order is the same join in both trees.
fn rebind_logical(plan: &mut LogicalPlan, threshold: f32, target: Option<usize>, next: &mut usize) {
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Selection { input, .. }
        | LogicalPlan::Projection { input, .. }
        | LogicalPlan::Embed { input, .. }
        | LogicalPlan::Rename { input, .. } => rebind_logical(input, threshold, target, next),
        LogicalPlan::Join { left, right, .. } => {
            rebind_logical(left, threshold, target, next);
            rebind_logical(right, threshold, target, next);
        }
        LogicalPlan::EJoin {
            left,
            right,
            predicate,
            ..
        } => {
            let targeted = if matches!(predicate, SimilarityPredicate::Threshold(_)) {
                let index = *next;
                *next += 1;
                target.is_none() || target == Some(index)
            } else {
                false
            };
            rebind_logical(left, threshold, target, next);
            rebind_logical(right, threshold, target, next);
            if targeted {
                *predicate = SimilarityPredicate::Threshold(threshold);
            }
        }
    }
}

impl Clone for PreparedQuery<'_> {
    fn clone(&self) -> Self {
        Self {
            session: self.session.clone(),
            registry: self.registry.clone(),
            optimized: self.optimized.clone(),
            physical: self.physical.clone(),
            plan_micros: self.plan_micros,
            _borrow: std::marker::PhantomData,
        }
    }
}

impl std::fmt::Debug for PreparedQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("physical", &self.physical)
            .finish_non_exhaustive()
    }
}
