//! Prepared queries: plan once, execute many.
//!
//! [`PreparedQuery`] is the product of
//! [`crate::session::ContextJoinSession::prepare`]: the logical plan has been
//! optimised and lowered to a [`PhysicalPlan`] exactly once, and every
//! [`PreparedQuery::run`] re-executes that same physical plan against the
//! session's shared state — the `Arc`-shared
//! [`cej_relational::physical::ModelRegistry`], the per-model embedding
//! caches, and the persistent HNSW indexes of the
//! [`crate::index_manager::IndexManager`].  A warm run of an index join
//! therefore performs **zero model calls** (for unchanged inputs) and **zero
//! HNSW construction**, which is the "plan-once / execute-many" contract a
//! server workload issuing many small joins needs.

use std::sync::Arc;

use cej_relational::physical::ModelRegistry;
use cej_relational::LogicalPlan;

use crate::executor::ExecContext;
use crate::physical_plan::PhysicalPlan;
use crate::session::{ContextJoinSession, ExecutionReport};
use crate::Result;

/// A query that has been optimised and physically planned once and can be
/// executed any number of times.
///
/// Holds a shared (`Arc`) handle on the session's model registry and borrows
/// the session for its catalog and caches; dropping the prepared query
/// releases the borrow (e.g. before re-registering tables).
pub struct PreparedQuery<'s> {
    session: &'s ContextJoinSession,
    registry: Arc<ModelRegistry>,
    optimized: LogicalPlan,
    physical: PhysicalPlan,
}

impl<'s> PreparedQuery<'s> {
    pub(crate) fn new(
        session: &'s ContextJoinSession,
        registry: Arc<ModelRegistry>,
        optimized: LogicalPlan,
        physical: PhysicalPlan,
    ) -> Self {
        Self {
            session,
            registry,
            optimized,
            physical,
        }
    }

    /// The optimised logical plan this query was planned from.
    pub fn optimized_plan(&self) -> &LogicalPlan {
        &self.optimized
    }

    /// The physical plan executed by every [`PreparedQuery::run`].
    pub fn physical_plan(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// Renders the physical operator tree with the planner's access-path
    /// choice and cost estimates — available before (and unchanged by)
    /// execution.
    pub fn explain(&self) -> String {
        self.physical.explain()
    }

    /// Executes the plan.  Repeated calls reuse the optimised plan, the
    /// shared model registry, memoised embeddings, and persistent indexes.
    ///
    /// # Errors
    /// Propagates catalog, evaluation, embedding, index, and join errors.
    pub fn run(&self) -> Result<ExecutionReport> {
        let ctx = ExecContext {
            catalog: self.session.catalog(),
            registry: &self.registry,
            embeddings: self.session.embedding_caches(),
            indexes: self.session.index_manager(),
        };
        let outcome = self.physical.execute(&ctx)?;
        Ok(ExecutionReport {
            table: outcome.table,
            optimized_plan: self.optimized.clone(),
            join_stats: outcome.stats.join_stats,
            embedding_stats: outcome.stats.embedding_stats,
            access_path: outcome.stats.access_path,
            matched_pairs: outcome.stats.matched_pairs,
            index_builds: outcome.stats.index_builds,
            index_reuses: outcome.stats.index_reuses,
        })
    }
}

impl std::fmt::Debug for PreparedQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("physical", &self.physical)
            .finish_non_exhaustive()
    }
}
