//! The index-probe join over an HNSW vector index.
//!
//! This operator reproduces the vector-database alternative the paper
//! evaluates against (Section IV-B, VI-E): build an HNSW index on the inner
//! relation's embeddings, then answer the join by probing the index once per
//! (pre-filtered) outer tuple.
//!
//! Characteristics carried over from the paper's analysis (Table I):
//!
//! * results are **approximate** (recall depends on the build parameters),
//! * the probe must specify a **top-k**; a range predicate
//!   (`similarity > t`) is implemented by probing top-k and post-filtering,
//!   which is exactly the workaround the paper describes and measures in
//!   Figure 17,
//! * relational **pre-filtering** excludes tuples from the result but not
//!   from the graph traversal, so low selectivities do not reduce probe cost.

use std::time::Instant;

use cej_embedding::Embedder;
use cej_index::{HnswIndex, HnswParams};
use cej_relational::SimilarityPredicate;
use cej_storage::SelectionBitmap;
use cej_vector::Matrix;

use crate::error::CoreError;
use crate::result::{JoinPair, JoinResult, JoinStats};
use crate::Result;

use super::{check_joinable, check_predicate, embed_all};

/// Configuration of the index join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexJoinConfig {
    /// HNSW build/search parameters (the paper's `Hi` / `Lo` presets live on
    /// [`HnswParams`]).
    pub params: HnswParams,
    /// The `k` used for probes when the join predicate is a threshold
    /// (range) predicate; the paper uses `k = 32` for Figure 17.
    pub range_probe_k: usize,
}

impl Default for IndexJoinConfig {
    fn default() -> Self {
        Self {
            params: HnswParams::low_recall(),
            range_probe_k: 32,
        }
    }
}

impl IndexJoinConfig {
    /// Uses the paper's high-recall index configuration.
    pub fn high_recall() -> Self {
        Self {
            params: HnswParams::high_recall(),
            range_probe_k: 32,
        }
    }

    /// Uses the paper's low-recall index configuration.
    pub fn low_recall() -> Self {
        Self {
            params: HnswParams::low_recall(),
            range_probe_k: 32,
        }
    }

    /// Sets the probe `k` used for threshold predicates.
    pub fn with_range_probe_k(mut self, k: usize) -> Self {
        self.range_probe_k = k.max(1);
        self
    }
}

/// The index-probe join operator.
#[derive(Debug, Clone)]
pub struct IndexJoin {
    config: IndexJoinConfig,
}

impl IndexJoin {
    /// Creates the operator.
    pub fn new(config: IndexJoinConfig) -> Self {
        Self { config }
    }

    /// The operator configuration.
    pub fn config(&self) -> &IndexJoinConfig {
        &self.config
    }

    /// Builds an HNSW index over the inner relation's embeddings.  Exposed
    /// separately so benchmarks can exclude (or measure) build time, as the
    /// paper does.
    ///
    /// # Errors
    /// Propagates index construction errors.
    pub fn build_index(&self, inner: &Matrix) -> Result<HnswIndex> {
        HnswIndex::build(inner.clone(), self.config.params).map_err(CoreError::from)
    }

    /// Joins two string inputs end-to-end: embeds both sides, builds the
    /// index on the inner side, probes once per outer tuple.
    ///
    /// # Errors
    /// Propagates embedding, build, and probe errors.
    pub fn join(
        &self,
        model: &dyn Embedder,
        left: &[String],
        right: &[String],
        predicate: SimilarityPredicate,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        let start = Instant::now();
        let left_matrix = embed_all(model, left)?;
        let right_matrix = embed_all(model, right)?;
        check_joinable(&left_matrix, &right_matrix)?;
        let index = self.build_index(&right_matrix)?;
        let mut result = self.probe_join(&left_matrix, &index, predicate, None, None)?;
        result.stats.model_calls = (left.len() + right.len()) as u64;
        result.stats.elapsed = start.elapsed();
        Ok(result)
    }

    /// Joins a matrix of outer embeddings against a pre-built index, with
    /// optional pre-filters on either side.  Outer pair offsets refer to the
    /// original outer row numbering; inner offsets refer to the index's row
    /// numbering (which is the inner relation's original numbering).
    ///
    /// # Errors
    /// Propagates probe errors (dimension mismatch, bad filter lengths).
    pub fn probe_join(
        &self,
        outer: &Matrix,
        index: &HnswIndex,
        predicate: SimilarityPredicate,
        outer_filter: Option<&SelectionBitmap>,
        inner_filter: Option<&SelectionBitmap>,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        if let Some(f) = outer_filter {
            if f.len() != outer.rows() {
                return Err(CoreError::InvalidInput(format!(
                    "outer filter length {} does not match outer rows {}",
                    f.len(),
                    outer.rows()
                )));
            }
        }
        let start = Instant::now();
        let (k, threshold) = match predicate {
            SimilarityPredicate::TopK(k) => (k, None),
            SimilarityPredicate::Threshold(t) => (self.config.range_probe_k, Some(t)),
        };
        let mut stats = JoinStats::default();
        let mut pairs = Vec::new();
        for row in 0..outer.rows() {
            if let Some(f) = outer_filter {
                if !f.is_selected(row) {
                    continue;
                }
            }
            let query = outer.row(row).map_err(CoreError::from)?;
            let search = index
                .search(query, k, inner_filter)
                .map_err(CoreError::from)?;
            stats.probe_stats.merge(&search.stats);
            stats.pairs_compared += search.stats.distance_computations;
            for neighbor in search.neighbors {
                if let Some(t) = threshold {
                    if neighbor.score < t {
                        continue;
                    }
                }
                pairs.push(JoinPair::new(row, neighbor.id, neighbor.score));
            }
        }
        stats.peak_buffer_bytes =
            index.memory_bytes() + pairs.len() * std::mem::size_of::<JoinPair>();
        stats.elapsed = start.elapsed();
        Ok(JoinResult { pairs, stats })
    }
}

impl Default for IndexJoin {
    fn default() -> Self {
        Self::new(IndexJoinConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::tensor_join::{TensorJoin, TensorJoinConfig};
    use cej_embedding::{FastTextConfig, FastTextModel};
    use cej_vector::normalize_matrix_rows;
    use cej_workload::clustered_matrix;

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn strings(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    fn test_config() -> IndexJoinConfig {
        IndexJoinConfig {
            params: HnswParams::tiny(),
            range_probe_k: 8,
        }
    }

    #[test]
    fn topk_probe_join_finds_cluster_members() {
        let (vectors, labels) = clustered_matrix(200, 16, 4, 0.05, 3);
        let (outer, outer_labels) = clustered_matrix(20, 16, 4, 0.05, 3);
        let join = IndexJoin::new(test_config());
        let index = join.build_index(&vectors).unwrap();
        let result = join
            .probe_join(&outer, &index, SimilarityPredicate::TopK(5), None, None)
            .unwrap();
        assert_eq!(result.len(), 20 * 5);
        // the overwhelming majority of retrieved neighbours share the probe's cluster
        let correct = result
            .pairs
            .iter()
            .filter(|p| labels[p.right] == outer_labels[p.left])
            .count();
        assert!(correct as f64 / result.len() as f64 > 0.9);
        assert!(result.stats.probe_stats.distance_computations > 0);
    }

    #[test]
    fn threshold_predicate_post_filters_topk_probes() {
        let (vectors, _) = clustered_matrix(100, 16, 4, 0.05, 5);
        let (outer, _) = clustered_matrix(10, 16, 4, 0.05, 5);
        let join = IndexJoin::new(test_config());
        let index = join.build_index(&vectors).unwrap();
        let result = join
            .probe_join(
                &outer,
                &index,
                SimilarityPredicate::Threshold(0.95),
                None,
                None,
            )
            .unwrap();
        assert!(result.pairs.iter().all(|p| p.score >= 0.95));
        // a range predicate can never return more than range_probe_k per outer row
        for l in 0..10 {
            assert!(result.pairs.iter().filter(|p| p.left == l).count() <= 8);
        }
    }

    #[test]
    fn approximate_results_are_close_to_exact_scan() {
        let (vectors, _) = clustered_matrix(300, 16, 6, 0.05, 7);
        let (outer, _) = clustered_matrix(15, 16, 6, 0.05, 7);
        let join = IndexJoin::new(test_config());
        let index = join.build_index(&vectors).unwrap();
        let approx = join
            .probe_join(&outer, &index, SimilarityPredicate::TopK(3), None, None)
            .unwrap();
        let mut outer_n = outer.clone();
        let mut vectors_n = vectors.clone();
        normalize_matrix_rows(&mut outer_n);
        normalize_matrix_rows(&mut vectors_n);
        let exact = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&outer_n, &vectors_n, SimilarityPredicate::TopK(3))
            .unwrap();
        let exact_set: std::collections::HashSet<(usize, usize)> =
            exact.pair_indices().into_iter().collect();
        let hits = approx
            .pair_indices()
            .iter()
            .filter(|p| exact_set.contains(p))
            .count();
        let recall = hits as f64 / exact.len() as f64;
        assert!(recall > 0.8, "index join recall {recall} too low");
    }

    #[test]
    fn outer_filter_skips_probes_entirely() {
        let (vectors, _) = clustered_matrix(100, 16, 4, 0.05, 9);
        let (outer, _) = clustered_matrix(10, 16, 4, 0.05, 9);
        let join = IndexJoin::new(test_config());
        let index = join.build_index(&vectors).unwrap();
        let filter = SelectionBitmap::from_indices(10, &[0, 1]);
        let result = join
            .probe_join(
                &outer,
                &index,
                SimilarityPredicate::TopK(2),
                Some(&filter),
                None,
            )
            .unwrap();
        assert_eq!(result.len(), 4);
        assert!(result.pairs.iter().all(|p| p.left < 2));
        // only two probes were issued
        let unfiltered = join
            .probe_join(&outer, &index, SimilarityPredicate::TopK(2), None, None)
            .unwrap();
        assert!(
            result.stats.probe_stats.nodes_visited < unfiltered.stats.probe_stats.nodes_visited
        );
    }

    #[test]
    fn inner_filter_excludes_results_but_not_traversal() {
        let (vectors, _) = clustered_matrix(100, 16, 4, 0.05, 11);
        let (outer, _) = clustered_matrix(5, 16, 4, 0.05, 11);
        let join = IndexJoin::new(test_config());
        let index = join.build_index(&vectors).unwrap();
        let inner_filter = SelectionBitmap::from_indices(100, &(0..30).collect::<Vec<_>>());
        let result = join
            .probe_join(
                &outer,
                &index,
                SimilarityPredicate::TopK(3),
                None,
                Some(&inner_filter),
            )
            .unwrap();
        assert!(result.pairs.iter().all(|p| p.right < 30));
        // traversal cost is not reduced proportionally to the 70% exclusion
        let unfiltered = join
            .probe_join(&outer, &index, SimilarityPredicate::TopK(3), None, None)
            .unwrap();
        assert!(
            result.stats.probe_stats.distance_computations
                >= unfiltered.stats.probe_stats.distance_computations / 3
        );
    }

    #[test]
    fn end_to_end_string_join() {
        let join = IndexJoin::new(test_config());
        let left = strings(&["barbecue", "database"]);
        let right = strings(&["barbecues", "databases", "laptop", "vacation", "dbms"]);
        let result = join
            .join(&model(), &left, &right, SimilarityPredicate::TopK(1))
            .unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.stats.model_calls, 7);
        // barbecue -> barbecues, database -> databases
        assert!(result.pair_indices().contains(&(0, 0)));
        assert!(result.pair_indices().contains(&(1, 1)));
    }

    #[test]
    fn error_cases() {
        let join = IndexJoin::new(test_config());
        let (vectors, _) = clustered_matrix(20, 16, 2, 0.05, 13);
        let index = join.build_index(&vectors).unwrap();
        let (outer, _) = clustered_matrix(5, 16, 2, 0.05, 13);
        // bad outer filter length
        let bad = SelectionBitmap::all(3);
        assert!(join
            .probe_join(
                &outer,
                &index,
                SimilarityPredicate::TopK(1),
                Some(&bad),
                None
            )
            .is_err());
        // invalid predicate
        assert!(join
            .probe_join(&outer, &index, SimilarityPredicate::TopK(0), None, None)
            .is_err());
        // dimension mismatch
        let (wrong_dim, _) = clustered_matrix(5, 8, 2, 0.05, 13);
        assert!(join
            .probe_join(&wrong_dim, &index, SimilarityPredicate::TopK(1), None, None)
            .is_err());
        // empty inner relation cannot be indexed
        assert!(join.build_index(&Matrix::zeros(0, 16)).is_err());
    }

    #[test]
    fn config_presets() {
        assert_eq!(
            IndexJoinConfig::high_recall().params,
            HnswParams::high_recall()
        );
        assert_eq!(
            IndexJoinConfig::low_recall().params,
            HnswParams::low_recall()
        );
        assert_eq!(IndexJoinConfig::default().range_probe_k, 32);
        assert_eq!(
            IndexJoinConfig::default()
                .with_range_probe_k(0)
                .range_probe_k,
            1
        );
        assert_eq!(
            IndexJoin::default().config().params,
            HnswParams::low_recall()
        );
    }
}
