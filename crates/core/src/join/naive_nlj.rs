//! The naive context-enhanced nested-loop join.
//!
//! This operator is the paper's *negative baseline* (Section IV-A, Figure 8):
//! it extends a classic nested-loop join by calling the embedding model for
//! **both tuples of every pair**, incurring `|R| · |S|` model invocations.
//! It exists so the cost difference against the prefetch-optimised operators
//! can be measured and asserted exactly; real deployments should never use
//! it, which is precisely the paper's point about non-expert imperative
//! integrations of models and query engines.

use std::time::Instant;

use cej_embedding::Embedder;
use cej_relational::SimilarityPredicate;
use cej_vector::cosine_similarity;

use crate::error::CoreError;
use crate::result::{JoinPair, JoinResult, JoinStats};
use crate::Result;

use super::check_predicate;

/// The naive E-NLJ operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveNlJoin;

impl NaiveNlJoin {
    /// Creates the operator.
    pub fn new() -> Self {
        Self
    }

    /// Joins two string inputs by embedding *inside* the pair loop.
    ///
    /// Only threshold predicates are supported: top-k semantics require the
    /// per-left-row result collection that the optimised operators provide,
    /// and the paper only evaluates the naive formulation with a threshold.
    ///
    /// # Errors
    /// Returns [`CoreError::Unsupported`] for top-k predicates and
    /// [`CoreError::InvalidInput`] for invalid thresholds.
    pub fn join(
        &self,
        model: &dyn Embedder,
        left: &[String],
        right: &[String],
        predicate: SimilarityPredicate,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        let threshold = match predicate {
            SimilarityPredicate::Threshold(t) => t,
            SimilarityPredicate::TopK(_) => {
                return Err(CoreError::Unsupported(
                    "the naive E-NLJ only supports threshold predicates".into(),
                ))
            }
        };
        let start = Instant::now();
        let mut stats = JoinStats::default();
        let mut pairs = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                // The defining inefficiency: the model runs for every pair,
                // including repeated embeddings of the very same string.
                let lv = model.embed(l);
                let rv = model.embed(r);
                stats.model_calls += 2;
                stats.pairs_compared += 1;
                let score = cosine_similarity(lv.as_slice(), rv.as_slice());
                if score >= threshold {
                    pairs.push(JoinPair::new(i, j, score));
                }
            }
        }
        stats.peak_buffer_bytes = pairs.len() * std::mem::size_of::<JoinPair>();
        stats.elapsed = start.elapsed();
        Ok(JoinResult { pairs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_embedding::{CachedEmbedder, FastTextConfig, FastTextModel};

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn strings(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn identical_strings_always_match() {
        let result = NaiveNlJoin::new()
            .join(
                &model(),
                &strings(&["barbecue", "database"]),
                &strings(&["database", "barbecue"]),
                SimilarityPredicate::Threshold(0.99),
            )
            .unwrap();
        assert_eq!(result.pair_indices(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn model_call_count_is_quadratic() {
        let counted = CachedEmbedder::uncached(model());
        let left = strings(&["a", "b", "c"]);
        let right = strings(&["x", "y"]);
        let result = NaiveNlJoin::new()
            .join(&counted, &left, &right, SimilarityPredicate::Threshold(0.5))
            .unwrap();
        // 2 model calls per pair: |R| * |S| * 2
        assert_eq!(counted.stats().model_calls, 12);
        assert_eq!(result.stats.model_calls, 12);
        assert_eq!(result.stats.pairs_compared, 6);
    }

    #[test]
    fn low_threshold_matches_everything() {
        let result = NaiveNlJoin::new()
            .join(
                &model(),
                &strings(&["aa", "bb"]),
                &strings(&["cc", "dd"]),
                SimilarityPredicate::Threshold(-1.0),
            )
            .unwrap();
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn high_threshold_matches_nothing_dissimilar() {
        let result = NaiveNlJoin::new()
            .join(
                &model(),
                &strings(&["barbecue"]),
                &strings(&["spreadsheet"]),
                SimilarityPredicate::Threshold(0.999),
            )
            .unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn topk_unsupported() {
        let err = NaiveNlJoin::new().join(
            &model(),
            &strings(&["a"]),
            &strings(&["b"]),
            SimilarityPredicate::TopK(1),
        );
        assert!(matches!(err, Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn invalid_threshold_rejected() {
        let err = NaiveNlJoin::new().join(
            &model(),
            &strings(&["a"]),
            &strings(&["b"]),
            SimilarityPredicate::Threshold(f32::INFINITY - f32::INFINITY),
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_inputs_produce_empty_result() {
        let result = NaiveNlJoin::new()
            .join(
                &model(),
                &[],
                &strings(&["x"]),
                SimilarityPredicate::Threshold(0.0),
            )
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.model_calls, 0);
    }
}
