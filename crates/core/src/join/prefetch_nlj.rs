//! The prefetch-optimised (vectorised, parallel) nested-loop join.
//!
//! Two optimisations from the paper are combined here:
//!
//! * **Logical** (Section IV-A): every tuple is embedded exactly once before
//!   the pair loop (`(|R| + |S|) · M` model cost instead of `|R| · |S| · M`).
//! * **Physical** (Section V-A): the pair loop runs data-parallel over
//!   partitions of the outer relation, dispatches its inner dot products
//!   through a scalar or auto-vectorising kernel (the SIMD / NO-SIMD axis),
//!   and keeps the smaller relation in the inner loop for cache locality
//!   (the classic NLJ heuristic the paper re-validates in Figure 10).

use std::time::Instant;

use cej_embedding::Embedder;
use cej_exec::ExecPool;
use cej_relational::SimilarityPredicate;
use cej_vector::{norm::normalize_matrix_rows_with, Kernel, Matrix, TopK};

use crate::result::{JoinPair, JoinResult, JoinStats};
use crate::Result;

use super::{check_joinable, check_predicate, embed_all};

// Re-export used by callers configuring kernels.
pub use cej_vector::kernels::UNROLL_LANES;

/// Configuration of the prefetch NLJ operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NljConfig {
    /// Compute kernel (SIMD-style unrolled or scalar).
    pub kernel: Kernel,
    /// Number of worker threads over the outer relation.  Defaults to the
    /// shared execution layer's thread budget (`CEJ_THREADS`, or the
    /// machine's available parallelism).
    pub threads: usize,
    /// Whether to apply the "smaller relation as inner loop" heuristic
    /// automatically (Figure 10's ordering effect).
    pub auto_loop_order: bool,
}

impl Default for NljConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Unrolled,
            threads: cej_exec::default_threads(),
            auto_loop_order: true,
        }
    }
}

impl NljConfig {
    /// Sets the kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Disables the loop-order heuristic (used by the Figure 10 experiment to
    /// measure the effect of a bad ordering).
    pub fn without_loop_order_heuristic(mut self) -> Self {
        self.auto_loop_order = false;
        self
    }
}

/// The prefetch-optimised E-NLJ operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchNlJoin {
    config: NljConfig,
}

impl PrefetchNlJoin {
    /// Creates the operator with the given configuration.
    pub fn new(config: NljConfig) -> Self {
        Self { config }
    }

    /// The operator configuration.
    pub fn config(&self) -> &NljConfig {
        &self.config
    }

    /// Joins two string inputs: embeds each tuple once (prefetch), then runs
    /// the parallel pair-wise NLJ over the embedding matrices.
    ///
    /// # Errors
    /// Propagates embedding and predicate validation errors.
    pub fn join(
        &self,
        model: &dyn Embedder,
        left: &[String],
        right: &[String],
        predicate: SimilarityPredicate,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        let start = Instant::now();
        let left_matrix = embed_all(model, left)?;
        let right_matrix = embed_all(model, right)?;
        let mut result = self.join_matrices(&left_matrix, &right_matrix, predicate)?;
        result.stats.model_calls = (left.len() + right.len()) as u64;
        result.stats.elapsed = start.elapsed();
        Ok(result)
    }

    /// Joins two already-embedded inputs (one embedding per row).
    ///
    /// Embeddings are normalised internally so cosine similarity reduces to a
    /// dot product, matching the other operators.
    ///
    /// # Errors
    /// Returns [`crate::CoreError::InvalidInput`] for dimension mismatches.
    pub fn join_matrices(
        &self,
        left: &Matrix,
        right: &Matrix,
        predicate: SimilarityPredicate,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        check_joinable(left, right)?;
        let start = Instant::now();
        let kernel = self.config.kernel;

        let mut left_norm = left.clone();
        let mut right_norm = right.clone();
        normalize_matrix_rows_with(&mut left_norm, kernel);
        normalize_matrix_rows_with(&mut right_norm, kernel);

        // Loop-order heuristic: keep the smaller relation on the inner loop
        // so its vectors stay cache-resident across outer iterations.  When
        // we swap, the produced pair offsets are swapped back before
        // returning.
        let swap = self.config.auto_loop_order
            && matches!(predicate, SimilarityPredicate::Threshold(_))
            && right_norm.rows() > left_norm.rows();
        let (outer, inner) = if swap {
            (&right_norm, &left_norm)
        } else {
            (&left_norm, &right_norm)
        };

        let mut pairs = self.pairwise_loop(outer, inner, predicate, kernel);
        if swap {
            // A top-k predicate is defined per *left* row; when the loop
            // order was swapped the semantics would change, so the swap is
            // only applied for threshold predicates.
            for p in &mut pairs {
                std::mem::swap(&mut p.left, &mut p.right);
            }
        }

        let stats = JoinStats {
            model_calls: 0,
            pairs_compared: left.rows() as u64 * right.rows() as u64,
            peak_buffer_bytes: left_norm.bytes()
                + right_norm.bytes()
                + pairs.len() * std::mem::size_of::<JoinPair>(),
            elapsed: start.elapsed(),
            ..JoinStats::default()
        };
        Ok(JoinResult { pairs, stats })
    }

    /// The parallel pair-wise loop.  For top-k predicates the loop order is
    /// never swapped (see `join_matrices`), so `outer` rows are left rows.
    ///
    /// Outer rows are chunked onto the shared worker pool; chunk results are
    /// concatenated in row order, so the produced pair order is identical
    /// for every thread count.
    fn pairwise_loop(
        &self,
        outer: &Matrix,
        inner: &Matrix,
        predicate: SimilarityPredicate,
        kernel: Kernel,
    ) -> Vec<JoinPair> {
        let pool = ExecPool::new(self.config.threads);
        pool.parallel_chunks(outer.rows(), |rows| {
            Self::pairwise_range(outer, inner, rows.start, rows.end, predicate, kernel)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    fn pairwise_range(
        outer: &Matrix,
        inner: &Matrix,
        start: usize,
        end: usize,
        predicate: SimilarityPredicate,
        kernel: Kernel,
    ) -> Vec<JoinPair> {
        let mut pairs = Vec::new();
        for i in start..end {
            let outer_row = outer.row(i).expect("outer row in range");
            match predicate {
                SimilarityPredicate::Threshold(t) => {
                    for j in 0..inner.rows() {
                        let score = kernel.dot(outer_row, inner.row(j).expect("inner row"));
                        if score >= t {
                            pairs.push(JoinPair::new(i, j, score));
                        }
                    }
                }
                SimilarityPredicate::TopK(k) => {
                    let mut topk = TopK::new(k);
                    for j in 0..inner.rows() {
                        let score = kernel.dot(outer_row, inner.row(j).expect("inner row"));
                        topk.push(j, score);
                    }
                    for entry in topk.into_sorted() {
                        pairs.push(JoinPair::new(i, entry.id, entry.score));
                    }
                }
            }
        }
        pairs
    }
}

/// When a top-k predicate is used the loop-order heuristic is disabled; this
/// helper makes that policy explicit for the planner.
pub fn effective_config(config: NljConfig, predicate: &SimilarityPredicate) -> NljConfig {
    match predicate {
        SimilarityPredicate::TopK(_) => NljConfig {
            auto_loop_order: false,
            ..config
        },
        SimilarityPredicate::Threshold(_) => config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::naive_nlj::NaiveNlJoin;
    use cej_embedding::{CachedEmbedder, FastTextConfig, FastTextModel};
    use cej_workload::uniform_matrix;

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn strings(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn matches_naive_join_output() {
        let left = strings(&["barbecue", "database", "laptop"]);
        let right = strings(&["barbecues", "databases", "laptops", "barbecue"]);
        let naive = NaiveNlJoin::new()
            .join(&model(), &left, &right, SimilarityPredicate::Threshold(0.7))
            .unwrap();
        let prefetch = PrefetchNlJoin::new(NljConfig::default())
            .join(&model(), &left, &right, SimilarityPredicate::Threshold(0.7))
            .unwrap();
        assert_eq!(naive.pair_indices(), prefetch.pair_indices());
    }

    #[test]
    fn model_call_count_is_linear() {
        let counted = CachedEmbedder::new(model());
        let left = strings(&["a", "b", "c"]);
        let right = strings(&["x", "y"]);
        PrefetchNlJoin::new(NljConfig::default())
            .join(&counted, &left, &right, SimilarityPredicate::Threshold(0.5))
            .unwrap();
        assert_eq!(counted.stats().model_calls, 5);
    }

    #[test]
    fn scalar_and_simd_kernels_agree() {
        let left = uniform_matrix(20, 32, 1, true);
        let right = uniform_matrix(30, 32, 2, true);
        let simd = PrefetchNlJoin::new(NljConfig::default().with_kernel(Kernel::Unrolled))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.2))
            .unwrap();
        let scalar = PrefetchNlJoin::new(NljConfig::default().with_kernel(Kernel::Scalar))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.2))
            .unwrap();
        assert_eq!(simd.pair_indices(), scalar.pair_indices());
    }

    #[test]
    fn multi_threaded_matches_single_threaded() {
        let left = uniform_matrix(37, 16, 3, true);
        let right = uniform_matrix(23, 16, 4, true);
        let single = PrefetchNlJoin::new(NljConfig::default().with_threads(1))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.1))
            .unwrap();
        let multi = PrefetchNlJoin::new(NljConfig::default().with_threads(4))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.1))
            .unwrap();
        assert_eq!(single.pair_indices(), multi.pair_indices());
    }

    #[test]
    fn loop_order_heuristic_preserves_pair_orientation() {
        // right much larger than left: the heuristic swaps loops internally
        // but the reported (left, right) offsets must stay correct.
        let left = uniform_matrix(3, 8, 5, true);
        let right = uniform_matrix(50, 8, 6, true);
        let with_heuristic = PrefetchNlJoin::new(NljConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.3))
            .unwrap();
        let without = PrefetchNlJoin::new(NljConfig::default().without_loop_order_heuristic())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.3))
            .unwrap();
        assert_eq!(with_heuristic.pair_indices(), without.pair_indices());
        for (l, _r) in with_heuristic.pair_indices() {
            assert!(l < 3, "left offsets must index the left relation");
        }
    }

    #[test]
    fn topk_returns_k_pairs_per_left_row() {
        let left = uniform_matrix(5, 16, 7, true);
        let right = uniform_matrix(40, 16, 8, true);
        let k = 3;
        let result = PrefetchNlJoin::new(NljConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::TopK(k))
            .unwrap();
        assert_eq!(result.len(), 5 * k);
        for l in 0..5 {
            let count = result.pairs.iter().filter(|p| p.left == l).count();
            assert_eq!(count, k);
        }
        // scores of the kept pairs must be the true maxima
        let all_scores: Vec<f32> = (0..right.rows())
            .map(|j| Kernel::Unrolled.dot(left.row(0).unwrap(), right.row(j).unwrap()))
            .collect();
        let mut sorted = all_scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let kept: Vec<f32> = result
            .pairs
            .iter()
            .filter(|p| p.left == 0)
            .map(|p| p.score)
            .collect();
        for score in kept {
            assert!(score >= sorted[k - 1] - 1e-5);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let left = uniform_matrix(2, 8, 1, true);
        let right = uniform_matrix(2, 16, 1, true);
        assert!(PrefetchNlJoin::new(NljConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.5))
            .is_err());
    }

    #[test]
    fn stats_are_populated() {
        let left = strings(&["alpha", "beta"]);
        let right = strings(&["gamma"]);
        let result = PrefetchNlJoin::new(NljConfig::default())
            .join(
                &model(),
                &left,
                &right,
                SimilarityPredicate::Threshold(-1.0),
            )
            .unwrap();
        assert_eq!(result.stats.model_calls, 3);
        assert_eq!(result.stats.pairs_compared, 2);
        assert!(result.stats.peak_buffer_bytes > 0);
        assert!(result.stats.elapsed.as_nanos() > 0);
    }

    #[test]
    fn effective_config_disables_swap_for_topk() {
        let cfg = NljConfig::default();
        assert!(cfg.auto_loop_order);
        let eff = effective_config(cfg, &SimilarityPredicate::TopK(2));
        assert!(!eff.auto_loop_order);
        let eff = effective_config(cfg, &SimilarityPredicate::Threshold(0.5));
        assert!(eff.auto_loop_order);
    }
}
