//! The relational hash equi-join: the N-table glue operator.
//!
//! Unlike the four context-enhanced join operators, this join has no model
//! in the loop — it connects tables on ordinary key equality so that
//! multi-way queries (fact/dimension schemas, chained ejoins) can be
//! expressed and *reordered* by the Selinger-style join-order optimizer in
//! `cej-relational`.
//!
//! Both executors share this implementation: the right input is drained once
//! into a [`HashSide`] (key → row indices, in right-row order), then the left
//! input probes it — all rows at once in the row executor, batch-at-a-time in
//! the vectorized executor.  Matches are emitted ordered by probe row first
//! and build row second, which is what makes the output deterministic and
//! byte-identical across executors, batch sizes, and join orders (after the
//! compensating `Rename` restores the written column order).
//!
//! ## Partitioned parallel build
//!
//! The build side is **radix-partitioned** on a stable FNV-1a hash of the
//! key: partition `p = hash(key) & mask`, one `key → rows` map per
//! partition, each built by one worker of the shared pool
//! ([`HashSide::build_with_pool`]).  Because every occurrence of a key
//! lands in the same partition and each partition inserts in build-row
//! order, the per-key match lists are identical to a single-map build — so
//! probe output is byte-identical for every partition count and thread
//! budget (including the fully skewed case where all keys share one
//! partition).  Probes only ever read, so probe batches can run in
//! parallel against the same [`HashSide`].

use std::collections::HashMap;

use cej_exec::ExecPool;
use cej_storage::{Column, Field, Schema, Table};

use crate::error::CoreError;
use crate::Result;

/// A join-key value with exact equality semantics.  `Float64` and `Vector`
/// keys are rejected at plan time, so execution only ever sees these.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Int(i64),
    Date(i32),
    Bool(bool),
    Str(String),
}

/// Extracts the key column of `table` as hashable values.
fn key_column(table: &Table, column: &str) -> Result<Vec<Key>> {
    let col = table.column_by_name(column).map_err(CoreError::from)?;
    Ok(match col {
        Column::Int64(v) => v.iter().map(|&x| Key::Int(x)).collect(),
        Column::Date(v) => v.iter().map(|&x| Key::Date(x)).collect(),
        Column::Bool(v) => v.iter().map(|&x| Key::Bool(x)).collect(),
        Column::Utf8(v) => v.iter().map(|s| Key::Str(s.clone())).collect(),
        other => {
            return Err(CoreError::InvalidInput(format!(
                "join key column {column} has unhashable type {}",
                other.data_type()
            )))
        }
    })
}

/// Stable FNV-1a hash of a key over its variant tag plus a canonical byte
/// encoding.  Deliberately *not* `std::hash` (whose `RandomState` is
/// per-process randomised): the radix partition of a key must be a pure
/// function of its value so partitioned builds are reproducible.
fn stable_hash(key: &Key) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    match key {
        Key::Int(v) => {
            eat(0);
            v.to_le_bytes().iter().copied().for_each(&mut eat);
        }
        Key::Date(v) => {
            eat(1);
            v.to_le_bytes().iter().copied().for_each(&mut eat);
        }
        Key::Bool(v) => {
            eat(2);
            eat(u8::from(*v));
        }
        Key::Str(s) => {
            eat(3);
            s.as_bytes().iter().copied().for_each(&mut eat);
        }
    }
    h
}

/// The built (right) side of a hash equi-join: the materialised build table
/// plus radix-partitioned key → row-indices maps, match lists in right-row
/// order (see the module docs on partitioned builds).
pub struct HashSide {
    table: Table,
    /// One map per radix partition; always a power-of-two count.
    partitions: Vec<HashMap<Key, Vec<usize>>>,
    /// `partitions.len() - 1`, the radix mask applied to [`stable_hash`].
    mask: u64,
}

impl HashSide {
    /// Drains `table` into the hash map, keyed on `column`, on the calling
    /// thread (a single partition).
    pub fn build(table: Table, column: &str) -> Result<Self> {
        Self::build_with_pool(table, column, &ExecPool::new(1))
    }

    /// Partitioned parallel build: the key column is hashed once, then each
    /// worker of `pool` builds the map of one radix partition.  A budget-1
    /// pool degrades to the single-map serial build.
    pub fn build_with_pool(table: Table, column: &str, pool: &ExecPool) -> Result<Self> {
        let keys = key_column(&table, column)?;
        let parts = if pool.threads() <= 1 || keys.len() < 2 {
            1
        } else {
            // a few partitions per worker keeps the claim queue busy even
            // when key skew empties some partitions
            (pool.threads() * 4).next_power_of_two().min(64)
        };
        if parts == 1 {
            let mut map: HashMap<Key, Vec<usize>> = HashMap::with_capacity(keys.len());
            for (i, k) in keys.into_iter().enumerate() {
                map.entry(k).or_default().push(i);
            }
            return Ok(Self {
                table,
                partitions: vec![map],
                mask: 0,
            });
        }
        let mask = (parts - 1) as u64;
        let hashes: Vec<u64> = keys.iter().map(stable_hash).collect();
        let part_ids: Vec<u64> = (0..parts as u64).collect();
        let partitions = pool.parallel_map(&part_ids, |&pid| {
            // each worker owns one partition and scans the shared hash
            // vector for its rows, inserting in ascending row order — the
            // same per-key list a serial single-map build produces
            let mut map: HashMap<Key, Vec<usize>> = HashMap::new();
            for (i, &h) in hashes.iter().enumerate() {
                if h & mask == pid {
                    map.entry(keys[i].clone()).or_default().push(i);
                }
            }
            map
        });
        Ok(Self {
            table,
            partitions,
            mask,
        })
    }

    /// Rows of the build side.
    pub fn build_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Number of radix partitions of the build map.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The materialised build-side table.
    #[cfg(test)]
    pub(crate) fn table(&self) -> &Table {
        &self.table
    }

    /// The partition map a key belongs to.
    #[inline]
    fn partition(&self, key: &Key) -> &HashMap<Key, Vec<usize>> {
        if self.partitions.len() == 1 {
            &self.partitions[0]
        } else {
            &self.partitions[(stable_hash(key) & self.mask) as usize]
        }
    }

    /// Appends `rows` to the build side in place, hashing the new rows under
    /// the same key `column` into their partitions.  Row indices of existing
    /// entries are unchanged (appends go at the end), so a standing query's
    /// maintained join state stays aligned with the table version the delta
    /// produced.
    pub(crate) fn extend_build(&mut self, rows: &Table, column: &str) -> Result<()> {
        let keys = key_column(rows, column)?;
        let base = self.table.num_rows();
        let single = self.partitions.len() == 1;
        let mask = self.mask;
        for (i, k) in keys.into_iter().enumerate() {
            let pid = if single {
                0
            } else {
                (stable_hash(&k) & mask) as usize
            };
            self.partitions[pid].entry(k).or_default().push(base + i);
        }
        self.table = Table::concat(&[&self.table, rows]).map_err(CoreError::from)?;
        Ok(())
    }

    /// Probes with `left` (in row order) and materialises the joined output:
    /// left columns then right columns, names preserved, matches ordered by
    /// probe row first and build row second.  Read-only: probe batches may
    /// run concurrently against one side.
    pub fn probe(&self, left: &Table, column: &str) -> Result<Table> {
        let keys = key_column(left, column)?;
        let mut left_indices = Vec::new();
        let mut right_indices = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if let Some(matches) = self.partition(key).get(key) {
                for &j in matches {
                    left_indices.push(i);
                    right_indices.push(j);
                }
            }
        }
        let left_taken = left.take(&left_indices).map_err(CoreError::from)?;
        let right_taken = self.table.take(&right_indices).map_err(CoreError::from)?;
        concat_sides(&left_taken, &right_taken)
    }
}

/// Concatenates two equally-long tables side by side, preserving names.
/// The planner already rejected shared names ([`cej_relational::RelationalError::AmbiguousColumn`]).
pub(crate) fn concat_sides(left: &Table, right: &Table) -> Result<Table> {
    let mut fields = left.schema().fields().to_vec();
    fields.extend(right.schema().fields().iter().cloned());
    let mut columns: Vec<Column> = left.columns().to_vec();
    columns.extend(right.columns().iter().cloned());
    let schema = Schema::new(fields).map_err(CoreError::from)?;
    Table::new(schema, columns).map_err(CoreError::from)
}

/// Executes a `Rename` operator: selects `from` columns in order and emits
/// them under their `to` names — projection, renaming, and reordering in one
/// column-copying step.
pub(crate) fn rename_columns(table: &Table, columns: &[(String, String)]) -> Result<Table> {
    let mut fields = Vec::with_capacity(columns.len());
    let mut cols = Vec::with_capacity(columns.len());
    for (from, to) in columns {
        let field = table.schema().field(from).map_err(CoreError::from)?;
        fields.push(Field::new(to, field.data_type));
        cols.push(table.column_by_name(from).map_err(CoreError::from)?.clone());
    }
    let schema = Schema::new(fields).map_err(CoreError::from)?;
    Table::new(schema, cols).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_storage::TableBuilder;

    fn fact() -> Table {
        TableBuilder::new()
            .int64("fk", vec![1, 2, 1, 3])
            .utf8(
                "caption",
                vec!["a".into(), "b".into(), "c".into(), "d".into()],
            )
            .build()
            .unwrap()
    }

    fn dim() -> Table {
        TableBuilder::new()
            .int64("id", vec![1, 1, 2])
            .utf8("tag", vec!["x".into(), "y".into(), "z".into()])
            .build()
            .unwrap()
    }

    #[test]
    fn probe_order_is_probe_row_then_build_row() {
        let side = HashSide::build(dim(), "id").unwrap();
        assert_eq!(side.build_rows(), 3);
        let out = side.probe(&fact(), "fk").unwrap();
        // fk=1 matches build rows 0,1; fk=2 matches 2; fk=1 again; fk=3 none
        assert_eq!(out.num_rows(), 5);
        let fks = out.column_by_name("fk").unwrap().as_int64().unwrap();
        assert_eq!(fks, &[1, 1, 2, 1, 1]);
        let tags = out.column_by_name("tag").unwrap().as_utf8().unwrap();
        assert_eq!(tags, &["x", "y", "z", "x", "y"]);
        // names preserved from both sides, left first
        let names: Vec<&str> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["fk", "caption", "id", "tag"]);
    }

    #[test]
    fn extend_build_matches_a_fresh_build() {
        let mut grown = HashSide::build(dim(), "id").unwrap();
        let added = TableBuilder::new()
            .int64("id", vec![3, 1])
            .utf8("tag", vec!["w".into(), "v".into()])
            .build()
            .unwrap();
        grown.extend_build(&added, "id").unwrap();
        assert_eq!(grown.build_rows(), 5);
        let fresh = HashSide::build(Table::concat(&[&dim(), &added]).unwrap(), "id").unwrap();
        let via_grown = grown.probe(&fact(), "fk").unwrap();
        let via_fresh = fresh.probe(&fact(), "fk").unwrap();
        assert_eq!(via_grown.num_rows(), via_fresh.num_rows());
        assert_eq!(
            via_grown.column_by_name("tag").unwrap().as_utf8().unwrap(),
            via_fresh.column_by_name("tag").unwrap().as_utf8().unwrap()
        );
        assert_eq!(grown.table().num_rows(), 5);
    }

    #[test]
    fn partitioned_build_is_identical_to_the_serial_build() {
        let serial = HashSide::build(dim(), "id").unwrap();
        let parallel = HashSide::build_with_pool(dim(), "id", &ExecPool::new(4)).unwrap();
        assert_eq!(serial.partition_count(), 1);
        assert!(parallel.partition_count() > 1);
        let via_serial = serial.probe(&fact(), "fk").unwrap();
        let via_parallel = parallel.probe(&fact(), "fk").unwrap();
        assert_eq!(via_serial, via_parallel);
    }

    #[test]
    fn skewed_keys_land_in_one_partition_and_still_probe_correctly() {
        // every build key identical: the entire build side hashes into a
        // single radix partition, the worst-case skew for the parallel build
        let skewed = TableBuilder::new()
            .int64("id", vec![7, 7, 7, 7, 7, 7])
            .utf8(
                "tag",
                (0..6).map(|i| format!("t{i}")).collect::<Vec<String>>(),
            )
            .build()
            .unwrap();
        let side = HashSide::build_with_pool(skewed.clone(), "id", &ExecPool::new(4)).unwrap();
        assert!(side.partition_count() > 1);
        let non_empty = side.partitions.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(non_empty, 1);
        let probe = TableBuilder::new()
            .int64("fk", vec![7, 3])
            .utf8("caption", vec!["hit".into(), "miss".into()])
            .build()
            .unwrap();
        let out = side.probe(&probe, "fk").unwrap();
        // fk=7 matches all six build rows in build-row order; fk=3 none
        assert_eq!(out.num_rows(), 6);
        let tags = out.column_by_name("tag").unwrap().as_utf8().unwrap();
        assert_eq!(tags, &["t0", "t1", "t2", "t3", "t4", "t5"]);
        let serial = HashSide::build(skewed, "id").unwrap();
        assert_eq!(out, serial.probe(&probe, "fk").unwrap());
    }

    #[test]
    fn extend_build_on_a_partitioned_side_matches_a_fresh_partitioned_build() {
        let pool = ExecPool::new(4);
        let mut grown = HashSide::build_with_pool(dim(), "id", &pool).unwrap();
        let added = TableBuilder::new()
            .int64("id", vec![3, 1])
            .utf8("tag", vec!["w".into(), "v".into()])
            .build()
            .unwrap();
        grown.extend_build(&added, "id").unwrap();
        let fresh =
            HashSide::build_with_pool(Table::concat(&[&dim(), &added]).unwrap(), "id", &pool)
                .unwrap();
        assert_eq!(
            grown.probe(&fact(), "fk").unwrap(),
            fresh.probe(&fact(), "fk").unwrap()
        );
    }

    #[test]
    fn stable_hash_distinguishes_variants() {
        // Int(1) vs Date(1) vs Bool(true) must not collide via shared bytes
        let h = [
            stable_hash(&Key::Int(1)),
            stable_hash(&Key::Date(1)),
            stable_hash(&Key::Bool(true)),
            stable_hash(&Key::Str("1".into())),
        ];
        for i in 0..h.len() {
            for j in i + 1..h.len() {
                assert_ne!(h[i], h[j]);
            }
        }
        // and it is a pure function of the value (stable across calls)
        assert_eq!(
            stable_hash(&Key::Str("abc".into())),
            stable_hash(&Key::Str("abc".into()))
        );
    }

    #[test]
    fn unhashable_key_is_rejected() {
        let t = TableBuilder::new()
            .float64("score", vec![1.0, 2.0])
            .build()
            .unwrap();
        assert!(HashSide::build(t, "score").is_err());
    }

    #[test]
    fn rename_selects_reorders_and_renames() {
        let out = rename_columns(
            &fact(),
            &[
                ("caption".to_string(), "text".to_string()),
                ("fk".to_string(), "fk".to_string()),
            ],
        )
        .unwrap();
        let names: Vec<&str> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["text", "fk"]);
        assert_eq!(out.num_rows(), 4);
        assert!(rename_columns(&fact(), &[("ghost".to_string(), "g".to_string())]).is_err());
    }
}
