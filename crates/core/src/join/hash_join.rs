//! The relational hash equi-join: the N-table glue operator.
//!
//! Unlike the four context-enhanced join operators, this join has no model
//! in the loop — it connects tables on ordinary key equality so that
//! multi-way queries (fact/dimension schemas, chained ejoins) can be
//! expressed and *reordered* by the Selinger-style join-order optimizer in
//! `cej-relational`.
//!
//! Both executors share this implementation: the right input is drained once
//! into a [`HashSide`] (key → row indices, in right-row order), then the left
//! input probes it — all rows at once in the row executor, batch-at-a-time in
//! the vectorized executor.  Matches are emitted ordered by probe row first
//! and build row second, which is what makes the output deterministic and
//! byte-identical across executors, batch sizes, and join orders (after the
//! compensating `Rename` restores the written column order).

use std::collections::HashMap;

use cej_storage::{Column, Field, Schema, Table};

use crate::error::CoreError;
use crate::Result;

/// A join-key value with exact equality semantics.  `Float64` and `Vector`
/// keys are rejected at plan time, so execution only ever sees these.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Int(i64),
    Date(i32),
    Bool(bool),
    Str(String),
}

/// Extracts the key column of `table` as hashable values.
fn key_column(table: &Table, column: &str) -> Result<Vec<Key>> {
    let col = table.column_by_name(column).map_err(CoreError::from)?;
    Ok(match col {
        Column::Int64(v) => v.iter().map(|&x| Key::Int(x)).collect(),
        Column::Date(v) => v.iter().map(|&x| Key::Date(x)).collect(),
        Column::Bool(v) => v.iter().map(|&x| Key::Bool(x)).collect(),
        Column::Utf8(v) => v.iter().map(|s| Key::Str(s.clone())).collect(),
        other => {
            return Err(CoreError::InvalidInput(format!(
                "join key column {column} has unhashable type {}",
                other.data_type()
            )))
        }
    })
}

/// The built (right) side of a hash equi-join: the materialised build table
/// plus a key → row-indices map, match lists in right-row order.
pub struct HashSide {
    table: Table,
    map: HashMap<Key, Vec<usize>>,
}

impl HashSide {
    /// Drains `table` into the hash map, keyed on `column`.
    pub fn build(table: Table, column: &str) -> Result<Self> {
        let keys = key_column(&table, column)?;
        let mut map: HashMap<Key, Vec<usize>> = HashMap::with_capacity(keys.len());
        for (i, k) in keys.into_iter().enumerate() {
            map.entry(k).or_default().push(i);
        }
        Ok(Self { table, map })
    }

    /// Rows of the build side.
    pub fn build_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// The materialised build-side table.
    #[cfg(test)]
    pub(crate) fn table(&self) -> &Table {
        &self.table
    }

    /// Appends `rows` to the build side in place, hashing the new rows under
    /// the same key `column`.  Row indices of existing entries are unchanged
    /// (appends go at the end), so a standing query's maintained join state
    /// stays aligned with the table version the delta produced.
    pub(crate) fn extend_build(&mut self, rows: &Table, column: &str) -> Result<()> {
        let keys = key_column(rows, column)?;
        let base = self.table.num_rows();
        for (i, k) in keys.into_iter().enumerate() {
            self.map.entry(k).or_default().push(base + i);
        }
        self.table = Table::concat(&[&self.table, rows]).map_err(CoreError::from)?;
        Ok(())
    }

    /// Probes with `left` (in row order) and materialises the joined output:
    /// left columns then right columns, names preserved, matches ordered by
    /// probe row first and build row second.
    pub fn probe(&self, left: &Table, column: &str) -> Result<Table> {
        let keys = key_column(left, column)?;
        let mut left_indices = Vec::new();
        let mut right_indices = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if let Some(matches) = self.map.get(key) {
                for &j in matches {
                    left_indices.push(i);
                    right_indices.push(j);
                }
            }
        }
        let left_taken = left.take(&left_indices).map_err(CoreError::from)?;
        let right_taken = self.table.take(&right_indices).map_err(CoreError::from)?;
        concat_sides(&left_taken, &right_taken)
    }
}

/// Concatenates two equally-long tables side by side, preserving names.
/// The planner already rejected shared names ([`cej_relational::RelationalError::AmbiguousColumn`]).
pub(crate) fn concat_sides(left: &Table, right: &Table) -> Result<Table> {
    let mut fields = left.schema().fields().to_vec();
    fields.extend(right.schema().fields().iter().cloned());
    let mut columns: Vec<Column> = left.columns().to_vec();
    columns.extend(right.columns().iter().cloned());
    let schema = Schema::new(fields).map_err(CoreError::from)?;
    Table::new(schema, columns).map_err(CoreError::from)
}

/// Executes a `Rename` operator: selects `from` columns in order and emits
/// them under their `to` names — projection, renaming, and reordering in one
/// column-copying step.
pub(crate) fn rename_columns(table: &Table, columns: &[(String, String)]) -> Result<Table> {
    let mut fields = Vec::with_capacity(columns.len());
    let mut cols = Vec::with_capacity(columns.len());
    for (from, to) in columns {
        let field = table.schema().field(from).map_err(CoreError::from)?;
        fields.push(Field::new(to, field.data_type));
        cols.push(table.column_by_name(from).map_err(CoreError::from)?.clone());
    }
    let schema = Schema::new(fields).map_err(CoreError::from)?;
    Table::new(schema, cols).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_storage::TableBuilder;

    fn fact() -> Table {
        TableBuilder::new()
            .int64("fk", vec![1, 2, 1, 3])
            .utf8(
                "caption",
                vec!["a".into(), "b".into(), "c".into(), "d".into()],
            )
            .build()
            .unwrap()
    }

    fn dim() -> Table {
        TableBuilder::new()
            .int64("id", vec![1, 1, 2])
            .utf8("tag", vec!["x".into(), "y".into(), "z".into()])
            .build()
            .unwrap()
    }

    #[test]
    fn probe_order_is_probe_row_then_build_row() {
        let side = HashSide::build(dim(), "id").unwrap();
        assert_eq!(side.build_rows(), 3);
        let out = side.probe(&fact(), "fk").unwrap();
        // fk=1 matches build rows 0,1; fk=2 matches 2; fk=1 again; fk=3 none
        assert_eq!(out.num_rows(), 5);
        let fks = out.column_by_name("fk").unwrap().as_int64().unwrap();
        assert_eq!(fks, &[1, 1, 2, 1, 1]);
        let tags = out.column_by_name("tag").unwrap().as_utf8().unwrap();
        assert_eq!(tags, &["x", "y", "z", "x", "y"]);
        // names preserved from both sides, left first
        let names: Vec<&str> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["fk", "caption", "id", "tag"]);
    }

    #[test]
    fn extend_build_matches_a_fresh_build() {
        let mut grown = HashSide::build(dim(), "id").unwrap();
        let added = TableBuilder::new()
            .int64("id", vec![3, 1])
            .utf8("tag", vec!["w".into(), "v".into()])
            .build()
            .unwrap();
        grown.extend_build(&added, "id").unwrap();
        assert_eq!(grown.build_rows(), 5);
        let fresh = HashSide::build(Table::concat(&[&dim(), &added]).unwrap(), "id").unwrap();
        let via_grown = grown.probe(&fact(), "fk").unwrap();
        let via_fresh = fresh.probe(&fact(), "fk").unwrap();
        assert_eq!(via_grown.num_rows(), via_fresh.num_rows());
        assert_eq!(
            via_grown.column_by_name("tag").unwrap().as_utf8().unwrap(),
            via_fresh.column_by_name("tag").unwrap().as_utf8().unwrap()
        );
        assert_eq!(grown.table().num_rows(), 5);
    }

    #[test]
    fn unhashable_key_is_rejected() {
        let t = TableBuilder::new()
            .float64("score", vec![1.0, 2.0])
            .build()
            .unwrap();
        assert!(HashSide::build(t, "score").is_err());
    }

    #[test]
    fn rename_selects_reorders_and_renames() {
        let out = rename_columns(
            &fact(),
            &[
                ("caption".to_string(), "text".to_string()),
                ("fk".to_string(), "fk".to_string()),
            ],
        )
        .unwrap();
        let names: Vec<&str> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["text", "fk"]);
        assert_eq!(out.num_rows(), 4);
        assert!(rename_columns(&fact(), &[("ghost".to_string(), "g".to_string())]).is_err());
    }
}
