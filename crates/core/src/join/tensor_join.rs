//! The tensor (block-matrix) formulation of the context-enhanced join.
//!
//! Instead of comparing vectors pair by pair, both inputs are materialised as
//! matrices (one embedding per row, normalised so cosine = dot product) and
//! the score matrix `D = R · Sᵀ` is computed block-wise with the tiled GEMM
//! kernel of `cej-vector` (paper Section IV-C, Figure 6).  Mini-batching
//! along tuple boundaries bounds the intermediate-state memory to a
//! caller-supplied buffer budget (Section V-B, Figure 7 / Figure 13): the
//! full `|R| × |S|` matrix is never materialised unless the budget allows it.
//!
//! Relational pre-filtering is applied *before* the matrix computation by
//! compacting the selected rows — the advantage scans have over index probes
//! in the paper's access-path comparison.

use std::time::Instant;

use cej_embedding::Embedder;
use cej_exec::ExecPool;
use cej_relational::SimilarityPredicate;
use cej_storage::SelectionBitmap;
use cej_vector::{
    gemm::{block_into, block_into_with_pool},
    norm::normalize_matrix_rows_with,
    BufferBudget, GemmConfig, Kernel, Matrix, TopK,
};

use crate::error::CoreError;
use crate::result::{JoinPair, JoinResult, JoinStats};
use crate::Result;

use super::{check_joinable, check_predicate, embed_all};

/// Configuration of the tensor join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorJoinConfig {
    /// Compute kernel for the tiled GEMM.
    pub kernel: Kernel,
    /// Worker threads (parallel over outer-row blocks).  Defaults to the
    /// shared execution layer's thread budget (`CEJ_THREADS`, or the
    /// machine's available parallelism).
    pub threads: usize,
    /// Buffer budget for the intermediate score block.
    pub budget: BufferBudget,
    /// GEMM tile shape.
    pub tile_rows: usize,
    /// GEMM tile shape.
    pub tile_cols: usize,
    /// When `false`, the inner relation is processed one vector at a time
    /// instead of as a batched matrix (the "Tensor-Non-Batched" configuration
    /// of Figure 12).
    pub batch_inner: bool,
}

impl Default for TensorJoinConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Unrolled,
            threads: cej_exec::default_threads(),
            budget: BufferBudget::from_mib(64),
            tile_rows: 64,
            tile_cols: 64,
            batch_inner: true,
        }
    }
}

impl TensorJoinConfig {
    /// Sets the kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the buffer budget for the intermediate score state.
    pub fn with_budget(mut self, budget: BufferBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Disables inner-relation batching (Figure 12's non-batched variant).
    pub fn without_inner_batching(mut self) -> Self {
        self.batch_inner = false;
        self
    }

    fn gemm(&self) -> GemmConfig {
        GemmConfig {
            kernel: self.kernel,
            tile_rows: self.tile_rows,
            tile_cols: self.tile_cols,
            threads: 1,
        }
    }
}

/// The tensor join operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct TensorJoin {
    config: TensorJoinConfig,
}

impl TensorJoin {
    /// Creates the operator with the given configuration.
    pub fn new(config: TensorJoinConfig) -> Self {
        Self { config }
    }

    /// The operator configuration.
    pub fn config(&self) -> &TensorJoinConfig {
        &self.config
    }

    /// Joins two string inputs: prefetch-embeds both sides, then runs the
    /// blocked matrix join.
    ///
    /// # Errors
    /// Propagates embedding, predicate, and shape errors.
    pub fn join(
        &self,
        model: &dyn Embedder,
        left: &[String],
        right: &[String],
        predicate: SimilarityPredicate,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        let start = Instant::now();
        let left_matrix = embed_all(model, left)?;
        let right_matrix = embed_all(model, right)?;
        let mut result = self.join_matrices(&left_matrix, &right_matrix, predicate)?;
        result.stats.model_calls = (left.len() + right.len()) as u64;
        result.stats.elapsed = start.elapsed();
        Ok(result)
    }

    /// Joins two already-embedded inputs.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidInput`] for dimension mismatches.
    pub fn join_matrices(
        &self,
        left: &Matrix,
        right: &Matrix,
        predicate: SimilarityPredicate,
    ) -> Result<JoinResult> {
        self.join_matrices_filtered(left, right, predicate, None, None)
    }

    /// Joins two already-embedded inputs with optional relational
    /// pre-filters.  Returned pair offsets refer to the *original*
    /// (unfiltered) row numbering of each input.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidInput`] for dimension or filter-length
    /// mismatches.
    pub fn join_matrices_filtered(
        &self,
        left: &Matrix,
        right: &Matrix,
        predicate: SimilarityPredicate,
        left_filter: Option<&SelectionBitmap>,
        right_filter: Option<&SelectionBitmap>,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        check_joinable(left, right)?;
        let start = Instant::now();

        // Pre-filtering: compact the selected rows before any vector work.
        let (left_rows, left_map) = Self::compact(left, left_filter)?;
        let (right_rows, right_map) = Self::compact(right, right_filter)?;
        let kernel = self.config.kernel;

        let mut left_norm = left_rows;
        let mut right_norm = right_rows;
        normalize_matrix_rows_with(&mut left_norm, kernel);
        normalize_matrix_rows_with(&mut right_norm, kernel);

        let mut stats = JoinStats {
            pairs_compared: left_norm.rows() as u64 * right_norm.rows() as u64,
            ..JoinStats::default()
        };

        let pairs = if left_norm.rows() == 0 || right_norm.rows() == 0 {
            Vec::new()
        } else if self.config.batch_inner {
            self.blocked_join(&left_norm, &right_norm, predicate, &mut stats)?
        } else {
            self.non_batched_join(&left_norm, &right_norm, predicate, &mut stats)
        };

        // Map compacted offsets back to original row numbers.
        let pairs: Vec<JoinPair> = pairs
            .into_iter()
            .map(|p| JoinPair::new(left_map[p.left], right_map[p.right], p.score))
            .collect();

        stats.peak_buffer_bytes += left_norm.bytes() + right_norm.bytes();
        stats.elapsed = start.elapsed();
        Ok(JoinResult { pairs, stats })
    }

    /// Joins two inputs that are already embedded **and row-normalised**,
    /// skipping the compaction and normalisation passes of
    /// [`TensorJoin::join_matrices_filtered`].
    ///
    /// This is the vectorised executor's per-batch entry point: the inner
    /// side is normalised once, then every probe batch reuses it directly.
    /// Pair offsets refer to the row numbering of the given matrices, and the
    /// returned `peak_buffer_bytes` covers only the score block (the caller
    /// owns the normalised inputs and accounts for them once).
    ///
    /// # Errors
    /// Returns [`crate::error::CoreError::InvalidInput`] for dimension
    /// mismatches or degenerate predicates.
    pub fn join_prenormalized(
        &self,
        left_norm: &Matrix,
        right_norm: &Matrix,
        predicate: SimilarityPredicate,
    ) -> Result<JoinResult> {
        check_predicate(&predicate)?;
        check_joinable(left_norm, right_norm)?;
        let start = Instant::now();
        let mut stats = JoinStats {
            pairs_compared: left_norm.rows() as u64 * right_norm.rows() as u64,
            ..JoinStats::default()
        };
        let pairs = if left_norm.rows() == 0 || right_norm.rows() == 0 {
            Vec::new()
        } else if self.config.batch_inner {
            self.blocked_join(left_norm, right_norm, predicate, &mut stats)?
        } else {
            self.non_batched_join(left_norm, right_norm, predicate, &mut stats)
        };
        stats.elapsed = start.elapsed();
        Ok(JoinResult { pairs, stats })
    }

    /// Compacts the selected rows of `m`, returning the compacted matrix and
    /// the mapping from compacted offset to original row.
    fn compact(m: &Matrix, filter: Option<&SelectionBitmap>) -> Result<(Matrix, Vec<usize>)> {
        match filter {
            None => Ok((m.clone(), (0..m.rows()).collect())),
            Some(f) => {
                if f.len() != m.rows() {
                    return Err(CoreError::InvalidInput(format!(
                        "filter length {} does not match input rows {}",
                        f.len(),
                        m.rows()
                    )));
                }
                let map: Vec<usize> = f.iter_selected().collect();
                let lanes: Vec<u32> = map.iter().map(|&i| i as u32).collect();
                let out = m
                    .gather_rows(&lanes)
                    .map_err(|e| CoreError::InvalidInput(e.to_string()))?;
                Ok((out, map))
            }
        }
    }

    /// Mini-batched blocked join: both inputs are partitioned along tuple
    /// boundaries so each score block fits the buffer budget.
    fn blocked_join(
        &self,
        left: &Matrix,
        right: &Matrix,
        predicate: SimilarityPredicate,
        stats: &mut JoinStats,
    ) -> Result<Vec<JoinPair>> {
        let (outer_batch, inner_batch) = self.config.budget.batch_shape(left.rows(), right.rows());
        let dim = left.cols();
        let gemm = self.config.gemm();

        // Per-left-row top-k state (threshold joins collect directly).
        let mut topk_state: Option<Vec<TopK>> = match predicate {
            SimilarityPredicate::TopK(k) => Some((0..left.rows()).map(|_| TopK::new(k)).collect()),
            SimilarityPredicate::Threshold(_) => None,
        };
        let mut pairs: Vec<JoinPair> = Vec::new();

        let block_cells = outer_batch * inner_batch;
        stats.peak_buffer_bytes = BufferBudget::block_bytes(outer_batch, inner_batch);

        let pool = ExecPool::new(self.config.threads);
        let mut scores = vec![0.0f32; block_cells];

        let mut l_start = 0usize;
        while l_start < left.rows() {
            let l_end = (l_start + outer_batch).min(left.rows());
            let l_rows = l_end - l_start;
            let l_block = left
                .rows_as_slice(l_start, l_end)
                .expect("left block in range");
            let mut r_start = 0usize;
            while r_start < right.rows() {
                let r_end = (r_start + inner_batch).min(right.rows());
                let r_rows = r_end - r_start;
                let r_block = right
                    .rows_as_slice(r_start, r_end)
                    .expect("right block in range");
                let out = &mut scores[..l_rows * r_rows];

                block_into_with_pool(l_block, r_block, l_rows, r_rows, dim, &gemm, &pool, out);
                stats.blocks_computed += 1;

                // Harvest the block: either threshold pairs or top-k updates.
                match (&predicate, &mut topk_state) {
                    (SimilarityPredicate::Threshold(t), _) => {
                        for li in 0..l_rows {
                            let row = &out[li * r_rows..(li + 1) * r_rows];
                            for (ri, &score) in row.iter().enumerate() {
                                if score >= *t {
                                    pairs.push(JoinPair::new(l_start + li, r_start + ri, score));
                                }
                            }
                        }
                    }
                    (SimilarityPredicate::TopK(_), Some(state)) => {
                        for li in 0..l_rows {
                            let row = &out[li * r_rows..(li + 1) * r_rows];
                            let collector = &mut state[l_start + li];
                            for (ri, &score) in row.iter().enumerate() {
                                collector.push(r_start + ri, score);
                            }
                        }
                    }
                    _ => unreachable!("top-k state exists iff the predicate is top-k"),
                }
                r_start = r_end;
            }
            l_start = l_end;
        }

        if let Some(state) = topk_state {
            for (li, collector) in state.into_iter().enumerate() {
                for entry in collector.into_sorted() {
                    pairs.push(JoinPair::new(li, entry.id, entry.score));
                }
            }
        }
        Ok(pairs)
    }

    /// The non-batched variant of Figure 12: the inner relation is processed
    /// one vector at a time through the same GEMM kernel (degenerate 1-row
    /// blocks), so the only difference from the batched variant is the lost
    /// reuse of the inner block.
    fn non_batched_join(
        &self,
        left: &Matrix,
        right: &Matrix,
        predicate: SimilarityPredicate,
        stats: &mut JoinStats,
    ) -> Vec<JoinPair> {
        let gemm = self.config.gemm();
        let dim = left.cols();
        let mut scores = vec![0.0f32; left.rows()];
        stats.peak_buffer_bytes = scores.len() * std::mem::size_of::<f32>();
        let mut topk_state: Option<Vec<TopK>> = match predicate {
            SimilarityPredicate::TopK(k) => Some((0..left.rows()).map(|_| TopK::new(k)).collect()),
            SimilarityPredicate::Threshold(_) => None,
        };
        let mut pairs = Vec::new();
        let l_block = left.rows_as_slice(0, left.rows()).expect("full left");
        for j in 0..right.rows() {
            let r_row = right.row(j).expect("right row");
            block_into(l_block, r_row, left.rows(), 1, dim, &gemm, &mut scores);
            stats.blocks_computed += 1;
            match (&predicate, &mut topk_state) {
                (SimilarityPredicate::Threshold(t), _) => {
                    for (i, &score) in scores.iter().enumerate() {
                        if score >= *t {
                            pairs.push(JoinPair::new(i, j, score));
                        }
                    }
                }
                (SimilarityPredicate::TopK(_), Some(state)) => {
                    for (i, &score) in scores.iter().enumerate() {
                        state[i].push(j, score);
                    }
                }
                _ => unreachable!(),
            }
        }
        if let Some(state) = topk_state {
            for (li, collector) in state.into_iter().enumerate() {
                for entry in collector.into_sorted() {
                    pairs.push(JoinPair::new(li, entry.id, entry.score));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::prefetch_nlj::{NljConfig, PrefetchNlJoin};
    use cej_embedding::{CachedEmbedder, FastTextConfig, FastTextModel};
    use cej_workload::uniform_matrix;

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn strings(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn matches_prefetch_nlj_threshold() {
        let left = uniform_matrix(25, 24, 1, true);
        let right = uniform_matrix(33, 24, 2, true);
        let nlj = PrefetchNlJoin::new(NljConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.2))
            .unwrap();
        let tensor = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.2))
            .unwrap();
        assert_eq!(nlj.pair_indices(), tensor.pair_indices());
    }

    #[test]
    fn matches_prefetch_nlj_topk() {
        let left = uniform_matrix(10, 16, 3, true);
        let right = uniform_matrix(50, 16, 4, true);
        let nlj = PrefetchNlJoin::new(NljConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::TopK(5))
            .unwrap();
        let tensor = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::TopK(5))
            .unwrap();
        assert_eq!(nlj.pair_indices(), tensor.pair_indices());
    }

    #[test]
    fn mini_batching_does_not_change_results() {
        let left = uniform_matrix(40, 16, 5, true);
        let right = uniform_matrix(60, 16, 6, true);
        let unbatched =
            TensorJoin::new(TensorJoinConfig::default().with_budget(BufferBudget::unlimited()))
                .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.1))
                .unwrap();
        let batched = TensorJoin::new(
            TensorJoinConfig::default().with_budget(BufferBudget::from_bytes(4 * 128)),
        )
        .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.1))
        .unwrap();
        assert_eq!(unbatched.pair_indices(), batched.pair_indices());
        assert!(batched.stats.blocks_computed > unbatched.stats.blocks_computed);
        assert!(batched.stats.peak_buffer_bytes < unbatched.stats.peak_buffer_bytes);
    }

    #[test]
    fn mini_batching_with_topk_is_correct() {
        let left = uniform_matrix(12, 16, 7, true);
        let right = uniform_matrix(45, 16, 8, true);
        let unbatched =
            TensorJoin::new(TensorJoinConfig::default().with_budget(BufferBudget::unlimited()))
                .join_matrices(&left, &right, SimilarityPredicate::TopK(3))
                .unwrap();
        let batched = TensorJoin::new(
            TensorJoinConfig::default().with_budget(BufferBudget::from_bytes(4 * 64)),
        )
        .join_matrices(&left, &right, SimilarityPredicate::TopK(3))
        .unwrap();
        assert_eq!(unbatched.pair_indices(), batched.pair_indices());
    }

    #[test]
    fn non_batched_variant_is_correct_but_does_more_blocks() {
        let left = uniform_matrix(20, 16, 9, true);
        let right = uniform_matrix(30, 16, 10, true);
        let batched = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.15))
            .unwrap();
        let non_batched = TensorJoin::new(TensorJoinConfig::default().without_inner_batching())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.15))
            .unwrap();
        assert_eq!(batched.pair_indices(), non_batched.pair_indices());
        assert!(non_batched.stats.blocks_computed > batched.stats.blocks_computed);
    }

    #[test]
    fn multi_threaded_matches_single_threaded() {
        let left = uniform_matrix(64, 16, 11, true);
        let right = uniform_matrix(48, 16, 12, true);
        let single = TensorJoin::new(TensorJoinConfig::default().with_threads(1))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.1))
            .unwrap();
        let multi = TensorJoin::new(TensorJoinConfig::default().with_threads(4))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.1))
            .unwrap();
        assert_eq!(single.pair_indices(), multi.pair_indices());
    }

    #[test]
    fn prefilters_restrict_and_remap_offsets() {
        let left = uniform_matrix(10, 16, 13, true);
        let right = uniform_matrix(10, 16, 14, true);
        let left_filter = SelectionBitmap::from_indices(10, &[2, 5, 7]);
        let right_filter = SelectionBitmap::from_indices(10, &[0, 9]);
        let result = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices_filtered(
                &left,
                &right,
                SimilarityPredicate::Threshold(-1.0),
                Some(&left_filter),
                Some(&right_filter),
            )
            .unwrap();
        // every selected pair matches at threshold -1
        assert_eq!(result.len(), 3 * 2);
        for p in &result.pairs {
            assert!([2, 5, 7].contains(&p.left));
            assert!([0, 9].contains(&p.right));
        }
        assert_eq!(result.stats.pairs_compared, 6);
    }

    #[test]
    fn empty_filter_produces_empty_result() {
        let left = uniform_matrix(5, 8, 15, true);
        let right = uniform_matrix(5, 8, 16, true);
        let none = SelectionBitmap::none(5);
        let result = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices_filtered(
                &left,
                &right,
                SimilarityPredicate::Threshold(0.0),
                Some(&none),
                None,
            )
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.pairs_compared, 0);
    }

    #[test]
    fn filter_length_mismatch_rejected() {
        let left = uniform_matrix(5, 8, 17, true);
        let right = uniform_matrix(5, 8, 18, true);
        let bad = SelectionBitmap::all(3);
        assert!(TensorJoin::new(TensorJoinConfig::default())
            .join_matrices_filtered(
                &left,
                &right,
                SimilarityPredicate::Threshold(0.0),
                Some(&bad),
                None
            )
            .is_err());
    }

    #[test]
    fn string_join_counts_linear_model_calls() {
        let counted = CachedEmbedder::new(model());
        let left = strings(&["barbecue", "database"]);
        let right = strings(&["barbecues", "databases", "laptop"]);
        let result = TensorJoin::new(TensorJoinConfig::default())
            .join(&counted, &left, &right, SimilarityPredicate::Threshold(0.5))
            .unwrap();
        assert_eq!(counted.stats().model_calls, 5);
        assert_eq!(result.stats.model_calls, 5);
        // semantically matching pairs were found
        assert!(result.pair_indices().contains(&(0, 0)));
        assert!(result.pair_indices().contains(&(1, 1)));
    }

    #[test]
    fn scalar_kernel_agrees_with_unrolled() {
        let left = uniform_matrix(15, 32, 19, true);
        let right = uniform_matrix(17, 32, 20, true);
        let a = TensorJoin::new(TensorJoinConfig::default().with_kernel(Kernel::Scalar))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.2))
            .unwrap();
        let b = TensorJoin::new(TensorJoinConfig::default().with_kernel(Kernel::Unrolled))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.2))
            .unwrap();
        assert_eq!(a.pair_indices(), b.pair_indices());
    }

    #[test]
    fn prenormalized_entry_point_matches_full_path_bit_for_bit() {
        let left = uniform_matrix(23, 16, 23, true);
        let right = uniform_matrix(31, 16, 24, true);
        let join = TensorJoin::new(TensorJoinConfig::default());
        for predicate in [
            SimilarityPredicate::Threshold(0.2),
            SimilarityPredicate::TopK(4),
        ] {
            let full = join.join_matrices(&left, &right, predicate).unwrap();
            let mut left_norm = left.clone();
            let mut right_norm = right.clone();
            normalize_matrix_rows_with(&mut left_norm, join.config().kernel);
            normalize_matrix_rows_with(&mut right_norm, join.config().kernel);
            let pre = join
                .join_prenormalized(&left_norm, &right_norm, predicate)
                .unwrap();
            // same pairs, same scores, bit for bit
            assert_eq!(full.pairs, pre.pairs);
            assert_eq!(full.stats.pairs_compared, pre.stats.pairs_compared);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let left = uniform_matrix(4, 8, 21, true);
        let right = uniform_matrix(4, 12, 22, true);
        assert!(TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.5))
            .is_err());
    }
}
