//! Physical implementations of the context-enhanced join.
//!
//! All operators implement the same logical operation — find pairs of tuples
//! whose embeddings satisfy a similarity predicate — but with very different
//! cost profiles, mirroring the paper's step-by-step optimisation narrative:
//!
//! 1. [`naive_nlj::NaiveNlJoin`] — the straightforward extension of a
//!    nested-loop join: embed *inside* the pair loop (quadratic model cost).
//! 2. [`prefetch_nlj::PrefetchNlJoin`] — the logical optimisation: embed each
//!    tuple exactly once, then run a (parallel, optionally SIMD) pair-wise
//!    NLJ over the vectors.
//! 3. [`tensor_join::TensorJoin`] — the physical optimisation: reformulate
//!    the pair-wise comparison as blocked matrix multiplication with
//!    mini-batching under an explicit memory budget.
//! 4. [`index_join::IndexJoin`] — the vector-database alternative: build an
//!    HNSW index on the inner relation and answer the join with top-k probes
//!    under relational pre-filtering.
//!
//! [`hash_join`] is deliberately *not* on that list: it is the ordinary
//! relational hash equi-join that glues N-table queries together around the
//! context-enhanced joins (no model in its loop).

pub mod hash_join;
pub mod index_join;
pub mod naive_nlj;
pub mod prefetch_nlj;
pub mod tensor_join;

use cej_embedding::Embedder;
use cej_relational::SimilarityPredicate;
use cej_vector::Matrix;

use crate::error::CoreError;
use crate::Result;

/// Embeds a slice of strings into a row-per-string matrix, validating that
/// the model produced the expected dimensionality.
pub(crate) fn embed_all(model: &dyn Embedder, strings: &[String]) -> Result<Matrix> {
    let matrix = model.embed_batch(strings);
    if matrix.rows() != strings.len() {
        return Err(CoreError::InvalidInput(format!(
            "model produced {} embeddings for {} inputs",
            matrix.rows(),
            strings.len()
        )));
    }
    Ok(matrix)
}

/// Validates that two embedded inputs are joinable (same dimensionality).
pub(crate) fn check_joinable(left: &Matrix, right: &Matrix) -> Result<()> {
    if left.cols() != right.cols() {
        return Err(CoreError::InvalidInput(format!(
            "embedding dimensionality mismatch: left {} vs right {}",
            left.cols(),
            right.cols()
        )));
    }
    Ok(())
}

/// Validates a similarity predicate.
pub(crate) fn check_predicate(predicate: &SimilarityPredicate) -> Result<()> {
    match predicate {
        SimilarityPredicate::Threshold(t) => {
            if !t.is_finite() {
                return Err(CoreError::InvalidInput(
                    "similarity threshold must be finite".into(),
                ));
            }
            Ok(())
        }
        SimilarityPredicate::TopK(k) => {
            if *k == 0 {
                return Err(CoreError::InvalidInput("top-k must be at least 1".into()));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_embedding::{FastTextConfig, FastTextModel};

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 8,
            buckets: 500,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn embed_all_produces_one_row_per_string() {
        let m = model();
        let out = embed_all(&m, &["a".into(), "b".into(), "c".into()]).unwrap();
        assert_eq!(out.rows(), 3);
        assert_eq!(out.cols(), 8);
        let empty = embed_all(&m, &[]).unwrap();
        assert_eq!(empty.rows(), 0);
    }

    #[test]
    fn check_joinable_rejects_dim_mismatch() {
        assert!(check_joinable(&Matrix::zeros(2, 4), &Matrix::zeros(3, 4)).is_ok());
        assert!(check_joinable(&Matrix::zeros(2, 4), &Matrix::zeros(3, 5)).is_err());
    }

    #[test]
    fn check_predicate_validation() {
        assert!(check_predicate(&SimilarityPredicate::Threshold(0.9)).is_ok());
        assert!(check_predicate(&SimilarityPredicate::Threshold(f32::NAN)).is_err());
        assert!(check_predicate(&SimilarityPredicate::TopK(5)).is_ok());
        assert!(check_predicate(&SimilarityPredicate::TopK(0)).is_err());
    }
}
