//! Join results and execution statistics.

use std::time::Duration;

use cej_index::ProbeStats;
use serde::{Deserialize, Serialize};

/// One matched pair produced by a context-enhanced join.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinPair {
    /// Row offset into the (possibly pre-filtered) left input.
    pub left: usize,
    /// Row offset into the (possibly pre-filtered) right input.
    pub right: usize,
    /// Similarity score of the pair.
    pub score: f32,
}

impl JoinPair {
    /// Creates a pair.
    pub fn new(left: usize, right: usize, score: f32) -> Self {
        Self { left, right, score }
    }
}

/// Execution statistics of one join operator invocation.
///
/// These are the quantities the paper's cost model reasons about, made
/// observable: number of model invocations (the `M` term), number of
/// pair-wise similarity evaluations (the `|R|·|S|·C` term), the peak size of
/// the intermediate score buffer (Figure 13's memory axis), and index probe
/// counters where applicable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JoinStats {
    /// Real model invocations performed by (or on behalf of) the operator.
    pub model_calls: u64,
    /// Number of pair-wise similarity evaluations.
    pub pairs_compared: u64,
    /// Peak bytes of intermediate score state held at any one time.
    pub peak_buffer_bytes: usize,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Aggregate index probe counters (index join only).
    pub probe_stats: ProbeStats,
    /// Number of mini-batch block computations performed (tensor join only).
    pub blocks_computed: u64,
}

/// The outcome of a join operator: matched pairs plus statistics.
#[derive(Debug, Clone, Default)]
pub struct JoinResult {
    /// Matched pairs.  Order is deterministic for a given operator and input
    /// but differs between operators; use [`JoinResult::sorted_pairs`] to
    /// compare results across operators.
    pub pairs: Vec<JoinPair>,
    /// Execution statistics.
    pub stats: JoinStats,
}

impl JoinResult {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no pairs matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pairs sorted by `(left, right)` — a canonical order for comparing the
    /// output of different physical operators on the same logical join.
    pub fn sorted_pairs(&self) -> Vec<JoinPair> {
        let mut out = self.pairs.clone();
        out.sort_by(|a, b| a.left.cmp(&b.left).then(a.right.cmp(&b.right)));
        out
    }

    /// The set of `(left, right)` index pairs, for equality checks that
    /// ignore score rounding differences between operators.
    pub fn pair_indices(&self) -> Vec<(usize, usize)> {
        self.sorted_pairs()
            .iter()
            .map(|p| (p.left, p.right))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_zero() {
        let s = JoinStats::default();
        assert_eq!(s.model_calls, 0);
        assert_eq!(s.pairs_compared, 0);
        assert_eq!(s.peak_buffer_bytes, 0);
        assert_eq!(s.elapsed, Duration::ZERO);
        assert_eq!(s.blocks_computed, 0);
    }

    #[test]
    fn sorted_pairs_canonical_order() {
        let result = JoinResult {
            pairs: vec![
                JoinPair::new(2, 1, 0.9),
                JoinPair::new(0, 5, 0.8),
                JoinPair::new(2, 0, 0.7),
            ],
            stats: JoinStats::default(),
        };
        assert_eq!(result.len(), 3);
        assert!(!result.is_empty());
        assert_eq!(result.pair_indices(), vec![(0, 5), (2, 0), (2, 1)]);
        assert!(JoinResult::default().is_empty());
    }
}
