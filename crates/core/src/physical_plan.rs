//! The physical query plan: an explicit operator tree produced by the
//! [`crate::planner::Planner`] and consumed by the executor.
//!
//! Where [`cej_relational::LogicalPlan`] says *what* to compute, a
//! [`PhysicalPlan`] says *how*: which of the four join operators runs, which
//! access path was selected (and at what estimated cost), and whether the
//! index-probe path uses a persistent index from the session's
//! [`crate::index_manager::IndexManager`] or builds one per execution.
//! Every node carries the planner's cardinality/cost annotations so
//! [`PhysicalPlan::explain`] can render the decision *before* anything runs —
//! the paper's Section V cost-based choice, made visible — and
//! [`PhysicalPlan::explain_analyze`] can render estimated-vs-actual rows
//! side by side after a run recorded per-operator actuals.

use std::fmt;

use cej_relational::{EmbedSpec, Expr, SimilarityPredicate};

use crate::access_path::AccessPath;
use crate::index_manager::IndexKey;
use crate::join::index_join::IndexJoinConfig;
use crate::join::prefetch_nlj::NljConfig;
use crate::join::tensor_join::TensorJoinConfig;

/// Planner annotations attached to every physical operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (this operator plus its inputs), in the
    /// unitless relative scale of [`crate::CostModel`].
    pub cost: f64,
}

impl PlanEstimate {
    /// Creates an estimate.
    pub fn new(rows: f64, cost: f64) -> Self {
        Self { rows, cost }
    }
}

/// The q-error of a cardinality estimate: `max(est/actual, actual/est)`,
/// the standard plan-quality metric (1.0 = exact; symmetric in over- and
/// under-estimation).  Zero-row sides are smoothed to one row so a perfect
/// "no rows expected, no rows seen" scores 1.0 instead of dividing by zero.
pub fn q_error(estimated: f64, actual: f64) -> f64 {
    let est = estimated.max(1.0);
    let act = actual.max(1.0);
    (est / act).max(act / est)
}

/// Which physical operator executes a context-enhanced join node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalJoinOp {
    /// The naive per-pair-embedding nested-loop join.
    NaiveNlj,
    /// The prefetch-optimised parallel NLJ.
    PrefetchNlj(NljConfig),
    /// The blocked tensor join (the scan access path).
    Tensor(TensorJoinConfig),
    /// The HNSW index-probe join.
    Index(IndexJoinConfig),
}

impl PhysicalJoinOp {
    /// The operator name used in plan rendering.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalJoinOp::NaiveNlj => "NaiveNljJoin",
            PhysicalJoinOp::PrefetchNlj(_) => "PrefetchNljJoin",
            PhysicalJoinOp::Tensor(_) => "TensorJoin",
            PhysicalJoinOp::Index(_) => "IndexJoin",
        }
    }
}

/// The inner (right, indexed/scanned) input of a physical join.
#[derive(Debug, Clone, PartialEq)]
pub enum InnerInput {
    /// A materialised subplan: executed per run, consumed directly by scan
    /// operators (and by the index join as an ephemeral per-execution build
    /// when the inner side is not reducible to a base-table column).
    Plan(PhysicalPlan),
    /// The index-probe fast path: a persistent index over a base-table
    /// column, with relational predicates applied as probe-time bitmaps.
    Indexed(IndexedInner),
}

/// Description of a persistent-index inner input.
///
/// The index covers the *full* base-table column; relational filters are
/// evaluated into a [`cej_storage::SelectionBitmap`] and passed to the probe,
/// which excludes filtered tuples from the result but not from the graph
/// traversal — exactly the vector-database pre-filtering semantics the paper
/// measures (Section IV-B).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedInner {
    /// Identity of the shared index in the session's `IndexManager`.
    pub key: IndexKey,
    /// Relational predicates turned into a probe-time filter bitmap.
    pub filters: Vec<Expr>,
    /// Output columns of the inner side (`None` keeps every base column).
    pub projection: Option<Vec<String>>,
    /// Estimated rows surviving the filters (for plan rendering).
    pub est_rows: f64,
}

/// A physical context-enhanced join node.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinNode {
    /// The outer (probe, `R`) input.
    pub outer: PhysicalPlan,
    /// The inner (indexed/scanned, `S`) input.
    pub inner: InnerInput,
    /// Context-rich join column of the outer input.
    pub left_column: String,
    /// Context-rich join column of the inner input.
    pub right_column: String,
    /// Embedding model name (resolved through the session registry).
    pub model: String,
    /// The similarity predicate.
    pub predicate: SimilarityPredicate,
    /// The operator chosen to execute this join.
    pub op: PhysicalJoinOp,
    /// The access path the planner selected (what the executor will report).
    pub access_path: AccessPath,
    /// The statistics-estimated fraction of the inner relation surviving its
    /// relational predicates — the selectivity axis the advisor decided on.
    pub est_inner_selectivity: f64,
    /// Advisor estimate for the scan (tensor) path.
    pub scan_cost: f64,
    /// Advisor estimate for the probe (index) path.
    pub probe_cost: f64,
    /// Output estimate.
    pub est: PlanEstimate,
}

/// A relational hash equi-join node: the N-table glue operator.
///
/// The *right* input is drained into an in-memory hash table (the build
/// side); the *left* input probes it.  Output columns are the concatenation
/// of both inputs' columns with their names preserved (the planner rejects
/// plans where the two sides share a column name), and matches are emitted
/// in probe-row-then-build-row order — deterministic and identical across
/// the row and batch executors.
#[derive(Debug, Clone, PartialEq)]
pub struct HashJoinNode {
    /// The left (probe) input.
    pub left: PhysicalPlan,
    /// The right (build) input.
    pub right: PhysicalPlan,
    /// Join key column of the left input.
    pub left_column: String,
    /// Join key column of the right input.
    pub right_column: String,
    /// Output estimate.
    pub est: PlanEstimate,
}

/// A node of the physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full scan of a catalog table.
    TableScan {
        /// Catalog name of the table.
        table: String,
        /// Output estimate.
        est: PlanEstimate,
    },
    /// Relational selection over the input.
    Filter {
        /// The predicate.
        predicate: Expr,
        /// The statistics-estimated fraction of input rows kept.
        selectivity: f64,
        /// The input operator.
        input: Box<PhysicalPlan>,
        /// Output estimate.
        est: PlanEstimate,
    },
    /// Projection to a subset of columns.
    Project {
        /// Output column names, in order.
        columns: Vec<String>,
        /// The input operator.
        input: Box<PhysicalPlan>,
        /// Output estimate.
        est: PlanEstimate,
    },
    /// The embedding operator `E_µ`: appends an embedding column.
    Embed {
        /// What to embed and with which model.
        spec: EmbedSpec,
        /// The input operator.
        input: Box<PhysicalPlan>,
        /// Output estimate.
        est: PlanEstimate,
    },
    /// A context-enhanced join (one of the four physical operators).
    Join(Box<JoinNode>),
    /// A relational hash equi-join (build right, probe left).
    HashJoin(Box<HashJoinNode>),
    /// Generalised projection: selects, renames, and reorders columns in one
    /// zero-copy step — the compensation operator the join-order optimizer
    /// inserts to keep reordered plans schema-identical to the written query.
    Rename {
        /// `(from, to)` pairs, in output order.
        columns: Vec<(String, String)>,
        /// The input operator.
        input: Box<PhysicalPlan>,
        /// Output estimate.
        est: PlanEstimate,
    },
}

impl PhysicalPlan {
    /// The planner's output estimate for this operator.
    pub fn estimate(&self) -> PlanEstimate {
        match self {
            PhysicalPlan::TableScan { est, .. }
            | PhysicalPlan::Filter { est, .. }
            | PhysicalPlan::Project { est, .. }
            | PhysicalPlan::Embed { est, .. }
            | PhysicalPlan::Rename { est, .. } => *est,
            PhysicalPlan::Join(node) => node.est,
            PhysicalPlan::HashJoin(node) => node.est,
        }
    }

    /// Number of operators in the tree (each executes exactly once per run;
    /// this is the length of the executor's per-operator actual-row vector).
    pub fn operator_count(&self) -> usize {
        let own = 1;
        own + match self {
            PhysicalPlan::TableScan { .. } => 0,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Embed { input, .. }
            | PhysicalPlan::Rename { input, .. } => input.operator_count(),
            PhysicalPlan::Join(node) => {
                node.outer.operator_count()
                    + match &node.inner {
                        InnerInput::Plan(inner) => inner.operator_count(),
                        InnerInput::Indexed(_) => 0,
                    }
            }
            PhysicalPlan::HashJoin(node) => {
                node.left.operator_count() + node.right.operator_count()
            }
        }
    }

    /// The join nodes of this plan, outermost first.
    pub fn join_nodes(&self) -> Vec<&JoinNode> {
        let mut out = Vec::new();
        self.collect_joins(&mut out);
        out
    }

    fn collect_joins<'a>(&'a self, out: &mut Vec<&'a JoinNode>) {
        match self {
            PhysicalPlan::TableScan { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Embed { input, .. }
            | PhysicalPlan::Rename { input, .. } => input.collect_joins(out),
            PhysicalPlan::Join(node) => {
                out.push(node);
                node.outer.collect_joins(out);
                if let InnerInput::Plan(inner) = &node.inner {
                    inner.collect_joins(out);
                }
            }
            PhysicalPlan::HashJoin(node) => {
                node.left.collect_joins(out);
                node.right.collect_joins(out);
            }
        }
    }

    /// Renders the operator tree with the planner's estimates — the access
    /// path, per-operator row/cost annotations, and (for index joins) whether
    /// a persistent or per-execution index is used.  This is available
    /// *before* execution; the executor follows exactly what is printed.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let mut cursor = 0usize;
        self.render(&mut out, 0, None, None, &mut cursor);
        out
    }

    /// Renders the operator tree with estimated *and* actual rows side by
    /// side.  `actual_rows` is the per-operator output-row vector recorded by
    /// the executor, in the same pre-order the plan is rendered in (see
    /// [`crate::executor::ExecOutcome::operator_rows`]); operators past the
    /// end of the slice render without an actual (defensive — a full run
    /// records every operator).
    pub fn explain_analyze(&self, actual_rows: &[u64]) -> String {
        let mut out = String::new();
        let mut cursor = 0usize;
        self.render(&mut out, 0, Some(actual_rows), None, &mut cursor);
        out
    }

    /// [`PhysicalPlan::explain_analyze`] with measured per-operator wall
    /// times (microseconds, same pre-order, inclusive of input pulls)
    /// rendered next to each actual-row count.
    pub fn explain_analyze_timed(&self, actual_rows: &[u64], micros: &[u64]) -> String {
        let mut out = String::new();
        let mut cursor = 0usize;
        self.render(&mut out, 0, Some(actual_rows), Some(micros), &mut cursor);
        out
    }

    fn render(
        &self,
        out: &mut String,
        indent: usize,
        actuals: Option<&[u64]>,
        micros: Option<&[u64]>,
        cursor: &mut usize,
    ) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(indent);
        let actual = actuals.and_then(|rows| rows.get(*cursor).copied());
        let micro = micros.and_then(|m| m.get(*cursor).copied());
        *cursor += 1;
        match self {
            PhysicalPlan::TableScan { table, est } => {
                let _ = writeln!(
                    out,
                    "{pad}TableScan: {table} {}",
                    fmt_est(est, actual, micro)
                );
            }
            PhysicalPlan::Filter {
                predicate,
                selectivity,
                input,
                est,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Filter: {predicate} (sel {:.3}) {}",
                    selectivity,
                    fmt_est(est, actual, micro)
                );
                input.render(out, indent + 1, actuals, micros, cursor);
            }
            PhysicalPlan::Project {
                columns,
                input,
                est,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Project: [{}] {}",
                    columns.join(", "),
                    fmt_est(est, actual, micro)
                );
                input.render(out, indent + 1, actuals, micros, cursor);
            }
            PhysicalPlan::Embed { spec, input, est } => {
                let _ = writeln!(
                    out,
                    "{pad}Embed: {} -> {} (model {}) {}",
                    spec.input_column,
                    spec.output_column,
                    spec.model,
                    fmt_est(est, actual, micro)
                );
                input.render(out, indent + 1, actuals, micros, cursor);
            }
            PhysicalPlan::Rename {
                columns,
                input,
                est,
            } => {
                let rendered: Vec<String> = columns
                    .iter()
                    .map(|(from, to)| {
                        if from == to {
                            from.clone()
                        } else {
                            format!("{from} as {to}")
                        }
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Rename: [{}] {}",
                    rendered.join(", "),
                    fmt_est(est, actual, micro)
                );
                input.render(out, indent + 1, actuals, micros, cursor);
            }
            PhysicalPlan::HashJoin(node) => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin: {} = {} (build right) {}",
                    node.left_column,
                    node.right_column,
                    fmt_est(&node.est, actual, micro)
                );
                node.left.render(out, indent + 1, actuals, micros, cursor);
                node.right.render(out, indent + 1, actuals, micros, cursor);
            }
            PhysicalPlan::Join(node) => {
                let _ = writeln!(
                    out,
                    "{pad}{}: {} ~ {} ({}, model {}) [access path: {}; inner sel {:.2}; \
                     est rows {}{}; scan cost {} vs probe cost {}]",
                    node.op.name(),
                    node.left_column,
                    node.right_column,
                    node.predicate.label(),
                    node.model,
                    node.access_path.label(),
                    node.est_inner_selectivity,
                    fmt_rows(node.est.rows),
                    fmt_actual(node.est.rows, actual, micro),
                    fmt_cost(node.scan_cost),
                    fmt_cost(node.probe_cost),
                );
                node.outer.render(out, indent + 1, actuals, micros, cursor);
                match &node.inner {
                    InnerInput::Plan(plan) => {
                        if matches!(node.op, PhysicalJoinOp::Index(_)) {
                            let _ = writeln!(
                                out,
                                "{pad}  IndexBuild: per-execution (inner not a base-table column)"
                            );
                            plan.render(out, indent + 2, actuals, micros, cursor);
                        } else {
                            plan.render(out, indent + 1, actuals, micros, cursor);
                        }
                    }
                    InnerInput::Indexed(ii) => {
                        let filters = if ii.filters.is_empty() {
                            String::new()
                        } else {
                            format!(
                                "; probe filters: {}",
                                ii.filters
                                    .iter()
                                    .map(|f| f.to_string())
                                    .collect::<Vec<_>>()
                                    .join(" AND ")
                            )
                        };
                        let projection = match &ii.projection {
                            Some(cols) => format!("; project [{}]", cols.join(", ")),
                            None => String::new(),
                        };
                        let _ = writeln!(
                            out,
                            "{pad}  IndexProbe: persistent index {} ({}; est rows {}{filters}{projection})",
                            ii.key.label(),
                            ii.key.params.label(),
                            fmt_rows(ii.est_rows),
                        );
                    }
                }
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

fn fmt_est(est: &PlanEstimate, actual: Option<u64>, micro: Option<u64>) -> String {
    format!(
        "[rows {}{}; cost {}]",
        fmt_rows(est.rows),
        fmt_actual(est.rows, actual, micro),
        fmt_cost(est.cost)
    )
}

/// Renders the actual-row annotation of EXPLAIN ANALYZE: the measured count,
/// the q-error of the estimate against it, and (when timing was recorded)
/// the operator's measured wall time in microseconds.
fn fmt_actual(est_rows: f64, actual: Option<u64>, micro: Option<u64>) -> String {
    match actual {
        Some(act) => {
            let time = match micro {
                Some(us) => format!("; time {us}us"),
                None => String::new(),
            };
            format!(
                "; actual {act}; q-err {:.2}{time}",
                q_error(est_rows, act as f64)
            )
        }
        None => String::new(),
    }
}

fn fmt_rows(rows: f64) -> String {
    if rows >= 10_000.0 {
        format!("{rows:.2e}")
    } else {
        format!("{}", rows.round() as i64)
    }
}

fn fmt_cost(cost: f64) -> String {
    format!("{cost:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_index::HnswParams;
    use cej_relational::{col, lit_i64};

    fn scan(table: &str, rows: f64) -> PhysicalPlan {
        PhysicalPlan::TableScan {
            table: table.to_string(),
            est: PlanEstimate::new(rows, rows),
        }
    }

    fn join_node(op: PhysicalJoinOp, path: AccessPath, inner: InnerInput) -> PhysicalPlan {
        PhysicalPlan::Join(Box::new(JoinNode {
            outer: scan("r", 100.0),
            inner,
            left_column: "caption".into(),
            right_column: "title".into(),
            model: "ft".into(),
            predicate: SimilarityPredicate::TopK(1),
            op,
            access_path: path,
            est_inner_selectivity: 0.25,
            scan_cost: 12_000.0,
            probe_cost: 3_400.0,
            est: PlanEstimate::new(100.0, 20_000.0),
        }))
    }

    #[test]
    fn explain_renders_access_path_and_costs() {
        let plan = join_node(
            PhysicalJoinOp::Tensor(TensorJoinConfig::default()),
            AccessPath::TensorScan,
            InnerInput::Plan(scan("s", 500.0)),
        );
        let text = plan.explain();
        assert!(text.contains("TensorJoin"));
        assert!(text.contains("access path: tensor-scan"));
        assert!(text.contains("inner sel 0.25"));
        assert!(text.contains("scan cost 1.20e4 vs probe cost 3.40e3"));
        assert!(text.contains("TableScan: r"));
        assert!(text.contains("TableScan: s"));
        assert_eq!(plan.estimate().rows, 100.0);
        assert_eq!(plan.join_nodes().len(), 1);
        assert_eq!(plan.operator_count(), 3);
    }

    #[test]
    fn explain_analyze_renders_estimates_against_actuals() {
        let plan = join_node(
            PhysicalJoinOp::Tensor(TensorJoinConfig::default()),
            AccessPath::TensorScan,
            InnerInput::Plan(scan("s", 500.0)),
        );
        // pre-order: join, outer scan, inner scan
        let text = plan.explain_analyze(&[80, 100, 450]);
        assert!(
            text.contains("est rows 100; actual 80"),
            "join line: {text}"
        );
        assert!(text.contains("[rows 100; actual 100; q-err 1.00"));
        assert!(text.contains("[rows 500; actual 450; q-err 1.11"));
        // a short actuals vector leaves trailing operators un-annotated
        let partial = plan.explain_analyze(&[80]);
        assert!(partial.contains("actual 80"));
        assert!(partial.contains("[rows 500; cost"));
    }

    #[test]
    fn explain_renders_persistent_index_with_filters() {
        let ii = IndexedInner {
            key: IndexKey::new("s", "title", "ft", HnswParams::tiny()),
            filters: vec![col("year").gt_eq(lit_i64(2023))],
            projection: Some(vec!["title".into()]),
            est_rows: 250.0,
        };
        let plan = join_node(
            PhysicalJoinOp::Index(IndexJoinConfig::default()),
            AccessPath::IndexProbe,
            InnerInput::Indexed(ii),
        );
        let text = plan.explain();
        assert!(text.contains("IndexJoin"));
        assert!(text.contains("access path: index-probe"));
        assert!(text.contains("persistent index s.title/ft"));
        assert!(text.contains("probe filters: (year >= 2023)") || text.contains("probe filters"));
        assert!(text.contains("project [title]"));
        assert_eq!(plan.operator_count(), 2, "indexed inner has no operator");
    }

    #[test]
    fn explain_marks_ephemeral_index_builds() {
        let plan = join_node(
            PhysicalJoinOp::Index(IndexJoinConfig::default()),
            AccessPath::IndexProbe,
            InnerInput::Plan(scan("s", 500.0)),
        );
        let text = plan.explain();
        assert!(text.contains("IndexBuild: per-execution"));
    }

    #[test]
    fn filter_project_embed_render_with_estimates() {
        let plan = PhysicalPlan::Embed {
            spec: EmbedSpec::new("word", "ft"),
            input: Box::new(PhysicalPlan::Project {
                columns: vec!["word".into()],
                input: Box::new(PhysicalPlan::Filter {
                    predicate: col("x").gt(lit_i64(0)),
                    selectivity: 0.5,
                    input: Box::new(scan("t", 10.0)),
                    est: PlanEstimate::new(5.0, 20.0),
                }),
                est: PlanEstimate::new(5.0, 25.0),
            }),
            est: PlanEstimate::new(5.0, 5_025.0),
        };
        let text = plan.explain();
        assert!(text.contains("Embed: word -> word_emb"));
        assert!(text.contains("Project: [word]"));
        assert!(text.contains("Filter:"));
        assert!(text.contains("(sel 0.500)"));
        assert!(text.contains("[rows 5; cost"));
        assert!(format!("{plan}").contains("TableScan: t"));
        assert!(plan.join_nodes().is_empty());
        assert_eq!(plan.operator_count(), 4);
    }

    #[test]
    fn q_error_is_symmetric_and_smoothed() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(200.0, 100.0), 2.0);
        assert_eq!(q_error(100.0, 200.0), 2.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(0.0, 10.0), 10.0);
    }
}
