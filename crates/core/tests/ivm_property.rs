//! Property test for incremental view maintenance: random streams of
//! `APPEND` / `DELETE` / `UPSERT` deltas against both sides of a
//! hash-join + ejoin plan must leave every standing query's maintained
//! result **byte-identical** (canonicalised multiset) to a full re-run of
//! the same plan — under all four physical join strategies and both
//! executors (row and vectorized batch, at awkward batch sizes).
//!
//! This is the end-to-end exactness contract of `cej_core::ivm`: whether a
//! delta took the propagation fast path, fell back to a refresh, or hit
//! the divergence detector, the maintained multiset may never drift from
//! what re-planning and re-executing would produce.

use cej_core::{
    ContextJoinSession, Delta, ExecContext, ExecMode, IndexJoinConfig, IvmPolicy, JoinStrategy,
    MaintainedResult, NljConfig, ScalarValue, StandingQuery, TensorJoinConfig,
};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::{LogicalPlan, SimilarityPredicate};
use cej_storage::{Table, TableBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Caption vocabulary: overlapping word pools on both sides so similarity
/// scores spread across the whole range instead of clustering.
const WORDS: &[&str] = &[
    "barbecue", "grill", "database", "laptop", "garden", "tent", "book", "server", "iron",
    "systems",
];

fn phrase(rng: &mut StdRng) -> String {
    let n = rng.gen_range(1..=3);
    (0..n)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// In-memory mirror of the mutable tables, used only to generate
/// plausible keys (existing ids for deletes/upserts, fresh ids for
/// appends) — correctness is judged against full re-runs, never against
/// this mirror.
struct Mirror {
    photo_ids: Vec<i64>,
    product_ids: Vec<i64>,
    next_photo: i64,
    next_product: i64,
}

fn photos_rows(ids: &[i64], owners: &[i64], captions: &[String]) -> Table {
    TableBuilder::new()
        .int64("id", ids.to_vec())
        .int64("owner_fk", owners.to_vec())
        .utf8("caption", captions.to_vec())
        .build()
        .unwrap()
}

fn products_rows(ids: &[i64], titles: &[String]) -> Table {
    TableBuilder::new()
        .int64("pid", ids.to_vec())
        .utf8("title", titles.to_vec())
        .build()
        .unwrap()
}

/// Generates one random delta against `photos` or `products`, keeping the
/// mirror's id bookkeeping in sync.
fn gen_delta(rng: &mut StdRng, mirror: &mut Mirror) -> (&'static str, Delta) {
    let on_photos = rng.gen_bool(0.6);
    let (ids, next): (&mut Vec<i64>, &mut i64) = if on_photos {
        (&mut mirror.photo_ids, &mut mirror.next_photo)
    } else {
        (&mut mirror.product_ids, &mut mirror.next_product)
    };
    let table = if on_photos { "photos" } else { "products" };
    // deletes and upserts need existing rows to be interesting
    let kind = if ids.is_empty() {
        0
    } else {
        rng.gen_range(0..3)
    };
    let delta = match kind {
        0 => {
            // append 1-3 fresh rows
            let n = rng.gen_range(1..=3);
            let mut new_ids = Vec::new();
            for _ in 0..n {
                new_ids.push(*next);
                *next += 1;
            }
            ids.extend(&new_ids);
            let captions: Vec<String> = new_ids.iter().map(|_| phrase(rng)).collect();
            if on_photos {
                let owners: Vec<i64> = new_ids.iter().map(|_| rng.gen_range(1..=3) * 100).collect();
                Delta::Append(photos_rows(&new_ids, &owners, &captions))
            } else {
                Delta::Append(products_rows(&new_ids, &captions))
            }
        }
        1 => {
            // delete 1-2 existing keys, sometimes plus a missing one
            let mut keys = Vec::new();
            for _ in 0..rng.gen_range(1..=2) {
                let victim = ids[rng.gen_range(0..ids.len())];
                keys.push(victim);
            }
            if rng.gen_bool(0.2) {
                keys.push(-1); // matches nothing: deltas may be partial no-ops
            }
            ids.retain(|id| !keys.contains(id));
            Delta::DeleteByKey {
                key_column: if on_photos { "id" } else { "pid" }.to_string(),
                keys: keys.into_iter().map(ScalarValue::Int64).collect(),
            }
        }
        _ => {
            // upsert 1-2 rows: half replace existing keys, half insert new
            let mut up_ids = Vec::new();
            for _ in 0..rng.gen_range(1..=2) {
                let id = if rng.gen_bool(0.5) && !ids.is_empty() {
                    ids[rng.gen_range(0..ids.len())]
                } else {
                    let id = *next;
                    *next += 1;
                    id
                };
                if !up_ids.contains(&id) {
                    up_ids.push(id);
                }
            }
            for id in &up_ids {
                if !ids.contains(id) {
                    ids.push(*id);
                }
            }
            let captions: Vec<String> = up_ids.iter().map(|_| phrase(rng)).collect();
            if on_photos {
                let owners: Vec<i64> = up_ids.iter().map(|_| rng.gen_range(1..=3) * 100).collect();
                Delta::Upsert {
                    key_column: "id".to_string(),
                    rows: photos_rows(&up_ids, &owners, &captions),
                }
            } else {
                Delta::Upsert {
                    key_column: "pid".to_string(),
                    rows: products_rows(&up_ids, &captions),
                }
            }
        }
    };
    (table, delta)
}

/// Builds one session (fixed seed tables, fresh caches and indexes) under
/// the given strategy, so every strategy maintains against its own
/// persistent-index state.
fn session(rng: &mut StdRng, strategy: JoinStrategy, mirror: &Mirror) -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    let captions: Vec<String> = mirror.photo_ids.iter().map(|_| phrase(rng)).collect();
    let owners: Vec<i64> = mirror
        .photo_ids
        .iter()
        .map(|_| rng.gen_range(1..=3) * 100)
        .collect();
    s.register_table("photos", photos_rows(&mirror.photo_ids, &owners, &captions));
    let titles: Vec<String> = mirror.product_ids.iter().map(|_| phrase(rng)).collect();
    s.register_table("products", products_rows(&mirror.product_ids, &titles));
    s.register_table(
        "owners",
        TableBuilder::new()
            .int64("owner_id", vec![100, 200, 300])
            .utf8("region", vec!["west".into(), "east".into(), "north".into()])
            .build()
            .unwrap(),
    );
    let model = FastTextModel::new(FastTextConfig {
        dim: 16,
        buckets: 1000,
        ..FastTextConfig::default()
    })
    .unwrap();
    s.register_model("ft", model);
    for table in ["photos", "products", "owners"] {
        s.catalog().analyze(table).unwrap();
    }
    s.with_strategy(strategy);
    s
}

/// The maintained plan: a hash join (photos → owners) feeding an ejoin
/// against products, so one delta stream exercises hash-join probe/build
/// propagation and every ejoin propagation rule at once.
fn plan(predicate: SimilarityPredicate) -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("owners"),
            "owner_fk",
            "owner_id",
        ),
        LogicalPlan::scan("products"),
        "caption",
        "title",
        "ft",
        predicate,
    )
}

/// Full re-run of the plan under an explicit executor mode.
fn rerun(s: &ContextJoinSession, query: &LogicalPlan, mode: ExecMode) -> Table {
    let prepared = s.prepare(query).unwrap();
    let ctx = ExecContext {
        catalog: s.catalog(),
        registry: &s.model_registry(),
        embeddings: s.embedding_caches(),
        indexes: s.index_manager(),
        pool: *cej_exec::ExecPool::global(),
    };
    prepared
        .physical_plan()
        .execute_with(&ctx, mode)
        .unwrap()
        .table
}

fn strategies() -> Vec<(JoinStrategy, &'static str)> {
    vec![
        (JoinStrategy::NaiveNlj, "naive-nlj"),
        (
            JoinStrategy::PrefetchNlj(NljConfig::default()),
            "prefetch-nlj",
        ),
        (JoinStrategy::Tensor(TensorJoinConfig::default()), "tensor"),
        (JoinStrategy::Index(IndexJoinConfig::default()), "index"),
    ]
}

fn check_in_sync(
    q: &StandingQuery,
    s: &ContextJoinSession,
    query: &LogicalPlan,
    context: &str,
) -> Result<(), TestCaseError> {
    for (mode, mode_name) in [
        (ExecMode::Row, "row"),
        (ExecMode::Batch { batch_rows: 3 }, "batch3"),
        (ExecMode::Batch { batch_rows: 7 }, "batch7"),
    ] {
        let full = MaintainedResult::new(rerun(s, query, mode));
        prop_assert!(
            q.checksum() == full.checksum(),
            "maintained result diverged from {} re-run {}: {} maintained rows vs {} full rows",
            mode_name,
            context,
            q.snapshot().map(|t| t.num_rows()).unwrap_or(0),
            full.rows()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// One random delta stream per case, replayed under every join
    /// strategy; after every delta the maintained multiset must equal a
    /// full re-run under both executors.
    #[test]
    fn maintained_results_are_byte_identical_to_full_reruns(
        seed in 0u64..1_000_000,
        topk in any::<bool>(),
    ) {
        let predicate = if topk {
            SimilarityPredicate::TopK(2)
        } else {
            SimilarityPredicate::Threshold(0.5)
        };
        let query = plan(predicate);

        // generate the stream once so every strategy sees identical deltas
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mirror = Mirror {
            photo_ids: (0..8).collect(),
            product_ids: (0..6).collect(),
            next_photo: 8,
            next_product: 6,
        };
        let table_rng_seed = rng.gen::<u64>();
        let stream: Vec<(&str, Delta)> =
            (0..6).map(|_| gen_delta(&mut rng, &mut mirror)).collect();

        for (strategy, strategy_name) in strategies() {
            // the naive E-NLJ rejects top-k predicates by design
            if topk && matches!(strategy, JoinStrategy::NaiveNlj) {
                continue;
            }
            let mut table_rng = StdRng::seed_from_u64(table_rng_seed);
            let fresh_mirror = Mirror {
                photo_ids: (0..8).collect(),
                product_ids: (0..6).collect(),
                next_photo: 8,
                next_product: 6,
            };
            let s = session(&mut table_rng, strategy, &fresh_mirror);
            // exercise the propagation path as hard as possible: never
            // fall back just because a delta is large relative to the base
            let q = s
                .prepare(&query)
                .unwrap()
                .subscribe_with(IvmPolicy {
                    refresh_fraction: f64::INFINITY,
                    ..IvmPolicy::default()
                })
                .unwrap();
            check_in_sync(&q, &s, &query, &format!("(seed {seed}, {strategy_name}, seeded)"))?;
            for (step, (table, delta)) in stream.iter().enumerate() {
                s.apply_delta(table, delta).unwrap();
                check_in_sync(
                    &q,
                    &s,
                    &query,
                    &format!("(seed {seed}, {strategy_name}, step {step} on {table})"),
                )?;
            }
            // every delta that touched the plan was absorbed one way or
            // the other — nothing silently dropped
            let stats = q.stats();
            prop_assert!(
                stats.propagations + stats.refreshes >= 1,
                "no delta was absorbed under {} (stats {:?})",
                strategy_name,
                stats
            );
        }
    }
}
