//! Offline API shim for the [rand](https://docs.rs/rand/0.8) crate.
//!
//! The workspace builds in a container without crates.io access, so this
//! crate re-implements the small slice of the rand 0.8 API the tree actually
//! uses: `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen_range` / `gen_bool` / `gen`.
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — statistically solid
//! for test workloads and fully deterministic from a `u64` seed, which is all
//! the paper reproduction needs ("same random number generator seed for
//! reproducibility").  It is **not** the ChaCha12 generator the real `StdRng`
//! uses, so absolute random streams differ from upstream rand; everything in
//! this repo only relies on determinism-given-seed, not on matching
//! upstream's streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_f64(self) < p
    }

    /// Samples a value of a type with a standard distribution
    /// (`f32`/`f64` in `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn sample_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`; `inclusive` widens to `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(high > low, "gen_range: empty range");
        low + sample_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(high > low, "gen_range: empty range");
        low + sample_f32(rng) * (high - low)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample_f32(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&i));
            let c = rng.gen_range(0..26u8);
            assert!(c < 26);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
