//! Offline API shim for [criterion](https://docs.rs/criterion).
//!
//! The bench sources under `crates/bench/benches/` are written against the
//! real criterion 0.5 API; this shim provides the same surface (`Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) so they compile and run without crates.io access.
//!
//! Instead of criterion's full statistical pipeline, [`Bencher::iter`] runs a
//! short warm-up, then a bounded timing loop and prints the mean
//! nanoseconds-per-iteration.  Good enough to sanity-check kernel ablations;
//! swap in the real crate via the root manifest for publication-grade
//! numbers.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's loop is self-bounding.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's loop is self-bounding.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's loop is self-bounding.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput reporting is not computed.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Throughput annotation (accepted, not reported, by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the mean nanoseconds per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: one call, which also gives a cost estimate.
        let start = Instant::now();
        std_black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(20));

        // Bounded measurement: aim for ~20ms of work, capped at 10k iters.
        let iters =
            (Duration::from_millis(20).as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        let total = start.elapsed();
        self.nanos_per_iter = Some(total.as_nanos() as f64 / iters as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        nanos_per_iter: None,
    };
    f(&mut bencher);
    match bencher.nanos_per_iter {
        Some(ns) => println!("  {label:<48} {ns:>14.1} ns/iter"),
        None => println!("  {label:<48} (no measurement)"),
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}
