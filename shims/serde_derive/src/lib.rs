//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The shim's traits are blanket-implemented, so the derives legitimately
//! have nothing to emit — they exist only so `#[derive(Serialize,
//! Deserialize)]` attributes across the tree parse and expand cleanly.

use proc_macro::TokenStream;

/// No-op derive for the shim's blanket-implemented `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for the shim's blanket-implemented `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
