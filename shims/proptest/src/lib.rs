//! Offline API shim for [proptest](https://docs.rs/proptest).
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and collection strategies, `any::<bool>()`, the
//! `proptest!` / `prop_assert*` macros, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case number and message but
//!   does not minimise the input.  Failures are reproducible because the
//!   runner's RNG seed is fixed.
//! * **No persisted failure files.**  Every run samples the same
//!   deterministic sequence.

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then uses it to pick a second-stage strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_in(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_in_inclusive(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, usize, u64, i64);

    /// Strategy for `bool` with fair odds, used by `any::<bool>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool_fair()
        }
    }

    /// Strategy producing a single fixed value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`crate::prelude::any`].

    use crate::strategy::BoolStrategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// The canonical strategy for the type.
        type Strategy: crate::strategy::Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;

        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for collection strategies: an exact length or a
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors whose elements come from
    /// `element` and whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_in_inclusive(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration, RNG, and failure plumbing for `proptest!`.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Runner configuration; only `cases` is meaningful to the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG handed to strategies by the runner.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// A runner RNG with a fixed seed: every run samples the same cases.
        pub fn deterministic() -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(0xC0FF_EE00_D15E_A5E5),
            }
        }

        /// Uniform draw from a half-open range.
        pub fn gen_in<T, R>(&mut self, range: R) -> T
        where
            T: rand::SampleUniform,
            R: rand::SampleRange<T>,
        {
            self.rng.gen_range(range)
        }

        /// Uniform draw from an inclusive range.
        pub fn gen_in_inclusive<T>(&mut self, range: core::ops::RangeInclusive<T>) -> T
        where
            T: rand::SampleUniform,
        {
            self.rng.gen_range(range)
        }

        /// Fair coin flip.
        pub fn gen_bool_fair(&mut self) -> bool {
            self.rng.gen_bool(0.5)
        }
    }

    /// Failure raised by `prop_assert*` inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples every strategy `config.cases` times and runs the
/// body.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("property {} failed on case {}: {}", stringify!($name), case, err);
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// `assert!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `assert_ne!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respect_ranges(
            v in crate::collection::vec(0.0f32..1.0, 3..10),
            exact in crate::collection::vec(any::<bool>(), 5),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 10);
            prop_assert_eq!(exact.len(), 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_threads_values(
            pair in (1usize..=4).prop_flat_map(|n| {
                crate::collection::vec(0.0f32..1.0, n).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }
}
