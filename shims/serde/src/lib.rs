//! Offline API shim for [serde](https://serde.rs).
//!
//! The container building this workspace has no access to crates.io, and the
//! tree only uses serde for `#[derive(Serialize, Deserialize)]` markers (no
//! wire format is ever produced).  This shim provides the two traits as
//! blanket-implemented markers plus no-op derive macros, so every
//! `use serde::{Deserialize, Serialize}` in the tree compiles unchanged.
//! Replacing this shim with the real crate is a one-line edit in the root
//! `Cargo.toml`.

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type so that generic `T: Serialize` bounds
/// keep compiling against the shim.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
///
/// The lifetime parameter mirrors the real trait's signature so bounds like
/// `T: Deserialize<'de>` compile unchanged.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

// The derive macros share the traits' names, exactly like the real crate's
// `derive` feature re-export.
pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for the `serde::de` module (trait re-exports only).
pub mod de {
    pub use crate::DeserializeOwned;
}
