//! Offline API shim for [parking_lot](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s).  Built because the workspace compiles without crates.io
//! access; the real crate is a drop-in replacement via the root manifest.

use std::sync;

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, ignoring poison.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard aliases matching parking_lot's names.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// See [`RwLockReadGuard`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// See [`RwLockReadGuard`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
