//! Integration tests for the logical optimizer: the algebraic equivalences of
//! Section III-C must hold *observably* — pushing relational predicates below
//! the embedding operator changes model-call counts but never query results.

use cej_core::{ContextJoinSession, JoinStrategy, TensorJoinConfig};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::{
    col, lit_i64, Catalog, EmbedSpec, LogicalPlan, Optimizer, SimilarityPredicate,
};
use cej_storage::TableBuilder;

fn model() -> FastTextModel {
    FastTextModel::new(FastTextConfig {
        dim: 24,
        buckets: 5_000,
        ..FastTextConfig::default()
    })
    .unwrap()
}

fn tables() -> (cej_storage::Table, cej_storage::Table) {
    let left = TableBuilder::new()
        .int64("id", (0..20).collect())
        .utf8("word", (0..20).map(|i| format!("leftword{i}")).collect())
        .int64("filter", (0..20).collect())
        .build()
        .unwrap();
    let right = TableBuilder::new()
        .int64("id", (0..30).collect())
        .utf8("word", (0..30).map(|i| format!("rightword{i}")).collect())
        .int64("filter", (0..30).collect())
        .build()
        .unwrap();
    (left, right)
}

fn catalog() -> Catalog {
    let (left, right) = tables();
    let c = Catalog::new();
    c.register("l", left);
    c.register("r", right);
    c
}

#[test]
fn pushdown_moves_selection_below_join_and_embed() {
    let c = catalog();
    let optimizer = Optimizer::with_default_rules();
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("l").embed(EmbedSpec::new("word", "m")),
        LogicalPlan::scan("r"),
        "word",
        "word",
        "m",
        SimilarityPredicate::Threshold(0.9),
    )
    .select(col("filter").lt(lit_i64(5)));

    // The filter column exists on both sides; the predicate references the
    // unqualified name, so the rule must resolve it against exactly one side
    // (left in this plan because its columns are listed first).
    let optimized = optimizer.optimize(plan.clone(), &c).unwrap();
    assert!(optimized.selections_below_embedding() >= 1);
    // The plan root is the join after pushdown.
    assert!(matches!(optimized, LogicalPlan::EJoin { .. }));
}

#[test]
fn optimizer_is_idempotent() {
    let c = catalog();
    let optimizer = Optimizer::with_default_rules();
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("l"),
        LogicalPlan::scan("r"),
        "word",
        "word",
        "m",
        SimilarityPredicate::TopK(3),
    )
    .select(col("id").gt(lit_i64(2)));
    let once = optimizer.optimize(plan, &c).unwrap();
    let twice = optimizer.optimize(once.clone(), &c).unwrap();
    assert_eq!(once, twice);
}

#[test]
fn optimized_and_unoptimized_plans_give_identical_results() {
    // Execute the same query through the session (which always optimises) and
    // manually with a pre-pushed-down plan: results must agree, which is the
    // semantic-equivalence half of the E-Selection rewrite.
    let (left, right) = tables();
    let mut session = ContextJoinSession::new();
    session.register_table("l", left);
    session.register_table("r", right);
    session.register_model("m", model());
    session.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));

    let above = LogicalPlan::e_join(
        LogicalPlan::scan("l"),
        LogicalPlan::scan("r"),
        "word",
        "word",
        "m",
        SimilarityPredicate::Threshold(0.6),
    )
    .select(col("l_filter").lt(lit_i64(10)));

    let below = LogicalPlan::e_join(
        LogicalPlan::scan("l").select(col("filter").lt(lit_i64(10))),
        LogicalPlan::scan("r"),
        "word",
        "word",
        "m",
        SimilarityPredicate::Threshold(0.6),
    );

    let report_above = session.execute(&above).unwrap();
    let report_below = session.execute(&below).unwrap();

    let rows = |t: &cej_storage::Table| -> Vec<(i64, i64)> {
        let mut v: Vec<(i64, i64)> = t
            .column_by_name("l_id")
            .unwrap()
            .as_int64()
            .unwrap()
            .iter()
            .copied()
            .zip(
                t.column_by_name("r_id")
                    .unwrap()
                    .as_int64()
                    .unwrap()
                    .iter()
                    .copied(),
            )
            .collect();
        v.sort();
        v
    };
    assert_eq!(rows(&report_above.table), rows(&report_below.table));
    // ...but the pre-pushed plan embeds fewer left tuples
    assert!(report_below.embedding_stats.model_calls <= report_above.embedding_stats.model_calls);
}

#[test]
fn pushdown_reduces_model_calls_proportionally_to_selectivity() {
    let (left, right) = tables();
    let mut session = ContextJoinSession::new();
    session.register_table("l", left);
    session.register_table("r", right);
    session.register_model("m", model());

    let base = LogicalPlan::e_join(
        LogicalPlan::scan("l"),
        LogicalPlan::scan("r"),
        "word",
        "word",
        "m",
        SimilarityPredicate::TopK(1),
    );
    // filter on the left table column before the join (the optimizer pushes it)
    let plan = base.select(col("filter").lt(lit_i64(4)));
    let report = session.execute(&plan).unwrap();
    // 4 surviving left rows + 30 right rows
    assert_eq!(report.embedding_stats.model_calls, 34);
    assert_eq!(report.optimized_plan.selections_below_embedding(), 1);
}
