//! Integration tests of the physical-plan layer: prepared-query reuse
//! (plan once / execute many), persistent HNSW indexes, `explain()` fidelity,
//! and old-vs-new API equivalence across all four join strategies.

use cej_core::{
    sim_gte, top_k, ContextJoinSession, ExecutionReport, IndexJoinConfig, JoinStrategy, NljConfig,
    TensorJoinConfig,
};
use cej_embedding::{train_on_corpus, FastTextConfig, FastTextModel, TrainingConfig};
use cej_index::HnswParams;
use cej_relational::{col, lit_i64, LogicalPlan, SimilarityPredicate};
use cej_workload::{CorpusGenerator, JoinWorkload, RelationSpec, WordGenerator};

fn trained_model(seed: u64) -> FastTextModel {
    let mut words = WordGenerator::new(seed);
    let clusters = words.clusters(6, 4);
    let corpus = CorpusGenerator::new(seed)
        .with_noise(0.05)
        .generate(&clusters, 150);
    let mut model = FastTextModel::new(FastTextConfig {
        dim: 24,
        buckets: 10_000,
        ..FastTextConfig::default()
    })
    .unwrap();
    train_on_corpus(&mut model, &corpus, &TrainingConfig::default()).unwrap();
    model
}

fn workload() -> JoinWorkload {
    JoinWorkload::generate(
        RelationSpec {
            rows: 30,
            clusters: 6,
            variants_per_cluster: 4,
        },
        RelationSpec {
            rows: 60,
            clusters: 6,
            variants_per_cluster: 4,
        },
        7,
    )
}

fn session_with(workload: &JoinWorkload) -> ContextJoinSession {
    let mut session = ContextJoinSession::new();
    session.register_table("outer_rel", workload.outer.clone());
    session.register_table("inner_rel", workload.inner.clone());
    session.register_model("fasttext", trained_model(7));
    session
}

fn index_strategy() -> JoinStrategy {
    JoinStrategy::Index(IndexJoinConfig {
        params: HnswParams::tiny(),
        range_probe_k: 8,
    })
}

fn join_plan(predicate: SimilarityPredicate) -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::scan("outer_rel"),
        LogicalPlan::scan("inner_rel"),
        "word",
        "word",
        "fasttext",
        predicate,
    )
}

fn result_pairs(report: &ExecutionReport) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = report
        .table
        .column_by_name("l_id")
        .unwrap()
        .as_int64()
        .unwrap()
        .iter()
        .copied()
        .zip(
            report
                .table
                .column_by_name("r_id")
                .unwrap()
                .as_int64()
                .unwrap()
                .iter()
                .copied(),
        )
        .collect();
    rows.sort();
    rows
}

#[test]
fn warm_prepared_run_pays_zero_model_calls_and_zero_hnsw_builds() {
    let w = workload();
    let mut session = session_with(&w);
    session.with_strategy(index_strategy());
    let prepared = session
        .prepare(&join_plan(SimilarityPredicate::TopK(2)))
        .unwrap();

    let cold = prepared.run().unwrap();
    assert!(cold.embedding_stats.model_calls > 0, "cold run embeds");
    assert_eq!(cold.index_builds, 1, "cold run builds the index");
    assert_eq!(cold.index_reuses, 0);
    assert_eq!(session.index_manager().stats().builds, 1);

    let warm = prepared.run().unwrap();
    assert_eq!(
        warm.embedding_stats.model_calls, 0,
        "warm run must perform zero model calls for unchanged relations"
    );
    assert_eq!(warm.index_builds, 0, "warm run must not build HNSW");
    assert_eq!(warm.index_reuses, 1);
    // the session-level counters agree: still exactly one build ever
    let stats = session.index_manager().stats();
    assert_eq!(stats.builds, 1);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.resident, 1);

    // identical results cold vs warm
    assert_eq!(result_pairs(&cold), result_pairs(&warm));
}

#[test]
fn reregistering_the_inner_table_invalidates_its_index() {
    let w = workload();
    let mut session = session_with(&w);
    session.with_strategy(index_strategy());
    let plan = join_plan(SimilarityPredicate::TopK(1));

    session.execute(&plan).unwrap();
    assert_eq!(session.index_manager().stats().resident, 1);

    // re-register the *outer* table: the inner index must survive
    session.register_table("outer_rel", w.outer.clone());
    assert_eq!(session.index_manager().stats().resident, 1);
    let warm = session.execute(&plan).unwrap();
    assert_eq!(warm.index_builds, 0);

    // re-register the *inner* table: its index is dropped and rebuilt
    session.register_table("inner_rel", w.inner.clone());
    assert_eq!(session.index_manager().stats().resident, 0);
    assert_eq!(session.index_manager().stats().invalidations, 1);
    let rebuilt = session.execute(&plan).unwrap();
    assert_eq!(rebuilt.index_builds, 1);
    assert_eq!(session.index_manager().stats().builds, 2);
}

#[test]
fn explain_names_the_access_path_and_costs_before_execution_and_matches_it() {
    let w = workload();
    let session = session_with(&w);
    // Auto strategy: the planner consults the advisor at plan time.
    let prepared = session
        .prepare(&join_plan(SimilarityPredicate::TopK(1)))
        .unwrap();
    let text = prepared.explain();
    assert!(
        text.contains("scan cost") && text.contains("probe cost"),
        "explain must show both per-path cost estimates:\n{text}"
    );
    assert!(
        text.contains("access path: tensor-scan") || text.contains("access path: index-probe"),
        "explain must name the selected access path:\n{text}"
    );
    assert!(text.contains("TableScan: outer_rel"));
    let report = prepared.run().unwrap();
    let path = report.access_path.expect("join executed");
    assert!(
        text.contains(&format!("access path: {}", path.label())),
        "executed path {path:?} must match the explained plan:\n{text}"
    );
}

#[test]
fn explain_shows_persistent_index_and_probe_filters() {
    let w = workload();
    let mut session = session_with(&w);
    session.with_strategy(index_strategy());
    let text = session
        .query("outer_rel")
        .ejoin_with(
            LogicalPlan::scan("inner_rel").select(col("filter").lt(lit_i64(50))),
            ("word", "word"),
            "fasttext",
            top_k(1),
        )
        .explain()
        .unwrap();
    assert!(text.contains("IndexJoin"), "plan:\n{text}");
    assert!(
        text.contains("persistent index inner_rel.word/fasttext"),
        "plan:\n{text}"
    );
    assert!(text.contains("probe filters:"), "plan:\n{text}");
}

#[test]
fn all_four_strategies_agree_between_execute_and_prepared_path() {
    let w = workload();
    let predicate = SimilarityPredicate::Threshold(0.85);
    for strategy in [
        JoinStrategy::NaiveNlj,
        JoinStrategy::PrefetchNlj(NljConfig::default()),
        JoinStrategy::Tensor(TensorJoinConfig::default()),
        index_strategy(),
    ] {
        // fresh session for the one-shot API...
        let mut s1 = session_with(&w);
        s1.with_strategy(strategy);
        let via_execute = s1.execute(&join_plan(predicate)).unwrap();
        // ...and a fresh one for the prepared path, run twice (cold + warm)
        let mut s2 = session_with(&w);
        s2.with_strategy(strategy);
        let prepared = s2.prepare(&join_plan(predicate)).unwrap();
        let cold = prepared.run().unwrap();
        let warm = prepared.run().unwrap();
        assert_eq!(
            result_pairs(&via_execute),
            result_pairs(&cold),
            "strategy {strategy:?}: execute vs prepared diverged"
        );
        assert_eq!(
            result_pairs(&cold),
            result_pairs(&warm),
            "strategy {strategy:?}: cold vs warm prepared run diverged"
        );
    }
}

#[test]
fn index_join_respects_inner_filters_as_probe_bitmaps() {
    let w = workload();
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("outer_rel"),
        LogicalPlan::scan("inner_rel").select(col("filter").lt(lit_i64(40))),
        "word",
        "word",
        "fasttext",
        SimilarityPredicate::Threshold(0.85),
    );
    let mut indexed = session_with(&w);
    indexed.with_strategy(index_strategy());
    let via_index = indexed.execute(&plan).unwrap();
    // every surviving inner row satisfies the filter
    let filters = via_index
        .table
        .column_by_name("r_filter")
        .unwrap()
        .as_int64()
        .unwrap();
    assert!(filters.iter().all(|&f| f < 40));
    // and the exact scan path agrees on the qualifying pair set: the index
    // path may miss pairs (approximate) but must not invent or misfilter any
    let mut exact = session_with(&w);
    exact.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    let via_scan = exact.execute(&plan).unwrap();
    let scan_pairs = result_pairs(&via_scan);
    for pair in result_pairs(&via_index) {
        assert!(
            scan_pairs.contains(&pair),
            "index path produced pair {pair:?} the exact scan did not"
        );
    }
}

#[test]
fn builder_and_handwritten_plans_produce_identical_reports() {
    let w = workload();
    let session = session_with(&w);
    let built = session
        .query("outer_rel")
        .ejoin("inner_rel", ("word", "word"), "fasttext", sim_gte(0.85))
        .run()
        .unwrap();
    let hand = session
        .execute(&join_plan(SimilarityPredicate::Threshold(0.85)))
        .unwrap();
    assert_eq!(result_pairs(&built), result_pairs(&hand));
    assert_eq!(built.access_path, hand.access_path);
}

#[test]
fn prepared_queries_with_different_params_keep_distinct_indexes() {
    let w = workload();
    let mut session = session_with(&w);
    session.with_strategy(index_strategy());
    session
        .execute(&join_plan(SimilarityPredicate::TopK(1)))
        .unwrap();
    session.with_strategy(JoinStrategy::Index(IndexJoinConfig {
        params: HnswParams::tiny().with_ef_search(64),
        range_probe_k: 8,
    }));
    session
        .execute(&join_plan(SimilarityPredicate::TopK(1)))
        .unwrap();
    let stats = session.index_manager().stats();
    assert_eq!(
        stats.builds, 2,
        "distinct params must build distinct indexes"
    );
    assert_eq!(stats.resident, 2);

    // the auto path sees the resident index at plan time
    session.with_strategy(JoinStrategy::Auto);
    let prepared = session
        .prepare(&join_plan(SimilarityPredicate::TopK(1)))
        .unwrap();
    let node_costs: Vec<(f64, f64)> = prepared
        .physical_plan()
        .join_nodes()
        .iter()
        .map(|n| (n.scan_cost, n.probe_cost))
        .collect();
    assert!(!node_costs.is_empty());
}
