//! Integration tests for the index-probe join against the exact scan-based
//! operators: recall, pre-filtering semantics, and the qualitative behaviours
//! behind Table I and Figures 15-17.

use cej_core::{IndexJoin, IndexJoinConfig, TensorJoin, TensorJoinConfig};
use cej_index::HnswParams;
use cej_relational::SimilarityPredicate;
use cej_storage::SelectionBitmap;
use cej_workload::clustered_matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_params() -> HnswParams {
    HnswParams {
        m: 12,
        m0: 24,
        ef_construction: 64,
        ef_search: 48,
        ..HnswParams::tiny()
    }
}

#[test]
fn index_join_recall_against_exact_tensor_join() {
    // Probes are drawn from the indexed collection itself so every probe has
    // well-defined nearest neighbours (the usual ANN-benchmark protocol).
    let (inner, _) = clustered_matrix(2_000, 32, 20, 0.05, 1);
    let outer = inner.row_slice(0, 50).unwrap();
    let k = 5;

    let exact = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices(&outer, &inner, SimilarityPredicate::TopK(k))
        .unwrap();
    let index_join = IndexJoin::new(IndexJoinConfig {
        params: test_params(),
        range_probe_k: k,
    });
    let index = index_join.build_index(&inner).unwrap();
    let approx = index_join
        .probe_join(&outer, &index, SimilarityPredicate::TopK(k), None, None)
        .unwrap();

    let exact_set: std::collections::HashSet<(usize, usize)> =
        exact.pair_indices().into_iter().collect();
    let hits = approx
        .pair_indices()
        .iter()
        .filter(|p| exact_set.contains(p))
        .count();
    let recall = hits as f64 / exact.len() as f64;
    assert!(recall > 0.8, "index join recall {recall} below expectation");
    // Approximate: it is allowed to miss pairs, but it must never return more
    // than k per probe.
    for probe in 0..outer.rows() {
        assert!(approx.pairs.iter().filter(|p| p.left == probe).count() <= k);
    }
}

#[test]
fn higher_recall_parameters_do_not_hurt_recall() {
    let (inner, _) = clustered_matrix(1_500, 24, 15, 0.05, 3);
    let (outer, _) = clustered_matrix(40, 24, 15, 0.05, 4);
    let k = 3;
    let exact = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices(&outer, &inner, SimilarityPredicate::TopK(k))
        .unwrap();
    let exact_set: std::collections::HashSet<(usize, usize)> =
        exact.pair_indices().into_iter().collect();

    let recall_of = |params: HnswParams| {
        let join = IndexJoin::new(IndexJoinConfig {
            params,
            range_probe_k: k,
        });
        let index = join.build_index(&inner).unwrap();
        let approx = join
            .probe_join(&outer, &index, SimilarityPredicate::TopK(k), None, None)
            .unwrap();
        approx
            .pair_indices()
            .iter()
            .filter(|p| exact_set.contains(p))
            .count() as f64
            / exact.len() as f64
    };

    let lo = recall_of(HnswParams {
        m: 6,
        m0: 12,
        ef_construction: 24,
        ef_search: 12,
        ..HnswParams::tiny()
    });
    let hi = recall_of(HnswParams {
        m: 16,
        m0: 32,
        ef_construction: 128,
        ef_search: 96,
        ..HnswParams::tiny()
    });
    assert!(
        hi >= lo - 0.05,
        "high-recall config ({hi}) should not lose to low-recall ({lo})"
    );
    assert!(hi > 0.9);
}

#[test]
fn prefiltering_affects_results_not_probe_cost() {
    // The paper's observation (Table I / Section IV-B): relational
    // pre-filtering in a vector index drops result tuples "on the fly while
    // still incurring the traversal cost", whereas the scan-based join
    // excludes them from the computation entirely.
    let (inner, _) = clustered_matrix(3_000, 24, 25, 0.05, 5);
    let (outer, _) = clustered_matrix(30, 24, 25, 0.05, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let selectivity = 0.2;
    let bitmap = SelectionBitmap::from_bools(
        (0..inner.rows())
            .map(|_| rng.gen_bool(selectivity))
            .collect(),
    );

    let k = 3;
    let index_join = IndexJoin::new(IndexJoinConfig {
        params: test_params(),
        range_probe_k: k,
    });
    let index = index_join.build_index(&inner).unwrap();

    let unfiltered = index_join
        .probe_join(&outer, &index, SimilarityPredicate::TopK(k), None, None)
        .unwrap();
    let filtered = index_join
        .probe_join(
            &outer,
            &index,
            SimilarityPredicate::TopK(k),
            None,
            Some(&bitmap),
        )
        .unwrap();

    // results respect the filter
    assert!(filtered.pairs.iter().all(|p| bitmap.is_selected(p.right)));
    // but the traversal cost stays in the same ballpark (>= 50% of unfiltered),
    // unlike the scan whose compared-pairs count shrinks with selectivity
    assert!(
        filtered.stats.probe_stats.distance_computations
            >= unfiltered.stats.probe_stats.distance_computations / 2
    );

    let scan_filtered = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices_filtered(
            &outer,
            &inner,
            SimilarityPredicate::TopK(k),
            None,
            Some(&bitmap),
        )
        .unwrap();
    let scan_unfiltered = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices(&outer, &inner, SimilarityPredicate::TopK(k))
        .unwrap();
    let ratio =
        scan_filtered.stats.pairs_compared as f64 / scan_unfiltered.stats.pairs_compared as f64;
    assert!(
        (ratio - selectivity).abs() < 0.1,
        "scan work should scale with selectivity (got ratio {ratio})"
    );
}

#[test]
fn range_predicate_on_index_misses_matches_that_scan_finds() {
    // Figure 17's qualitative point: an index answers a range (threshold)
    // predicate by probing a fixed top-k and post-filtering, so when more
    // than k tuples qualify it silently truncates — the exact scan does not.
    let (inner, _) = clustered_matrix(500, 16, 2, 0.02, 9);
    let outer = inner.row_slice(0, 5).unwrap();
    let threshold = SimilarityPredicate::Threshold(0.8);

    let scan = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices(&outer, &inner, threshold)
        .unwrap();
    let index_join = IndexJoin::new(IndexJoinConfig {
        params: test_params(),
        range_probe_k: 8,
    });
    let index = index_join.build_index(&inner).unwrap();
    let probed = index_join
        .probe_join(&outer, &index, threshold, None, None)
        .unwrap();

    // With only 2 clusters and 500 points, far more than 8 tuples exceed the
    // threshold for every probe: the index join is capped at 8 per probe.
    assert!(scan.len() > probed.len());
    for probe in 0..outer.rows() {
        assert!(probed.pairs.iter().filter(|p| p.left == probe).count() <= 8);
    }
    // every index-returned pair is a true match (post-filter is sound)
    assert!(probed.pairs.iter().all(|p| p.score >= 0.8));
}

#[test]
fn outer_prefilter_reduces_probe_count() {
    let (inner, _) = clustered_matrix(1_000, 16, 10, 0.05, 11);
    let (outer, _) = clustered_matrix(40, 16, 10, 0.05, 12);
    let index_join = IndexJoin::new(IndexJoinConfig {
        params: test_params(),
        range_probe_k: 2,
    });
    let index = index_join.build_index(&inner).unwrap();
    let filter = SelectionBitmap::from_indices(40, &(0..10).collect::<Vec<_>>());
    let filtered = index_join
        .probe_join(
            &outer,
            &index,
            SimilarityPredicate::TopK(2),
            Some(&filter),
            None,
        )
        .unwrap();
    let unfiltered = index_join
        .probe_join(&outer, &index, SimilarityPredicate::TopK(2), None, None)
        .unwrap();
    assert_eq!(filtered.len(), 10 * 2);
    assert!(filtered.stats.probe_stats.nodes_visited < unfiltered.stats.probe_stats.nodes_visited);
}
