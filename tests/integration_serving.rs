//! End-to-end tests of the `cej-server` front end: boot a server over a
//! shared session, drive the text protocol through real TCP clients, and
//! assert on statement reuse, concurrency, admission, and shutdown.

use cej_core::{ContextJoinSession, JoinStrategy, TensorJoinConfig};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_server::{Client, Response, Server, ServerConfig};
use cej_workload::{JoinWorkload, RelationSpec};

fn demo_session() -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec {
            rows: 20,
            clusters: 4,
            variants_per_cluster: 4,
        },
        RelationSpec {
            rows: 60,
            clusters: 4,
            variants_per_cluster: 4,
        },
        7,
    );
    let mut session = ContextJoinSession::new();
    session.register_table("r", workload.outer.clone());
    session.register_table("s", workload.inner.clone());
    session.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 2_000,
            ..FastTextConfig::default()
        })
        .unwrap(),
    );
    // tensor join is byte-deterministic for any thread count, which the
    // result-equality assertions below rely on
    session.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    session
}

fn start_server() -> Server {
    Server::start(demo_session(), ServerConfig::default()).expect("bind server")
}

#[test]
fn prepare_run_explain_bind_over_tcp() {
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert_eq!(client.request("PING").unwrap(), Response::Ok("pong".into()));
    assert!(matches!(
        client
            .request("PREPARE j1 JOIN r.word s.word MODEL ft TOPK 2")
            .unwrap(),
        Response::Ok(_)
    ));
    let Response::Rows { lines, checksum } = client.request("RUN j1").unwrap() else {
        panic!("expected rows");
    };
    assert!(lines[0].contains("l_word") && lines[0].contains("similarity"));
    assert_eq!(lines.len() - 1, 40, "top-2 join over 20 outer rows");
    // repeat runs are byte-identical (warm prepared statement)
    let Response::Rows {
        checksum: warm_checksum,
        ..
    } = client.request("RUN j1").unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(checksum, warm_checksum);

    // EXPLAIN renders the plan without executing
    let Response::Text(explain) = client.request("EXPLAIN j1").unwrap() else {
        panic!("expected text");
    };
    assert!(explain.iter().any(|l| l.contains("Join")));

    // ANALYZE renders estimated-vs-actual rows plus the scheduler line
    let Response::Text(analyze) = client.request("ANALYZE j1").unwrap() else {
        panic!("expected text");
    };
    assert!(analyze.iter().any(|l| l.contains("actual")));
    assert!(
        analyze.iter().any(|l| l.starts_with("scheduler:")),
        "explain analyze must surface scheduler metrics: {analyze:?}"
    );

    // a threshold statement can be re-bound without replanning
    assert!(matches!(
        client
            .request("PREPARE t1 JOIN r.word s.word MODEL ft SIM 0.9")
            .unwrap(),
        Response::Ok(_)
    ));
    assert!(matches!(
        client.request("BIND t1 t1lo 0.2").unwrap(),
        Response::Ok(_)
    ));
    let Response::Rows { lines: hi, .. } = client.request("RUN t1").unwrap() else {
        panic!()
    };
    let Response::Rows { lines: lo, .. } = client.request("RUN t1lo").unwrap() else {
        panic!()
    };
    assert!(
        lo.len() >= hi.len(),
        "a lower threshold keeps at least as many pairs"
    );

    // errors come back as ERR without killing the connection
    assert!(matches!(
        client.request("RUN missing").unwrap(),
        Response::Err(_)
    ));
    assert!(matches!(
        client.request("GIBBERISH").unwrap(),
        Response::Err(_)
    ));
    assert!(matches!(
        client
            .request("PREPARE bad JOIN r.nope s.word MODEL ft TOPK 1")
            .unwrap(),
        Response::Err(_),
    ));
    assert_eq!(client.request("QUIT").unwrap(), Response::Ok("bye".into()));

    // per-query latency was recorded
    assert!(server.latency().count >= 4);
    server.shutdown();
}

#[test]
fn probe_template_joins_adhoc_text() {
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(
        client
            .request("PREPARE p PROBE s.word MODEL ft TOPK 3")
            .unwrap(),
        Response::Ok(_)
    ));
    let Response::Rows { lines, .. } = client.request("PROBE p some fresh text").unwrap() else {
        panic!("expected rows");
    };
    assert_eq!(lines.len() - 1, 3, "top-3 neighbours for one probe row");
    assert!(lines[0].contains("l_text") && lines[0].contains("r_word"));
    // identical probe text → identical bytes
    let Response::Rows { checksum: a, .. } = client.request("PROBE p some fresh text").unwrap()
    else {
        panic!()
    };
    let Response::Rows { checksum: b, .. } = client.request("PROBE p some fresh text").unwrap()
    else {
        panic!()
    };
    assert_eq!(a, b);
    server.shutdown();
}

#[test]
fn concurrent_clients_share_the_session_and_agree() {
    let mut server = start_server();
    let addr = server.local_addr();
    let mut handles = Vec::new();
    for _ in 0..4 {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client
                .request("PREPARE j JOIN r.word s.word MODEL ft TOPK 2")
                .unwrap();
            let mut checksums = Vec::new();
            for _ in 0..5 {
                let Response::Rows { checksum, .. } = client.request("RUN j").unwrap() else {
                    panic!("expected rows");
                };
                checksums.push(checksum);
            }
            client.request("QUIT").unwrap();
            checksums
        }));
    }
    let all: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let reference = all[0][0];
    for per_client in &all {
        for &checksum in per_client {
            assert_eq!(checksum, reference, "all clients must see identical bytes");
        }
    }
    // the shared embedding cache was warmed once, not once per client
    let session = server.session();
    let stats = session.embedding_caches().stats();
    assert!(
        stats.model_calls <= 80,
        "distinct strings must be embedded once across all clients, got {}",
        stats.model_calls
    );
    assert!(stats.cache_hits > 0);
    server.shutdown();
}

#[test]
fn admission_gate_rejects_overload_with_busy() {
    // a 1-slot, 0-queue server: while one slow query runs, any other RUN is
    // rejected as busy
    let mut server = Server::start(
        demo_session(),
        ServerConfig {
            max_inflight: 1,
            max_queued: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut blocker = Client::connect(addr).unwrap();
    blocker
        .request("PREPARE slow JOIN r.word s.word MODEL ft TOPK 4")
        .unwrap();
    let mut prober = Client::connect(addr).unwrap();
    prober
        .request("PREPARE q JOIN r.word s.word MODEL ft TOPK 1")
        .unwrap();

    // hammer from two threads so executions overlap; with a single slot at
    // least one request must observe `busy`
    let hammer = std::thread::spawn(move || {
        let mut busy = 0;
        for _ in 0..50 {
            match blocker.request("RUN slow").unwrap() {
                Response::Err(e) if e.starts_with("busy") => busy += 1,
                Response::Rows { .. } => {}
                other => panic!("unexpected response {other:?}"),
            }
        }
        busy
    });
    let mut busy = 0;
    for _ in 0..50 {
        match prober.request("RUN q").unwrap() {
            Response::Err(e) if e.starts_with("busy") => busy += 1,
            Response::Rows { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    busy += hammer.join().unwrap();
    let admission = server.admission();
    assert_eq!(admission.rejected as usize, busy);
    assert!(
        admission.admitted >= 50,
        "most requests must still be served"
    );
    server.shutdown();
}

#[test]
fn stats_reports_server_and_pool_state() {
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .request("PREPARE j JOIN r.word s.word MODEL ft TOPK 1")
        .unwrap();
    client.request("RUN j").unwrap();
    let Response::Ok(stats) = client.request("STATS").unwrap() else {
        panic!("expected OK stats");
    };
    for key in [
        "queries=",
        "admitted=",
        "p95_us=",
        "index_builds=",
        "embed_calls=",
        "pool_tasks=",
        "pool_workers=",
    ] {
        assert!(stats.contains(key), "STATS must report {key}: {stats}");
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_joins_all_threads() {
    let mut server = start_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .request("PREPARE j JOIN r.word s.word MODEL ft TOPK 1")
        .unwrap();
    client.request("RUN j").unwrap();
    // shutdown with the client still connected: the server must not hang
    server.shutdown();
    // second shutdown is a no-op
    server.shutdown();
    // new connections are refused (or dropped without response)
    assert!(
        Client::connect(addr)
            .and_then(|mut c| c.request("PING"))
            .is_err(),
        "a stopped server must not serve"
    );
}
