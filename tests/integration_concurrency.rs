//! Integration tests of the concurrent serving contract on a shared
//! session: many threads running prepared queries against the same state
//! must observe exactly one index build per cold key, no eviction of in-use
//! entries, isolated per-run reports, and byte-identical results.

use std::sync::Arc;

use cej_core::{ContextJoinSession, IndexJoinConfig, JoinStrategy, PreparedQuery};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_index::HnswParams;
use cej_relational::{LogicalPlan, SimilarityPredicate};
use cej_workload::{JoinWorkload, RelationSpec};

fn model() -> FastTextModel {
    FastTextModel::new(FastTextConfig {
        dim: 16,
        buckets: 2_000,
        ..FastTextConfig::default()
    })
    .unwrap()
}

fn shared_session() -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec {
            rows: 24,
            clusters: 4,
            variants_per_cluster: 4,
        },
        RelationSpec {
            rows: 80,
            clusters: 4,
            variants_per_cluster: 4,
        },
        99,
    );
    let mut session = ContextJoinSession::new();
    session.register_table("r", workload.outer.clone());
    session.register_table("s", workload.inner.clone());
    session.register_model("ft", model());
    session
}

fn join_plan() -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::scan("r"),
        LogicalPlan::scan("s"),
        "word",
        "word",
        "ft",
        SimilarityPredicate::TopK(2),
    )
}

/// Canonical fingerprint of a join result for equality checks.
type Fingerprint = Vec<(String, String)>;

fn fingerprint(report: &cej_core::ExecutionReport) -> Fingerprint {
    let l = report
        .table
        .column_by_name("l_word")
        .unwrap()
        .as_utf8()
        .unwrap()
        .to_vec();
    let r = report
        .table
        .column_by_name("r_word")
        .unwrap()
        .as_utf8()
        .unwrap()
        .to_vec();
    let mut pairs: Vec<(String, String)> = l.into_iter().zip(r).collect();
    pairs.sort();
    pairs
}

#[test]
fn concurrent_prepared_runs_share_one_index_build() {
    let mut session = shared_session();
    session.with_strategy(JoinStrategy::Index(IndexJoinConfig {
        params: HnswParams::tiny(),
        range_probe_k: 4,
    }));
    let session = session; // freeze configuration

    const THREADS: usize = 8;
    const RUNS_PER_THREAD: usize = 5;
    let prepared: Arc<PreparedQuery<'static>> =
        Arc::new(session.prepare(&join_plan()).unwrap().detach());

    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let prepared = prepared.clone();
        handles.push(std::thread::spawn(move || {
            let mut builds = 0u64;
            let mut fingerprints = Vec::new();
            for _ in 0..RUNS_PER_THREAD {
                let report = prepared.run().unwrap();
                builds += report.index_builds;
                fingerprints.push(fingerprint(&report));
            }
            (builds, fingerprints)
        }));
    }
    let results: Vec<(u64, Vec<Fingerprint>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // exactly one build across all threads and runs (single-flight)…
    let total_builds: u64 = results.iter().map(|(b, _)| b).sum();
    assert_eq!(total_builds, 1, "the cold key must be built exactly once");
    let stats = session.index_manager().stats();
    assert_eq!(stats.builds, 1);
    // …and the hit counter accounts for every other run
    assert_eq!(
        stats.hits,
        (THREADS * RUNS_PER_THREAD) as u64 - 1,
        "every non-building run must register as a hit"
    );
    assert_eq!(stats.resident, 1);

    // byte-identical results across every thread and run
    let reference = &results[0].1[0];
    for (_, fingerprints) in &results {
        for f in fingerprints {
            assert_eq!(f, reference, "concurrent runs must agree exactly");
        }
    }
}

#[test]
fn concurrent_runs_report_isolated_embedding_stats() {
    let session = shared_session();
    let prepared: Arc<PreparedQuery<'static>> =
        Arc::new(session.prepare(&join_plan()).unwrap().detach());
    // Warm the caches once: afterwards *every* run everywhere must report
    // exactly zero model calls — under the old snapshot-diff accounting a
    // run overlapping a cold run would have absorbed its calls.
    let warmup = prepared.run().unwrap();
    assert!(warmup.embedding_stats.model_calls > 0);

    let mut handles = Vec::new();
    for _ in 0..6 {
        let prepared = prepared.clone();
        handles.push(std::thread::spawn(move || {
            (0..4)
                .map(|_| prepared.run().unwrap().embedding_stats.model_calls)
                .collect::<Vec<u64>>()
        }));
    }
    for handle in handles {
        for calls in handle.join().unwrap() {
            assert_eq!(calls, 0, "warm runs must report zero model calls");
        }
    }
}

#[test]
fn session_handles_share_state_across_threads() {
    let session = shared_session();
    // clones are handles: a prepared query on one handle warms the caches
    // observed through every other handle
    let other = session.clone();
    let report = session.execute(&join_plan()).unwrap();
    assert!(report.embedding_stats.model_calls > 0);
    let t = std::thread::spawn(move || other.execute(&join_plan()).unwrap());
    let warm = t.join().unwrap();
    assert_eq!(
        warm.embedding_stats.model_calls, 0,
        "handle clones must share the embedding caches"
    );
    assert_eq!(fingerprint(&report), fingerprint(&warm));
}

#[test]
fn in_use_index_survives_concurrent_eviction_pressure() {
    let mut session = shared_session();
    session.with_strategy(JoinStrategy::Index(IndexJoinConfig {
        params: HnswParams::tiny(),
        range_probe_k: 4,
    }));
    let session = session;
    let prepared = session.prepare(&join_plan()).unwrap();
    prepared.run().unwrap();
    assert_eq!(session.index_manager().stats().resident, 1);

    // hold the resident index in use, then apply crushing budget pressure
    // from another thread: the held entry must survive
    let key = cej_core::IndexKey::new("s", "word", "ft", HnswParams::tiny());
    let held = session.index_manager().get(&key).expect("index resident");
    session.index_manager().set_budget(Some(1));
    assert_eq!(
        session.index_manager().stats().resident,
        1,
        "in-use entry must not be evicted by the budget"
    );
    // runs keep reusing it — zero rebuilds under pressure
    let report = prepared.run().unwrap();
    assert_eq!(report.index_builds, 0);
    assert_eq!(report.index_reuses, 1);
    drop(held);
    drop(prepared);
}
