//! Smoke coverage for the `examples/` directory.
//!
//! `cargo test` compiles every example alongside the test targets, so compile
//! rot is always caught.  This test goes one step further and *executes* the
//! examples, asserting on their output so a silent behavioural regression
//! (e.g. the quickstart matching zero pairs again) fails the suite.  The two
//! scan-vs-probe examples honour the `CEJ_SCALE` knob, so they are executed
//! at a drastically reduced scale (they build multi-thousand-vector HNSW
//! indexes at full size, far too slow without optimisations); CI
//! additionally runs them in release mode through the bench-smoke job.

use std::path::PathBuf;
use std::process::Command;

/// Directory holding the compiled example binaries for the active profile
/// (`target/<profile>/examples`, derived from this test binary's own path in
/// `target/<profile>/deps`).
fn examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // <hash-named test binary>
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
}

fn run_example_with_env(name: &str, env: &[(&str, &str)]) -> String {
    let bin = examples_dir().join(name);
    assert!(bin.exists(), "example binary missing: {}", bin.display());
    let mut cmd = Command::new(&bin);
    for (key, value) in env {
        cmd.env(key, value);
    }
    let output = cmd.output().expect("example should spawn");
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn run_example(name: &str) -> String {
    run_example_with_env(name, &[])
}

#[test]
fn quickstart_runs_and_matches_pairs() {
    let stdout = run_example("quickstart");
    // Regression guard: with the untrained hash-n-gram model the similarity
    // threshold must be calibrated so the two intended pairs (laptop ~
    // notebooks, bbq ~ grills) survive; the example once shipped with a
    // trained-model threshold (0.55) and matched nothing.
    assert!(
        stdout.contains("2 matched pairs"),
        "unexpected quickstart output:\n{stdout}"
    );
    assert!(stdout.contains("lightweight notebooks and laptops"));
    assert!(stdout.contains("charcoal barbecues and grills"));
    // the quickstart demonstrates EXPLAIN ANALYZE: per-operator actuals and
    // the histogram-estimated date-filter selectivity must both render
    assert!(
        stdout.contains("EXPLAIN ANALYZE") && stdout.contains("actual "),
        "quickstart must render estimated-vs-actual rows:\n{stdout}"
    );
    assert!(
        stdout.contains("(sel 0.400)"),
        "date-filter selectivity:\n{stdout}"
    );
}

#[test]
fn serving_example_round_trips_the_protocol() {
    let stdout = run_example("serving");
    assert!(
        stdout.contains("serving on 127.0.0.1:"),
        "server must bind:\n{stdout}"
    );
    // three warm rounds of the same prepared statement, byte-identical
    let checksums: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("matched rows (checksum"))
        .collect();
    assert_eq!(checksums.len(), 3, "three RUN rounds:\n{stdout}");
    // probe + stats + clean shutdown all happened
    assert!(stdout.contains("probe results:"), "{stdout}");
    assert!(
        stdout.contains("server stats:") && stdout.contains("pool_workers="),
        "{stdout}"
    );
    assert!(stdout.contains("server stopped cleanly"), "{stdout}");
}

#[test]
fn data_cleaning_runs_with_high_accuracy() {
    let stdout = run_example("data_cleaning");
    let accuracy_line = stdout
        .lines()
        .find(|l| l.contains("cleaned") && l.contains("correct"))
        .unwrap_or_else(|| panic!("no accuracy summary in output:\n{stdout}"));
    // The trained model should clean the synthetic misspellings near-perfectly;
    // fail loudly if accuracy ever collapses.
    let pct: f64 = accuracy_line
        .split('(')
        .nth(1)
        .and_then(|s| s.split('%').next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparsable accuracy line: {accuracy_line}"));
    assert!(pct >= 90.0, "data_cleaning accuracy dropped to {pct}%");
}

#[test]
fn near_duplicate_detection_runs_at_reduced_scale() {
    let stdout = run_example_with_env("near_duplicate_detection", &[("CEJ_SCALE", "0.01")]);
    assert!(
        stdout.contains("reference 200 x incoming 2"),
        "CEJ_SCALE was not honoured:\n{stdout}"
    );
    assert!(
        stdout.contains("advisor:"),
        "missing advisor line:\n{stdout}"
    );
    assert!(
        stdout.contains("index build time"),
        "missing index build report:\n{stdout}"
    );
}

#[test]
fn access_path_selection_runs_at_reduced_scale() {
    let stdout = run_example_with_env("access_path_selection", &[("CEJ_SCALE", "0.01")]);
    assert!(
        stdout.contains("inner 200 x outer 1"),
        "CEJ_SCALE was not honoured:\n{stdout}"
    );
    // One row per selectivity point of the sweep.
    for selectivity in ["10%", "25%", "50%", "75%", "100%"] {
        assert!(
            stdout.contains(selectivity),
            "missing {selectivity} row:\n{stdout}"
        );
    }
}
