//! Property-based tests (proptest) over the core join invariants.
//!
//! These exercise randomly shaped inputs rather than hand-picked cases:
//! operator equivalence, top-k cardinality bounds, threshold monotonicity,
//! batching invariance, and pre-filter containment.

use cej_core::{NljConfig, PrefetchNlJoin, TensorJoin, TensorJoinConfig};
use cej_relational::SimilarityPredicate;
use cej_storage::SelectionBitmap;
use cej_vector::{BufferBudget, Matrix, TopK};
use proptest::prelude::*;

/// Strategy: a row-major matrix with `rows` in [1, max_rows], values in
/// [-1, 1], fixed dimensionality.
fn matrix_strategy(max_rows: usize, dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows).prop_flat_map(move |rows| {
        proptest::collection::vec(-1.0f32..1.0, rows * dim)
            .prop_map(move |data| Matrix::from_flat(rows, dim, data).expect("shape consistent"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tensor_join_equals_nlj_for_threshold(
        left in matrix_strategy(12, 8),
        right in matrix_strategy(12, 8),
        threshold in 0.0f32..0.9,
    ) {
        let nlj = PrefetchNlJoin::new(NljConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(threshold))
            .unwrap();
        let tensor = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(threshold))
            .unwrap();
        prop_assert_eq!(nlj.pair_indices(), tensor.pair_indices());
    }

    #[test]
    fn topk_returns_at_most_k_per_left_row(
        left in matrix_strategy(8, 6),
        right in matrix_strategy(20, 6),
        k in 1usize..6,
    ) {
        let result = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::TopK(k))
            .unwrap();
        for l in 0..left.rows() {
            let count = result.pairs.iter().filter(|p| p.left == l).count();
            prop_assert_eq!(count, k.min(right.rows()));
        }
        // pair offsets are always in range
        prop_assert!(result.pairs.iter().all(|p| p.left < left.rows() && p.right < right.rows()));
    }

    #[test]
    fn stricter_thresholds_produce_subsets(
        left in matrix_strategy(10, 8),
        right in matrix_strategy(10, 8),
        t in 0.0f32..0.5,
        delta in 0.05f32..0.5,
    ) {
        let loose = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(t))
            .unwrap()
            .pair_indices();
        let strict = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(t + delta))
            .unwrap()
            .pair_indices();
        prop_assert!(strict.iter().all(|p| loose.contains(p)));
    }

    #[test]
    fn mini_batching_never_changes_results(
        left in matrix_strategy(15, 8),
        right in matrix_strategy(15, 8),
        budget_cells in 1usize..64,
        threshold in 0.0f32..0.8,
    ) {
        let unbatched = TensorJoin::new(
            TensorJoinConfig::default().with_budget(BufferBudget::unlimited()),
        )
        .join_matrices(&left, &right, SimilarityPredicate::Threshold(threshold))
        .unwrap();
        let batched = TensorJoin::new(
            TensorJoinConfig::default().with_budget(BufferBudget::from_bytes(budget_cells * 4)),
        )
        .join_matrices(&left, &right, SimilarityPredicate::Threshold(threshold))
        .unwrap();
        prop_assert_eq!(unbatched.pair_indices(), batched.pair_indices());
    }

    #[test]
    fn prefiltered_results_are_contained_in_unfiltered_results(
        left in matrix_strategy(10, 6),
        right in matrix_strategy(10, 6),
        left_mask in proptest::collection::vec(any::<bool>(), 10),
        threshold in 0.0f32..0.6,
    ) {
        let filter = SelectionBitmap::from_bools(left_mask[..left.rows()].to_vec());
        let unfiltered = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(threshold))
            .unwrap()
            .pair_indices();
        let filtered = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices_filtered(
                &left,
                &right,
                SimilarityPredicate::Threshold(threshold),
                Some(&filter),
                None,
            )
            .unwrap();
        // containment + filter respected
        prop_assert!(filtered.pair_indices().iter().all(|p| unfiltered.contains(p)));
        prop_assert!(filtered.pairs.iter().all(|p| filter.is_selected(p.left)));
    }

    #[test]
    fn scores_are_valid_cosines(
        left in matrix_strategy(8, 8),
        right in matrix_strategy(8, 8),
    ) {
        let result = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(-2.0))
            .unwrap();
        // every pair is reported exactly once and cosine scores stay in [-1, 1]
        prop_assert_eq!(result.len(), left.rows() * right.rows());
        prop_assert!(result.pairs.iter().all(|p| p.score >= -1.0 - 1e-4 && p.score <= 1.0 + 1e-4));
    }

    #[test]
    fn topk_collector_matches_full_sort(
        scores in proptest::collection::vec(-1.0f32..1.0, 1..200),
        k in 1usize..20,
    ) {
        let mut collector = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            collector.push(i, s);
        }
        let kept = collector.into_sorted();
        let mut expected: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        expected.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        expected.truncate(k);
        prop_assert_eq!(kept.len(), expected.len());
        for (got, want) in kept.iter().zip(expected.iter()) {
            prop_assert_eq!(got.id, want.0);
        }
    }
}
