//! Cross-operator equivalence: every physical formulation of the
//! context-enhanced join (naive NLJ, prefetch NLJ, tensor join, batched /
//! non-batched, single- / multi-threaded, scalar / SIMD kernels) must produce
//! the same logical result — the paper's optimisations are performance
//! rewrites, never semantic changes.

use cej_core::{NaiveNlJoin, NljConfig, PrefetchNlJoin, TensorJoin, TensorJoinConfig};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::SimilarityPredicate;
use cej_vector::{BufferBudget, Kernel};
use cej_workload::{uniform_matrix, JoinWorkload, RelationSpec};

fn model() -> FastTextModel {
    FastTextModel::new(FastTextConfig {
        dim: 24,
        buckets: 5_000,
        ..FastTextConfig::default()
    })
    .unwrap()
}

fn workload_strings() -> (Vec<String>, Vec<String>) {
    let w = JoinWorkload::generate(
        RelationSpec {
            rows: 15,
            clusters: 6,
            variants_per_cluster: 4,
        },
        RelationSpec {
            rows: 25,
            clusters: 6,
            variants_per_cluster: 4,
        },
        11,
    );
    let left = w
        .outer
        .column_by_name("word")
        .unwrap()
        .as_utf8()
        .unwrap()
        .to_vec();
    let right = w
        .inner
        .column_by_name("word")
        .unwrap()
        .as_utf8()
        .unwrap()
        .to_vec();
    (left, right)
}

#[test]
fn naive_prefetch_and_tensor_agree_on_strings() {
    let (left, right) = workload_strings();
    let m = model();
    let predicate = SimilarityPredicate::Threshold(0.75);

    let naive = NaiveNlJoin::new()
        .join(&m, &left, &right, predicate)
        .unwrap();
    let prefetch = PrefetchNlJoin::new(NljConfig::default())
        .join(&m, &left, &right, predicate)
        .unwrap();
    let tensor = TensorJoin::new(TensorJoinConfig::default())
        .join(&m, &left, &right, predicate)
        .unwrap();

    assert_eq!(naive.pair_indices(), prefetch.pair_indices());
    assert_eq!(naive.pair_indices(), tensor.pair_indices());
    assert!(
        !naive.is_empty(),
        "workload should produce at least one semantic match"
    );
}

#[test]
fn scores_agree_across_operators_within_float_tolerance() {
    let (left, right) = workload_strings();
    let m = model();
    let predicate = SimilarityPredicate::Threshold(0.75);
    let prefetch = PrefetchNlJoin::new(NljConfig::default())
        .join(&m, &left, &right, predicate)
        .unwrap();
    let tensor = TensorJoin::new(TensorJoinConfig::default())
        .join(&m, &left, &right, predicate)
        .unwrap();
    let ps = prefetch.sorted_pairs();
    let ts = tensor.sorted_pairs();
    assert_eq!(ps.len(), ts.len());
    for (a, b) in ps.iter().zip(ts.iter()) {
        assert!(
            (a.score - b.score).abs() < 1e-4,
            "score mismatch: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn kernel_thread_and_batching_variants_agree_on_matrices() {
    let left = uniform_matrix(50, 48, 21, true);
    let right = uniform_matrix(70, 48, 22, true);
    let predicate = SimilarityPredicate::Threshold(0.15);

    let reference = PrefetchNlJoin::new(NljConfig::default())
        .join_matrices(&left, &right, predicate)
        .unwrap()
        .pair_indices();

    let variants: Vec<Vec<(usize, usize)>> = vec![
        PrefetchNlJoin::new(NljConfig::default().with_kernel(Kernel::Scalar))
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices(),
        PrefetchNlJoin::new(NljConfig::default().with_threads(4))
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices(),
        TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices(),
        TensorJoin::new(TensorJoinConfig::default().with_kernel(Kernel::Scalar))
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices(),
        TensorJoin::new(TensorJoinConfig::default().with_threads(3))
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices(),
        TensorJoin::new(TensorJoinConfig::default().with_budget(BufferBudget::from_bytes(512)))
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices(),
        TensorJoin::new(TensorJoinConfig::default().without_inner_batching())
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices(),
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_eq!(v, &reference, "variant {i} diverged from the reference NLJ");
    }
}

#[test]
fn topk_variants_agree_on_matrices() {
    let left = uniform_matrix(12, 32, 31, true);
    let right = uniform_matrix(90, 32, 32, true);
    let predicate = SimilarityPredicate::TopK(4);

    let reference = PrefetchNlJoin::new(NljConfig::default())
        .join_matrices(&left, &right, predicate)
        .unwrap()
        .pair_indices();
    let tensor_batched = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices(&left, &right, predicate)
        .unwrap()
        .pair_indices();
    let tensor_mini =
        TensorJoin::new(TensorJoinConfig::default().with_budget(BufferBudget::from_bytes(4 * 200)))
            .join_matrices(&left, &right, predicate)
            .unwrap()
            .pair_indices();

    assert_eq!(reference, tensor_batched);
    assert_eq!(reference, tensor_mini);
    assert_eq!(reference.len(), 12 * 4);
}

#[test]
fn threshold_monotonicity_across_operators() {
    // A stricter threshold must produce a subset of a looser one, for every
    // operator.
    let left = uniform_matrix(30, 24, 41, true);
    let right = uniform_matrix(30, 24, 42, true);
    for loose_strict in [(0.0f32, 0.3f32), (0.2, 0.5)] {
        let (loose_t, strict_t) = loose_strict;
        let loose = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(loose_t))
            .unwrap()
            .pair_indices();
        let strict = TensorJoin::new(TensorJoinConfig::default())
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(strict_t))
            .unwrap()
            .pair_indices();
        assert!(strict.iter().all(|p| loose.contains(p)));
        assert!(strict.len() <= loose.len());
    }
}
