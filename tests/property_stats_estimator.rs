//! Property tests: histogram-estimated range selectivity converges on the
//! actual selectivity for uniform and Zipf-distributed columns.
//!
//! Equi-depth histograms bound the estimation error of a range predicate by
//! roughly one bucket's mass (~1/64 of the rows) plus interpolation noise
//! inside mixed buckets; these properties assert a conservative 0.08
//! absolute tolerance across random cutoffs, distributions, and comparison
//! operators — far tighter than the pre-statistics constant (0.5 for every
//! filter) could ever be.

use cej_relational::{col, estimate_selectivity, lit_i64, Expr};
use cej_storage::{TableBuilder, TableStats};
use cej_workload::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOLERANCE: f64 = 0.08;

fn uniform_column(n: usize, domain: i64, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..domain.max(1))).collect()
}

fn zipf_column(n: usize, values: usize, seed: u64) -> Vec<i64> {
    let zipf = Zipf::new(values.max(2), 1.05);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| zipf.sample(&mut rng) as i64).collect()
}

fn stats_for(values: Vec<i64>) -> TableStats {
    TableBuilder::new()
        .int64("x", values)
        .build()
        .expect("single-column table")
        .analyze()
}

fn actual_fraction(values: &[i64], predicate: impl Fn(i64) -> bool) -> f64 {
    values.iter().filter(|&&v| predicate(v)).count() as f64 / values.len().max(1) as f64
}

type RangeCase = (Expr, Box<dyn Fn(i64) -> bool>);

/// Runs one estimate-vs-actual comparison for all four range operators.
fn assert_range_convergence(values: Vec<i64>, cutoff: i64) {
    let stats = stats_for(values.clone());
    let cases: Vec<RangeCase> = vec![
        (col("x").lt(lit_i64(cutoff)), Box::new(move |v| v < cutoff)),
        (
            col("x").lt_eq(lit_i64(cutoff)),
            Box::new(move |v| v <= cutoff),
        ),
        (col("x").gt(lit_i64(cutoff)), Box::new(move |v| v > cutoff)),
        (
            col("x").gt_eq(lit_i64(cutoff)),
            Box::new(move |v| v >= cutoff),
        ),
    ];
    for (expr, predicate) in cases {
        let est = estimate_selectivity(&expr, &stats);
        let actual = actual_fraction(&values, predicate.as_ref());
        assert!(
            (est - actual).abs() <= TOLERANCE,
            "{expr}: estimated {est:.4} vs actual {actual:.4} (n={})",
            values.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn uniform_range_selectivity_converges(
        n in 256usize..1500,
        domain in 10i64..200,
        cutoff_frac in 0.0f64..1.2,
        seed in 0u64..10_000,
    ) {
        let cutoff = (domain as f64 * cutoff_frac) as i64;
        assert_range_convergence(uniform_column(n, domain, seed), cutoff);
    }

    #[test]
    fn zipf_range_selectivity_converges(
        n in 256usize..1500,
        values in 10usize..150,
        cutoff in 0i64..160,
        seed in 0u64..10_000,
    ) {
        assert_range_convergence(zipf_column(n, values, seed), cutoff);
    }

    #[test]
    fn zipf_equality_tracks_heavy_hitters(
        n in 512usize..1500,
        values in 10usize..100,
        target in 0i64..100,
        seed in 0u64..10_000,
    ) {
        let column = zipf_column(n, values, seed);
        let stats = stats_for(column.clone());
        let est = estimate_selectivity(&col("x").eq(lit_i64(target)), &stats);
        let actual = actual_fraction(&column, |v| v == target);
        // equality errs by at most the non-degenerate share of one value:
        // heavy hitters are exact (degenerate buckets), the tail is 1/ndv
        prop_assert!(
            (est - actual).abs() <= TOLERANCE,
            "x = {target}: estimated {est:.4} vs actual {actual:.4}"
        );
    }

    #[test]
    fn conjunctions_stay_bounded(
        n in 512usize..1200,
        cut_a in 0i64..100,
        cut_b in 0i64..100,
        seed in 0u64..10_000,
    ) {
        // independence can bite on correlated columns; on independent ones
        // the product rule must converge
        let a = uniform_column(n, 100, seed);
        let b = uniform_column(n, 100, seed.wrapping_add(7919));
        let table = TableBuilder::new()
            .int64("a", a.clone())
            .int64("b", b.clone())
            .build()
            .unwrap();
        let stats = table.analyze();
        let expr = col("a").lt(lit_i64(cut_a)).and(col("b").lt(lit_i64(cut_b)));
        let est = estimate_selectivity(&expr, &stats);
        let actual = a
            .iter()
            .zip(&b)
            .filter(|&(&x, &y)| x < cut_a && y < cut_b)
            .count() as f64
            / n as f64;
        prop_assert!(
            (est - actual).abs() <= 2.0 * TOLERANCE,
            "conjunction: estimated {est:.4} vs actual {actual:.4}"
        );
    }
}

#[test]
fn estimates_beat_the_old_constant_on_skew() {
    // The regression the tentpole exists to fix: on a skewed column the 0.5
    // constant is off by >4x while the histogram stays within tolerance.
    let column = zipf_column(2000, 50, 1);
    let stats = stats_for(column.clone());
    let expr = col("x").lt(lit_i64(1)); // just the heavy hitter
    let est = estimate_selectivity(&expr, &stats);
    let actual = actual_fraction(&column, |v| v < 1);
    assert!((est - actual).abs() <= TOLERANCE);
    assert!(
        (0.5 - actual).abs() > 2.0 * (est - actual).abs(),
        "statistics must out-estimate the constant: actual {actual}, est {est}"
    );
}
