//! Property test: the vectorized batch executor is byte-identical to the
//! row-at-a-time reference executor — at every thread budget.
//!
//! For randomly sized workloads, random relational filter predicates, all
//! four join strategies, and batch sizes straddling the table sizes
//! (1, 7, 1024), executing the *same* physical plan under
//! [`ExecMode::Row`] and [`ExecMode::Batch`] must produce the same output
//! table (rows, order, and similarity scores bit-for-bit), the same
//! per-operator row actuals, and the same matched-pair count.
//!
//! The sweep runs every batch configuration under worker-pool budgets of
//! 1, 2, and 4 threads (explicit [`cej_exec::ExecPool`]s, so one process
//! covers all budgets regardless of `CEJ_THREADS`): morsel-driven parallel
//! execution must not change a single byte relative to the serial pull
//! loop, only timing.

use cej_core::{
    ContextJoinSession, ExecContext, ExecMode, IndexJoinConfig, JoinStrategy, NljConfig,
    TensorJoinConfig,
};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_index::HnswParams;
use cej_relational::{col, lit_i64, LogicalPlan, SimilarityPredicate};
use cej_storage::Table;
use cej_workload::{JoinWorkload, RelationSpec};
use proptest::prelude::*;

fn session(outer_rows: usize, inner_rows: usize, strategy: JoinStrategy) -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(outer_rows),
        RelationSpec::with_rows(inner_rows),
        11,
    );
    let mut s = ContextJoinSession::new();
    s.register_table("r", workload.outer.clone());
    s.register_table("s", workload.inner.clone());
    s.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 2_000,
            ..FastTextConfig::default()
        })
        .expect("model construction"),
    );
    s.with_strategy(strategy);
    s
}

fn strategy_for(idx: usize) -> JoinStrategy {
    match idx {
        0 => JoinStrategy::NaiveNlj,
        1 => JoinStrategy::PrefetchNlj(NljConfig::default()),
        2 => JoinStrategy::Tensor(TensorJoinConfig::default()),
        _ => JoinStrategy::Index(IndexJoinConfig {
            params: HnswParams::tiny(),
            range_probe_k: 3,
        }),
    }
}

/// Executes the session's physical plan for `plan` under `mode` with an
/// explicit worker-pool budget, returning everything the equivalence
/// property compares.
fn run_mode(
    s: &ContextJoinSession,
    plan: &LogicalPlan,
    mode: ExecMode,
    threads: usize,
) -> (Table, Vec<u64>, usize) {
    let prepared = s.prepare(plan).expect("prepare");
    let registry = s.model_registry();
    let ctx = ExecContext {
        catalog: s.catalog(),
        registry: &registry,
        embeddings: s.embedding_caches(),
        indexes: s.index_manager(),
        pool: cej_exec::ExecPool::new(threads),
    };
    let out = prepared
        .physical_plan()
        .execute_with(&ctx, mode)
        .expect("execute");
    (out.table, out.operator_rows, out.stats.matched_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batch_executor_matches_row_executor_at_every_thread_budget(
        outer_rows in 1usize..10,
        inner_rows in 1usize..40,
        strategy_idx in 0usize..4,
        cut in 0i64..101,
        use_topk in any::<bool>(),
        k in 1usize..4,
        threshold in -0.5f32..0.9,
        batch_idx in 0usize..3,
    ) {
        let s = session(outer_rows, inner_rows, strategy_for(strategy_idx));
        let predicate = if use_topk {
            SimilarityPredicate::TopK(k)
        } else {
            SimilarityPredicate::Threshold(threshold)
        };
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").select(col("filter").lt(lit_i64(cut))),
            "word",
            "word",
            "ft",
            predicate,
        );
        let batch_rows = [1usize, 7, 1024][batch_idx];

        let (row_table, row_actuals, row_pairs) = run_mode(&s, &plan, ExecMode::Row, 1);

        // every (thread budget × morsel size) combination must reproduce the
        // row executor bit for bit — morsel parallelism is pure speed
        for threads in [1usize, 2, 4] {
            let (batch_table, batch_actuals, batch_pairs) =
                run_mode(&s, &plan, ExecMode::Batch { batch_rows }, threads);

            // Bitwise table equality: same rows in the same order, similarity
            // scores (Float64 column) identical to the last bit.
            prop_assert_eq!(&row_table, &batch_table);
            prop_assert_eq!(&row_actuals, &batch_actuals);
            prop_assert_eq!(row_pairs, batch_pairs);
        }
    }

    /// The relational hash join under the same contract: partitioned
    /// parallel builds and parallel probe morsels match the serial build at
    /// every thread budget and morsel size — including fully skewed keys
    /// (a single hot key puts the entire build side in one partition).
    #[test]
    fn parallel_hash_join_matches_serial_including_skew(
        rows in 1usize..30,
        skewed in any::<bool>(),
        batch_idx in 0usize..3,
    ) {
        let key = |i: usize| if skewed { 7 } else { (i % 5) as i64 };
        let outer = cej_storage::TableBuilder::new()
            .int64("filter", (0..rows).map(key).collect::<Vec<i64>>())
            .utf8("word", (0..rows).map(|i| format!("w{i}")).collect::<Vec<String>>())
            .build()
            .expect("outer table");
        let inner_rows = rows.max(2);
        let inner = cej_storage::TableBuilder::new()
            .int64("rfilter", (0..inner_rows).map(key).collect::<Vec<i64>>())
            .utf8(
                "rword",
                (0..inner_rows).map(|i| format!("v{i}")).collect::<Vec<String>>(),
            )
            .build()
            .expect("inner table");
        let mut s = ContextJoinSession::new();
        s.register_table("r", outer);
        s.register_table("s", inner);
        let plan = LogicalPlan::join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "filter",
            "rfilter",
        );
        let batch_rows = [1usize, 7, 1024][batch_idx];

        let (row_table, row_actuals, row_pairs) = run_mode(&s, &plan, ExecMode::Row, 1);
        for threads in [1usize, 2, 4] {
            let (batch_table, batch_actuals, batch_pairs) =
                run_mode(&s, &plan, ExecMode::Batch { batch_rows }, threads);
            prop_assert_eq!(&row_table, &batch_table);
            prop_assert_eq!(&row_actuals, &batch_actuals);
            prop_assert_eq!(row_pairs, batch_pairs);
        }
    }
}
