//! Property test: the vectorized batch executor is byte-identical to the
//! row-at-a-time reference executor.
//!
//! For randomly sized workloads, random relational filter predicates, all
//! four join strategies, and batch sizes straddling the table sizes
//! (1, 7, 1024), executing the *same* physical plan under
//! [`ExecMode::Row`] and [`ExecMode::Batch`] must produce the same output
//! table (rows, order, and similarity scores bit-for-bit), the same
//! per-operator row actuals, and the same matched-pair count.

use cej_core::{
    ContextJoinSession, ExecContext, ExecMode, IndexJoinConfig, JoinStrategy, NljConfig,
    TensorJoinConfig,
};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_index::HnswParams;
use cej_relational::{col, lit_i64, LogicalPlan, SimilarityPredicate};
use cej_storage::Table;
use cej_workload::{JoinWorkload, RelationSpec};
use proptest::prelude::*;

fn session(outer_rows: usize, inner_rows: usize, strategy: JoinStrategy) -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(outer_rows),
        RelationSpec::with_rows(inner_rows),
        11,
    );
    let mut s = ContextJoinSession::new();
    s.register_table("r", workload.outer.clone());
    s.register_table("s", workload.inner.clone());
    s.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 2_000,
            ..FastTextConfig::default()
        })
        .expect("model construction"),
    );
    s.with_strategy(strategy);
    s
}

fn strategy_for(idx: usize) -> JoinStrategy {
    match idx {
        0 => JoinStrategy::NaiveNlj,
        1 => JoinStrategy::PrefetchNlj(NljConfig::default()),
        2 => JoinStrategy::Tensor(TensorJoinConfig::default()),
        _ => JoinStrategy::Index(IndexJoinConfig {
            params: HnswParams::tiny(),
            range_probe_k: 3,
        }),
    }
}

/// Executes the session's physical plan for `plan` under `mode`, returning
/// everything the equivalence property compares.
fn run_mode(
    s: &ContextJoinSession,
    plan: &LogicalPlan,
    mode: ExecMode,
) -> (Table, Vec<u64>, usize) {
    let prepared = s.prepare(plan).expect("prepare");
    let registry = s.model_registry();
    let ctx = ExecContext {
        catalog: s.catalog(),
        registry: &registry,
        embeddings: s.embedding_caches(),
        indexes: s.index_manager(),
    };
    let out = prepared
        .physical_plan()
        .execute_with(&ctx, mode)
        .expect("execute");
    (out.table, out.operator_rows, out.stats.matched_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batch_executor_matches_row_executor(
        outer_rows in 1usize..10,
        inner_rows in 1usize..40,
        strategy_idx in 0usize..4,
        cut in 0i64..101,
        use_topk in any::<bool>(),
        k in 1usize..4,
        threshold in -0.5f32..0.9,
        batch_idx in 0usize..3,
    ) {
        let s = session(outer_rows, inner_rows, strategy_for(strategy_idx));
        let predicate = if use_topk {
            SimilarityPredicate::TopK(k)
        } else {
            SimilarityPredicate::Threshold(threshold)
        };
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").select(col("filter").lt(lit_i64(cut))),
            "word",
            "word",
            "ft",
            predicate,
        );
        let batch_rows = [1usize, 7, 1024][batch_idx];

        let (row_table, row_actuals, row_pairs) = run_mode(&s, &plan, ExecMode::Row);
        let (batch_table, batch_actuals, batch_pairs) =
            run_mode(&s, &plan, ExecMode::Batch { batch_rows });

        // Bitwise table equality: same rows in the same order, similarity
        // scores (Float64 column) identical to the last bit.
        prop_assert_eq!(row_table, batch_table);
        prop_assert_eq!(row_actuals, batch_actuals);
        prop_assert_eq!(row_pairs, batch_pairs);
    }
}
