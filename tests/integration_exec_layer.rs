//! Workspace-level tests of the shared execution layer: the operators that
//! route through `cej_exec::ExecPool` must produce thread-count-invariant
//! results, and the batched parallel HNSW construction must be search-
//! equivalent (within tolerance) to the classic sequential build.

use cej_core::{NljConfig, PrefetchNlJoin, TensorJoin, TensorJoinConfig};
use cej_exec::ExecPool;
use cej_index::{self_probe_recall, HnswIndex, HnswParams};
use cej_relational::SimilarityPredicate;
use cej_workload::clustered_matrix;

#[test]
fn joins_are_invariant_across_pool_sizes() {
    let (left, _) = clustered_matrix(90, 24, 6, 0.1, 41);
    let (right, _) = clustered_matrix(130, 24, 6, 0.1, 42);
    for predicate in [
        SimilarityPredicate::Threshold(0.9),
        SimilarityPredicate::TopK(4),
    ] {
        let nlj_serial = PrefetchNlJoin::new(NljConfig::default().with_threads(1))
            .join_matrices(&left, &right, predicate)
            .unwrap();
        let tensor_serial = TensorJoin::new(TensorJoinConfig::default().with_threads(1))
            .join_matrices(&left, &right, predicate)
            .unwrap();
        for threads in [2, 5, 8] {
            let nlj = PrefetchNlJoin::new(NljConfig::default().with_threads(threads))
                .join_matrices(&left, &right, predicate)
                .unwrap();
            assert_eq!(
                nlj_serial.pair_indices(),
                nlj.pair_indices(),
                "NLJ drifted at {threads} threads"
            );
            let tensor = TensorJoin::new(TensorJoinConfig::default().with_threads(threads))
                .join_matrices(&left, &right, predicate)
                .unwrap();
            assert_eq!(
                tensor_serial.pair_indices(),
                tensor.pair_indices(),
                "tensor join drifted at {threads} threads"
            );
        }
        // The two operators agree with each other, as always.
        assert_eq!(nlj_serial.pair_indices(), tensor_serial.pair_indices());
    }
}

#[test]
fn parallel_hnsw_build_matches_sequential_recall() {
    // The near_duplicate_detection workload in miniature: clustered
    // reference vectors, probes answered by both construction modes.
    let (vectors, _) = clustered_matrix(1200, 32, 20, 0.05, 7);
    let params = HnswParams::tiny().with_ef_search(96);
    let sequential =
        HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(1)).unwrap();
    let batched = HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(4)).unwrap();
    let seq = self_probe_recall(&sequential, &vectors, 10, 29).unwrap();
    let par = self_probe_recall(&batched, &vectors, 10, 29).unwrap();
    assert!(
        (seq - par).abs() <= 0.01,
        "sequential recall {seq} vs batched recall {par} drifted beyond tolerance"
    );
    assert!(seq > 0.9, "sequential recall {seq} unexpectedly low");
}

#[test]
fn embed_batch_is_invariant_across_pool_sizes() {
    use cej_embedding::{CachedEmbedder, Embedder, FastTextConfig, FastTextModel};
    let model = FastTextModel::new(FastTextConfig {
        dim: 24,
        buckets: 2_000,
        ..FastTextConfig::default()
    })
    .unwrap();
    let inputs: Vec<String> = (0..60)
        .map(|i| format!("word{} token{}", i % 17, i % 5))
        .collect();
    // The global pool drives embed_batch; whatever its size, the batch must
    // equal the serial per-input path in order and content.
    let batch = model.embed_batch(&inputs);
    assert_eq!(batch.rows(), inputs.len());
    for (i, s) in inputs.iter().enumerate() {
        assert_eq!(batch.row(i).unwrap(), model.embed(s).as_slice());
    }
    // The caching wrapper keeps exact model-call accounting on the batch
    // path: one call per distinct input, the rest hits.
    let cached = CachedEmbedder::new(model);
    let batch2 = cached.embed_batch(&inputs);
    assert_eq!(batch2.rows(), inputs.len());
    let distinct: std::collections::HashSet<&String> = inputs.iter().collect();
    let stats = cached.stats();
    assert_eq!(stats.model_calls, distinct.len() as u64);
    assert_eq!(stats.total_requests(), inputs.len() as u64);
}
