//! Integration tests for the statistics-driven planner: EXPLAIN ANALYZE
//! estimated-vs-actual reporting, threshold bind parameters, the index
//! memory budget, and plan-time schema/type errors — all through the public
//! session API.

use cej_core::{
    q_error, sim_gte, AccessPath, AccessPathAdvisor, ContextJoinSession, CoreError, CostModel,
    CostParameters, IndexJoinConfig, JoinStrategy,
};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_index::HnswParams;
use cej_relational::{col, lit_i64, LogicalPlan, RelationalError, SimilarityPredicate};
use cej_workload::{JoinWorkload, RelationSpec};

fn model(dim: usize) -> FastTextModel {
    FastTextModel::new(FastTextConfig {
        dim,
        buckets: 5_000,
        ..FastTextConfig::default()
    })
    .expect("model construction")
}

fn session(outer_rows: usize, inner_rows: usize) -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(outer_rows),
        RelationSpec::with_rows(inner_rows),
        7,
    );
    let mut s = ContextJoinSession::new();
    s.register_table("r", workload.outer.clone());
    s.register_table("s", workload.inner.clone());
    s.register_model("ft", model(16));
    s
}

fn filtered_join(cut: i64, predicate: SimilarityPredicate) -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::scan("r"),
        LogicalPlan::scan("s").select(col("filter").lt(lit_i64(cut))),
        "word",
        "word",
        "ft",
        predicate,
    )
}

#[test]
fn explain_analyze_reports_actuals_matching_the_execution_report() {
    let s = session(30, 300);
    let prepared = s
        .prepare(&filtered_join(40, SimilarityPredicate::TopK(1)))
        .expect("prepare");
    let analyzed = prepared.explain_analyze().expect("explain analyze");

    // every operator of the plan carries an actual-row annotation
    let operator_count = prepared.physical_plan().operator_count();
    assert_eq!(analyzed.report.operator_rows.len(), operator_count);
    assert_eq!(
        analyzed.text.matches("actual ").count(),
        operator_count,
        "every operator line must carry an actual count:\n{}",
        analyzed.text
    );
    assert!(analyzed.text.contains("q-err"), "{}", analyzed.text);

    // the root operator's actual equals the report's output table
    assert_eq!(
        analyzed.report.operator_rows[0],
        analyzed.report.table.num_rows() as u64
    );
    assert_eq!(
        analyzed.report.matched_pairs,
        analyzed.report.table.num_rows()
    );

    // top-1 join: one output row per outer row, estimated exactly
    let est = prepared.physical_plan().estimate().rows;
    assert_eq!(q_error(est, analyzed.report.operator_rows[0] as f64), 1.0);
}

#[test]
fn filtered_scan_estimates_meet_the_q_error_bar() {
    let s = session(20, 500);
    for cut in [10, 30, 60, 90] {
        let plan = LogicalPlan::scan("s").select(col("filter").lt(lit_i64(cut)));
        let prepared = s.prepare(&plan).expect("prepare");
        let est = prepared.physical_plan().estimate().rows;
        let actual = prepared.run().expect("run").table.num_rows() as f64;
        let q = q_error(est, actual);
        assert!(
            q <= 2.0,
            "filter<{cut}: q-error {q:.3} (est {est:.1}, actual {actual}) exceeds 2.0"
        );
    }
}

#[test]
fn filter_actuals_count_selected_lanes_not_batches() {
    // 5 000 rows span five 1 024-row execution batches; a filter keeping a
    // single row must report `actual 1` — a batch-granular accounting bug
    // would report per-batch counts (multiples of the batch size or the
    // batch count) instead of selected lanes.
    let s = session(10, 5_000);
    let plan = LogicalPlan::scan("s").select(col("id").eq(lit_i64(4_321)));
    let prepared = s.prepare(&plan).expect("prepare");
    let analyzed = prepared.explain_analyze().expect("explain analyze");
    assert_eq!(analyzed.report.table.num_rows(), 1);
    assert_eq!(analyzed.report.operator_rows, vec![1, 5_000]);
    assert!(
        analyzed.text.contains("actual 1;"),
        "the filter line must carry the selected-lane actual:\n{}",
        analyzed.text
    );
    assert!(analyzed.text.contains("actual 5000;"), "{}", analyzed.text);
}

#[test]
fn session_explain_analyze_convenience_and_builder() {
    let s = session(10, 60);
    let via_session = s
        .explain_analyze(&filtered_join(50, SimilarityPredicate::TopK(1)))
        .expect("session explain_analyze");
    assert!(via_session.text.contains("actual "));
    assert!(format!("{via_session}").contains("TableScan"));
    let via_builder = s
        .query("r")
        .ejoin("s", ("word", "word"), "ft", cej_core::top_k(1))
        .explain_analyze()
        .expect("builder explain_analyze");
    assert!(via_builder.text.contains("actual "));
}

#[test]
fn bind_threshold_serves_a_family_without_replanning() {
    let s = session(25, 120);
    let prepared = s
        .prepare(&filtered_join(100, sim_gte(0.5)))
        .expect("prepare");

    let strict = prepared.bind_threshold(0.95).expect("bind strict");
    let loose = prepared.bind_threshold(-1.0).expect("bind loose");

    // no replanning: operator shape and access path are untouched
    assert_eq!(
        prepared.physical_plan().join_nodes()[0].access_path,
        strict.physical_plan().join_nodes()[0].access_path
    );
    assert_eq!(
        prepared.physical_plan().operator_count(),
        strict.physical_plan().operator_count()
    );

    // bind-time re-estimation: a looser threshold estimates more rows
    let est_strict = strict.physical_plan().join_nodes()[0].est.rows;
    let est_loose = loose.physical_plan().join_nodes()[0].est.rows;
    assert!(
        est_loose > est_strict,
        "loose {est_loose} must exceed strict {est_strict}"
    );

    // execution respects the bound threshold: results are nested subsets
    let rows_strict = strict.run().expect("strict run").table.num_rows();
    let rows_base = prepared.run().expect("base run").table.num_rows();
    let rows_loose = loose.run().expect("loose run").table.num_rows();
    assert!(rows_strict <= rows_base && rows_base <= rows_loose);
    // sim >= -1 keeps every pair of the filtered cross product
    assert_eq!(rows_loose, 25 * 120);

    // the reported optimized plan reflects the bound value
    let report = strict.run().expect("strict rerun");
    assert!(format!("{}", report.optimized_plan).contains("sim >= 0.95"));

    // a top-k plan has no threshold to bind
    let topk = s
        .prepare(&filtered_join(100, SimilarityPredicate::TopK(1)))
        .expect("prepare topk");
    assert!(matches!(
        topk.bind_threshold(0.5),
        Err(CoreError::InvalidInput(_))
    ));

    // operators *above* the join re-estimate at bind time too: the root
    // filter over `similarity` derives its cardinality from the join's
    let above = filtered_join(100, sim_gte(0.5))
        .select(col("similarity").gt_eq(cej_relational::lit_f64(0.0)));
    let prepared_above = s.prepare(&above).expect("prepare filter-above-join");
    let loose_above = prepared_above.bind_threshold(-1.0).expect("bind above");
    assert!(
        loose_above.physical_plan().estimate().rows
            > prepared_above.physical_plan().estimate().rows,
        "the root filter's estimate must track the re-bound join below it"
    );
}

#[test]
fn index_budget_evicts_lru_and_reports_in_execution_report() {
    let mut s = session(10, 80);
    s.with_strategy(JoinStrategy::Index(IndexJoinConfig {
        params: HnswParams::tiny(),
        range_probe_k: 3,
    }));
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("r"),
        LogicalPlan::scan("s"),
        "word",
        "word",
        "ft",
        SimilarityPredicate::TopK(1),
    );
    // a budget below a single index: the index being built/used is
    // protected, so the cold run keeps it resident without evictions
    s.with_index_budget(1);
    let cold = s.execute(&plan).expect("cold run");
    assert_eq!(cold.index_builds, 1);
    assert_eq!(cold.index_evictions, 0);
    let resident_bytes = s.index_manager().stats().memory_bytes;
    assert!(resident_bytes > 0);

    // building under a different key must evict the now-unprotected LRU one
    s.with_strategy(JoinStrategy::Index(IndexJoinConfig {
        params: HnswParams::tiny().with_ef_search(99),
        range_probe_k: 3,
    }));
    let second = s.execute(&plan).expect("second run");
    assert_eq!(second.index_builds, 1, "different params → different key");
    assert!(
        second.index_evictions >= 1,
        "over-budget insert must evict the LRU index"
    );
    assert_eq!(s.index_manager().stats().resident, 1);
    assert!(s.index_manager().stats().evictions >= 1);
    assert_eq!(s.index_manager().budget(), Some(1));
}

#[test]
fn plan_time_type_errors_via_the_session() {
    let s = session(10, 20);
    // ejoin on a non-string column fails at prepare() with a typed error
    let non_string = LogicalPlan::e_join(
        LogicalPlan::scan("r"),
        LogicalPlan::scan("s"),
        "id",
        "word",
        "ft",
        SimilarityPredicate::TopK(1),
    );
    assert!(matches!(
        s.prepare(&non_string).map(|_| ()),
        Err(CoreError::Relational(RelationalError::TypeError(_)))
    ));
    // unknown filter column fails at prepare()
    let bad_filter = LogicalPlan::scan("s").select(col("ghost").gt(lit_i64(1)));
    assert!(matches!(
        s.prepare(&bad_filter).map(|_| ()),
        Err(CoreError::Relational(RelationalError::UnknownColumn(_)))
    ));
    // ill-typed predicate fails at prepare()
    let bad_type = LogicalPlan::scan("s").select(col("word").gt(lit_i64(1)));
    assert!(matches!(
        s.prepare(&bad_type).map(|_| ()),
        Err(CoreError::Relational(RelationalError::TypeError(_)))
    ));
}

#[test]
fn advisor_tracks_inner_selectivity_through_the_session() {
    // A probe-friendly cost model brings the paper's selectivity crossover
    // (Figures 15-17) inside a small test workload; the only difference
    // between the two queries is the inner filter cutoff.
    let mut s = session(50, 2_000);
    s.with_advisor(AccessPathAdvisor::new(CostModel::new(CostParameters {
        index_probe_cost: 20.0,
        ..CostParameters::default()
    })));
    let low = s
        .prepare(&filtered_join(5, SimilarityPredicate::TopK(1)))
        .expect("low prepare");
    let high = s
        .prepare(&filtered_join(95, SimilarityPredicate::TopK(1)))
        .expect("high prepare");
    let low_node = low.physical_plan().join_nodes()[0];
    let high_node = high.physical_plan().join_nodes()[0];
    assert!(low_node.est_inner_selectivity < 0.12);
    assert!(high_node.est_inner_selectivity > 0.8);
    assert_eq!(low_node.access_path, AccessPath::TensorScan);
    assert_eq!(high_node.access_path, AccessPath::IndexProbe);
    // and the executed paths match the plans
    assert_eq!(
        low.run().expect("low run").access_path,
        Some(AccessPath::TensorScan)
    );
    assert_eq!(
        high.run().expect("high run").access_path,
        Some(AccessPath::IndexProbe)
    );
}
