//! End-to-end integration: workload generation → model training → declarative
//! plan → optimised execution → joined table, spanning every crate.

use cej_core::{ContextJoinSession, JoinStrategy, NljConfig, TensorJoinConfig};
use cej_embedding::{train_on_corpus, FastTextConfig, FastTextModel, TrainingConfig};
use cej_relational::{col, lit_i64, LogicalPlan, SimilarityPredicate};
use cej_workload::{CorpusGenerator, JoinWorkload, RelationSpec, WordGenerator};

fn trained_model(seed: u64) -> FastTextModel {
    let mut words = WordGenerator::new(seed);
    let clusters = words.clusters(8, 5);
    let corpus = CorpusGenerator::new(seed)
        .with_noise(0.05)
        .generate(&clusters, 200);
    let mut model = FastTextModel::new(FastTextConfig {
        dim: 32,
        buckets: 20_000,
        ..FastTextConfig::default()
    })
    .unwrap();
    train_on_corpus(&mut model, &corpus, &TrainingConfig::default()).unwrap();
    model
}

fn workload() -> JoinWorkload {
    JoinWorkload::generate(
        RelationSpec {
            rows: 40,
            clusters: 8,
            variants_per_cluster: 5,
        },
        RelationSpec {
            rows: 80,
            clusters: 8,
            variants_per_cluster: 5,
        },
        42,
    )
}

fn session_with(workload: &JoinWorkload, model: FastTextModel) -> ContextJoinSession {
    let mut session = ContextJoinSession::new();
    session.register_table("outer_rel", workload.outer.clone());
    session.register_table("inner_rel", workload.inner.clone());
    session.register_model("fasttext", model);
    session
}

#[test]
fn semantic_join_recovers_ground_truth_clusters() {
    let w = workload();
    let mut session = session_with(&w, trained_model(42));
    session.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));

    // top-1 semantic match for every outer row
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("outer_rel"),
        LogicalPlan::scan("inner_rel"),
        "word",
        "word",
        "fasttext",
        SimilarityPredicate::TopK(1),
    );
    let report = session.execute(&plan).unwrap();
    assert_eq!(report.table.num_rows(), w.outer.num_rows());

    // Check cluster agreement using the ground-truth labels: the matched
    // inner word should usually come from the same cluster as the outer word.
    let outer_ids = report
        .table
        .column_by_name("l_id")
        .unwrap()
        .as_int64()
        .unwrap();
    let inner_ids = report
        .table
        .column_by_name("r_id")
        .unwrap()
        .as_int64()
        .unwrap();
    let mut correct = 0;
    for (o, i) in outer_ids.iter().zip(inner_ids.iter()) {
        if w.outer_labels[*o as usize] == w.inner_labels[*i as usize] {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / outer_ids.len() as f64;
    assert!(accuracy > 0.8, "semantic top-1 accuracy {accuracy} too low");
}

#[test]
fn relational_filter_restricts_join_and_model_work() {
    let w = workload();
    let session = session_with(&w, trained_model(7));
    let unfiltered_plan = LogicalPlan::e_join(
        LogicalPlan::scan("outer_rel"),
        LogicalPlan::scan("inner_rel"),
        "word",
        "word",
        "fasttext",
        SimilarityPredicate::Threshold(0.8),
    );
    let filtered_plan = unfiltered_plan
        .clone()
        .select(col("filter").lt(lit_i64(30)));

    let unfiltered = session.execute(&unfiltered_plan).unwrap();
    let filtered = session.execute(&filtered_plan).unwrap();

    // Model calls shrink because the filter was pushed below the embedding.
    assert!(filtered.embedding_stats.model_calls < unfiltered.embedding_stats.model_calls);
    // Every surviving row satisfies the filter (it is a left-side column).
    let filter_vals = filtered
        .table
        .column_by_name("l_filter")
        .unwrap()
        .as_int64()
        .unwrap();
    assert!(filter_vals.iter().all(|&v| v < 30));
    // The filtered result is a subset of the unfiltered result.
    assert!(filtered.table.num_rows() <= unfiltered.table.num_rows());
}

#[test]
fn strategies_produce_identical_threshold_results_end_to_end() {
    let w = workload();
    let threshold = SimilarityPredicate::Threshold(0.85);
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("outer_rel"),
        LogicalPlan::scan("inner_rel"),
        "word",
        "word",
        "fasttext",
        threshold,
    );
    let mut results = Vec::new();
    for strategy in [
        JoinStrategy::PrefetchNlj(NljConfig::default()),
        JoinStrategy::PrefetchNlj(NljConfig::default().with_threads(3)),
        JoinStrategy::Tensor(TensorJoinConfig::default()),
        JoinStrategy::Tensor(TensorJoinConfig::default().with_threads(2)),
    ] {
        let mut session = session_with(&w, trained_model(42));
        session.with_strategy(strategy);
        let report = session.execute(&plan).unwrap();
        let mut rows: Vec<(i64, i64)> = report
            .table
            .column_by_name("l_id")
            .unwrap()
            .as_int64()
            .unwrap()
            .iter()
            .copied()
            .zip(
                report
                    .table
                    .column_by_name("r_id")
                    .unwrap()
                    .as_int64()
                    .unwrap()
                    .iter()
                    .copied(),
            )
            .collect();
        rows.sort();
        results.push(rows);
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn projection_over_join_output() {
    let w = workload();
    let session = session_with(&w, trained_model(42));
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("outer_rel"),
        LogicalPlan::scan("inner_rel"),
        "word",
        "word",
        "fasttext",
        SimilarityPredicate::TopK(2),
    )
    .project(&["l_word", "r_word", "similarity"]);
    let report = session.execute(&plan).unwrap();
    assert_eq!(report.table.num_columns(), 3);
    assert_eq!(report.table.num_rows(), w.outer.num_rows() * 2);
}

#[test]
fn auto_strategy_small_inputs_prefers_scan_and_completes() {
    let w = workload();
    let session = session_with(&w, trained_model(42));
    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("outer_rel"),
        LogicalPlan::scan("inner_rel"),
        "word",
        "word",
        "fasttext",
        SimilarityPredicate::TopK(1),
    );
    let report = session.execute(&plan).unwrap();
    assert_eq!(report.access_path, Some(cej_core::AccessPath::TensorScan));
    assert_eq!(report.table.num_rows(), w.outer.num_rows());
}
