//! Cost-model validation: the operators' *measured* model-invocation counts
//! and work counters must match the closed-form formulas of Section IV, and
//! the access-path advisor's qualitative decisions must agree with measured
//! operator behaviour.

use cej_core::{
    AccessPathAdvisor, AccessPathQuery, CostModel, NaiveNlJoin, NljConfig, PrefetchNlJoin,
    TensorJoin, TensorJoinConfig,
};
use cej_embedding::{CachedEmbedder, FastTextConfig, FastTextModel};
use cej_relational::SimilarityPredicate;
use cej_storage::SelectionBitmap;
use cej_vector::BufferBudget;
use cej_workload::{uniform_matrix, JoinWorkload, RelationSpec};

fn model() -> FastTextModel {
    FastTextModel::new(FastTextConfig {
        dim: 16,
        buckets: 2_000,
        ..FastTextConfig::default()
    })
    .unwrap()
}

fn strings(n: usize, prefix: &str) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

#[test]
fn naive_join_model_calls_match_quadratic_formula() {
    for (r, s) in [(3usize, 4usize), (5, 5), (8, 2)] {
        let counted = CachedEmbedder::uncached(model());
        NaiveNlJoin::new()
            .join(
                &counted,
                &strings(r, "l"),
                &strings(s, "r"),
                SimilarityPredicate::Threshold(0.9),
            )
            .unwrap();
        // the operator embeds both tuples of every pair
        assert_eq!(
            counted.stats().model_calls,
            2 * CostModel::naive_model_calls(r, s)
        );
    }
}

#[test]
fn prefetch_join_model_calls_match_linear_formula() {
    for (r, s) in [(3usize, 4usize), (10, 7), (1, 20)] {
        let counted = CachedEmbedder::new(model());
        PrefetchNlJoin::new(NljConfig::default())
            .join(
                &counted,
                &strings(r, "l"),
                &strings(s, "r"),
                SimilarityPredicate::Threshold(0.9),
            )
            .unwrap();
        assert_eq!(
            counted.stats().model_calls,
            CostModel::prefetch_model_calls(r, s)
        );

        let counted_tensor = CachedEmbedder::new(model());
        TensorJoin::new(TensorJoinConfig::default())
            .join(
                &counted_tensor,
                &strings(r, "l"),
                &strings(s, "r"),
                SimilarityPredicate::Threshold(0.9),
            )
            .unwrap();
        assert_eq!(
            counted_tensor.stats().model_calls,
            CostModel::prefetch_model_calls(r, s)
        );
    }
}

#[test]
fn naive_vs_prefetch_speedup_grows_with_input_like_the_cost_model_predicts() {
    // Wall-clock is noisy in CI, so the validation uses the deterministic
    // work counters: model calls (naive quadratic vs prefetch linear).
    let cost = CostModel::default();
    let small = (4usize, 4usize);
    let large = (12usize, 12usize);
    for (r, s) in [small, large] {
        let naive_calls = 2 * CostModel::naive_model_calls(r, s);
        let prefetch_calls = CostModel::prefetch_model_calls(r, s);
        let measured_ratio = naive_calls as f64 / prefetch_calls as f64;
        let predicted_ratio = cost.e_nlj_naive(r, s) / cost.e_nlj_prefetch(r, s);
        // the measured model-call ratio should grow at least as fast as the
        // predicted cost ratio's trend (both roughly min(r, s))
        assert!(measured_ratio >= predicted_ratio * 0.5);
    }
    let ratio_small = 2.0 * CostModel::naive_model_calls(small.0, small.1) as f64
        / CostModel::prefetch_model_calls(small.0, small.1) as f64;
    let ratio_large = 2.0 * CostModel::naive_model_calls(large.0, large.1) as f64
        / CostModel::prefetch_model_calls(large.0, large.1) as f64;
    assert!(ratio_large > ratio_small);
}

#[test]
fn tensor_join_work_counter_matches_cardinality_product() {
    let w = JoinWorkload::generate(
        RelationSpec {
            rows: 18,
            clusters: 6,
            variants_per_cluster: 3,
        },
        RelationSpec {
            rows: 27,
            clusters: 6,
            variants_per_cluster: 3,
        },
        3,
    );
    let left = w
        .outer
        .column_by_name("word")
        .unwrap()
        .as_utf8()
        .unwrap()
        .to_vec();
    let right = w
        .inner
        .column_by_name("word")
        .unwrap()
        .as_utf8()
        .unwrap()
        .to_vec();
    let result = TensorJoin::new(TensorJoinConfig::default())
        .join(&model(), &left, &right, SimilarityPredicate::Threshold(0.9))
        .unwrap();
    assert_eq!(result.stats.pairs_compared, 18 * 27);
}

#[test]
fn scan_work_scales_with_selectivity_probe_style_does_not() {
    // The core premise of the access-path decision, checked against the
    // tensor join's own counters.
    let left = uniform_matrix(20, 16, 1, true);
    let right = uniform_matrix(500, 16, 2, true);
    let full = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices(&left, &right, SimilarityPredicate::TopK(1))
        .unwrap();
    let bitmap = SelectionBitmap::from_indices(500, &(0..100).collect::<Vec<_>>());
    let fifth = TensorJoin::new(TensorJoinConfig::default())
        .join_matrices_filtered(
            &left,
            &right,
            SimilarityPredicate::TopK(1),
            None,
            Some(&bitmap),
        )
        .unwrap();
    assert_eq!(full.stats.pairs_compared, 20 * 500);
    assert_eq!(fifth.stats.pairs_compared, 20 * 100);
}

#[test]
fn advisor_decisions_match_measured_work_ordering() {
    // For a workload where the advisor predicts the scan wins, the scan must
    // indeed do less "work" (pair comparisons vs probe distance
    // computations × calibration) — a qualitative sanity check that the
    // advisor's constants are not absurd.
    let advisor = AccessPathAdvisor::default();
    let scan_query = AccessPathQuery {
        outer_rows: 50,
        inner_rows: 2_000,
        inner_selectivity: 0.1,
        predicate: SimilarityPredicate::TopK(1),
        index_available: true,
    };
    assert_eq!(
        advisor.choose(&scan_query),
        cej_core::AccessPath::TensorScan
    );
    assert!(advisor.scan_cost(&scan_query) < advisor.probe_cost(&scan_query));

    let probe_query = AccessPathQuery {
        outer_rows: 50,
        inner_rows: 5_000_000,
        inner_selectivity: 1.0,
        predicate: SimilarityPredicate::TopK(1),
        index_available: true,
    };
    assert_eq!(
        advisor.choose(&probe_query),
        cej_core::AccessPath::IndexProbe
    );
    assert!(advisor.probe_cost(&probe_query) < advisor.scan_cost(&probe_query));
}

#[test]
fn buffer_budget_bounds_measured_intermediate_state() {
    // Figure 13's memory accounting: the reported peak intermediate buffer
    // must respect the configured budget (plus the unavoidable input
    // matrices themselves).
    let left = uniform_matrix(200, 32, 5, true);
    let right = uniform_matrix(300, 32, 6, true);
    let inputs_bytes = left.bytes() + right.bytes();

    let unlimited =
        TensorJoin::new(TensorJoinConfig::default().with_budget(BufferBudget::unlimited()))
            .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.5))
            .unwrap();
    let budget = BufferBudget::from_bytes(16 * 1024);
    let bounded = TensorJoin::new(TensorJoinConfig::default().with_budget(budget))
        .join_matrices(&left, &right, SimilarityPredicate::Threshold(0.5))
        .unwrap();

    let unlimited_block = unlimited.stats.peak_buffer_bytes - inputs_bytes;
    let bounded_block = bounded.stats.peak_buffer_bytes - inputs_bytes;
    assert_eq!(unlimited_block, 200 * 300 * 4);
    assert!(bounded_block <= budget.bytes);
    assert!(bounded.stats.blocks_computed > unlimited.stats.blocks_computed);
}
