//! Integration tests for the observability substrate: span-tree shape of a
//! traced multi-join query under both executors, byte-identity of traced
//! vs untraced execution across all four join strategies, registry
//! concurrency through the public API, and slow-query capture.

use cej_core::{
    ContextJoinSession, ExecMode, IndexJoinConfig, JoinStrategy, NljConfig, TensorJoinConfig,
};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_index::HnswParams;
use cej_obs::Trace;
use cej_relational::{LogicalPlan, SimilarityPredicate};
use cej_workload::{JoinWorkload, RelationSpec};
use proptest::prelude::*;

/// Star session for the span-tree tests: fact ⋈ dimension feeding a
/// similarity join, so the trace covers HashJoin, ejoin, and scan spans.
fn star_session() -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "photos",
        cej_storage::TableBuilder::new()
            .int64("id", (0..12).collect())
            .int64("owner_fk", (0..12).map(|i| (i % 3 + 1) * 100).collect())
            .utf8(
                "caption",
                (0..12).map(|i| format!("caption topic {i}")).collect(),
            )
            .build()
            .expect("photos table"),
    );
    s.register_table(
        "owners",
        cej_storage::TableBuilder::new()
            .int64("owner_id", vec![100, 200, 300])
            .utf8("region", vec!["west".into(), "east".into(), "north".into()])
            .build()
            .expect("owners table"),
    );
    s.register_table(
        "products",
        cej_storage::TableBuilder::new()
            .int64("product_id", vec![1, 2, 3])
            .utf8(
                "title",
                vec![
                    "caption topic 1".into(),
                    "caption topic 7".into(),
                    "something else".into(),
                ],
            )
            .build()
            .expect("products table"),
    );
    s.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .expect("model construction"),
    );
    s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    s
}

/// `(photos ⋈ owners) ⋈_sim products`, top-1.
fn multi_join_plan() -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("owners"),
            "owner_fk",
            "owner_id",
        ),
        LogicalPlan::scan("products"),
        "caption",
        "title",
        "ft",
        SimilarityPredicate::TopK(1),
    )
}

#[test]
fn traced_multi_join_records_a_complete_span_tree_under_both_executors() {
    let s = star_session();
    let prepared = s.prepare(&multi_join_plan()).expect("prepare");
    for mode in [ExecMode::Row, ExecMode::Batch { batch_rows: 4 }] {
        let trace = Trace::forced("integration multi-join");
        let report = prepared
            .run_traced_with(&trace, cej_exec::ExecPool::new(2), mode)
            .expect("traced run");
        assert!(report.table.num_rows() > 0, "query produced no rows");
        let trace_id = trace.finish().expect("forced trace has an id");
        assert_eq!(report.trace_id, Some(trace_id));

        let finished = cej_obs::trace_by_id(trace_id).expect("trace in the capture ring");
        assert_eq!(finished.label, "integration multi-join");
        assert_ne!(finished.fingerprint, 0, "plan fingerprint must be set");

        let position = |name: &str| {
            finished
                .spans
                .iter()
                .position(|s| s.name == name)
                .unwrap_or_else(|| {
                    panic!(
                        "span `{name}` missing under {mode:?}; got {:?}",
                        finished
                            .spans
                            .iter()
                            .map(|s| s.name.as_str())
                            .collect::<Vec<_>>()
                    )
                })
        };
        // the planning phases and the execute phase hang off the root
        let root = position("integration multi-join");
        for phase in [
            "phase.rewrite",
            "phase.order",
            "phase.lower",
            "phase.execute",
        ] {
            assert_eq!(finished.spans[position(phase)].parent, Some(root as u32));
        }
        // operator spans mirror the physical plan's shape: the ejoin under
        // the execute phase, the hash join under the ejoin, the scans under
        // their joins
        let execute = position("phase.execute");
        let ejoin = position("TensorJoin caption~title");
        let hash = position("HashJoin owner_fk=owner_id");
        assert_eq!(finished.spans[ejoin].parent, Some(execute as u32));
        assert_eq!(finished.spans[hash].parent, Some(ejoin as u32));
        assert_eq!(
            finished.spans[position("TableScan photos")].parent,
            Some(hash as u32)
        );
        assert_eq!(
            finished.spans[position("TableScan owners")].parent,
            Some(hash as u32)
        );
        assert_eq!(
            finished.spans[position("TableScan products")].parent,
            Some(ejoin as u32)
        );
        // the execute span carries the row-count attribute
        let rows_attr = finished.spans[execute]
            .attrs
            .iter()
            .find(|(key, _)| *key == "rows")
            .unwrap_or_else(|| panic!("no rows attr on phase.execute: {:?}", finished.spans));
        assert_eq!(rows_attr.1.to_string(), report.table.num_rows().to_string());
        // and the rendered tree indents children under their parents
        let rendered = finished.render();
        assert!(
            rendered.contains("  phase.execute") && rendered.contains("    TensorJoin"),
            "unexpected rendering:\n{rendered}"
        );
    }
}

#[test]
fn registry_counters_and_histograms_sum_exactly_under_parallel_load() {
    let registry = cej_obs::Registry::new();
    let counter = registry.counter("it_ops_total", "operations");
    let histogram = registry.histogram("it_latency_us", "latencies");
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let counter = counter.clone();
        let histogram = histogram.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..10_000u64 {
                counter.inc();
                histogram.observe(t * 10_000 + i);
            }
        }));
    }
    for handle in handles {
        handle.join().expect("incrementer thread");
    }
    assert_eq!(counter.get(), 80_000);
    assert_eq!(registry.value("it_ops_total"), Some(80_000));
    assert_eq!(histogram.count(), 80_000);
    let rendered = registry.render();
    assert!(rendered.contains("it_ops_total 80000"), "{rendered}");
    assert!(rendered.contains("it_latency_us_count 80000"), "{rendered}");
}

#[test]
fn slow_query_threshold_captures_untraced_runs() {
    let s = star_session();
    let prepared = s.prepare(&multi_join_plan()).expect("prepare");
    // threshold 0: every untraced query counts as slow
    cej_obs::set_slow_query_ms(Some(0));
    let before = cej_obs::slow_query_count();
    let report = prepared
        .run_traced_with(
            &Trace::disabled(),
            cej_exec::ExecPool::new(1),
            ExecMode::default(),
        )
        .expect("untraced run");
    cej_obs::set_slow_query_ms(None);
    assert!(
        cej_obs::slow_query_count() > before,
        "slow-query log did not grow"
    );
    // the post-hoc forced trace is reachable through the report
    let trace_id = report.trace_id.expect("slow query captured a trace");
    let finished = cej_obs::trace_by_id(trace_id).expect("trace in the ring");
    assert_eq!(finished.label, "slow query");
    assert!(
        finished.spans.iter().any(|s| s.name == "phase.execute"),
        "{:?}",
        finished.spans
    );
}

fn workload_session(
    outer_rows: usize,
    inner_rows: usize,
    strategy: JoinStrategy,
) -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(outer_rows),
        RelationSpec::with_rows(inner_rows),
        11,
    );
    let mut s = ContextJoinSession::new();
    s.register_table("r", workload.outer.clone());
    s.register_table("s", workload.inner.clone());
    s.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 2_000,
            ..FastTextConfig::default()
        })
        .expect("model construction"),
    );
    s.with_strategy(strategy);
    s
}

fn strategy_for(idx: usize) -> JoinStrategy {
    match idx {
        0 => JoinStrategy::NaiveNlj,
        1 => JoinStrategy::PrefetchNlj(NljConfig::default()),
        2 => JoinStrategy::Tensor(TensorJoinConfig::default()),
        _ => JoinStrategy::Index(IndexJoinConfig {
            params: HnswParams::tiny(),
            range_probe_k: 3,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing is pure observation: for every join strategy, executing the
    /// same prepared query with tracing disabled and under a forced trace
    /// produces bit-identical tables and identical operator actuals.
    #[test]
    fn traced_execution_is_byte_identical_to_untraced(
        outer_rows in 1usize..8,
        inner_rows in 1usize..24,
        strategy_idx in 0usize..4,
        use_topk in any::<bool>(),
        k in 1usize..3,
        threshold in -0.5f32..0.9,
    ) {
        let s = workload_session(outer_rows, inner_rows, strategy_for(strategy_idx));
        // the naive E-NLJ only supports threshold predicates
        let predicate = if use_topk && strategy_idx != 0 {
            SimilarityPredicate::TopK(k)
        } else {
            SimilarityPredicate::Threshold(threshold)
        };
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "word",
            "word",
            "ft",
            predicate,
        );
        let prepared = s.prepare(&plan).expect("prepare");
        let pool = cej_exec::ExecPool::new(2);
        let untraced = prepared
            .run_traced_with(&Trace::disabled(), pool, ExecMode::default())
            .expect("untraced run");
        let trace = Trace::forced("byte-identity probe");
        let traced = prepared
            .run_traced_with(&trace, pool, ExecMode::default())
            .expect("traced run");
        trace.finish();

        prop_assert!(untraced.trace_id.is_none());
        prop_assert!(traced.trace_id.is_some());
        prop_assert_eq!(&untraced.table, &traced.table);
        prop_assert_eq!(&untraced.operator_rows, &traced.operator_rows);
        prop_assert_eq!(untraced.matched_pairs, traced.matched_pairs);
    }
}
