//! Online data cleaning and integration (paper Section II-A-2).
//!
//! A "dirty" feed of product mentions — misspellings, plural forms, synonyms
//! — is integrated against a clean reference catalogue *without any manual
//! rule writing*: a FastText-style model trained on a small synthetic corpus
//! provides the notion of similarity, and the context-enhanced join does the
//! matching on the fly.
//!
//! Run with:
//! ```sh
//! cargo run --release --example data_cleaning
//! ```

use cej_core::{NljConfig, PrefetchNlJoin};
use cej_embedding::{train_on_corpus, FastTextConfig, FastTextModel, TrainingConfig};
use cej_relational::SimilarityPredicate;
use cej_workload::{CorpusGenerator, WordGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the model on a synthetic synonym-cluster corpus so that
    //    cluster members (e.g. "barbecue", "bbq", "grilling") embed nearby.
    let mut words = WordGenerator::new(42);
    let clusters = words.clusters(10, 6);
    let corpus = CorpusGenerator::new(7)
        .with_noise(0.05)
        .generate(&clusters, 400);
    let mut model = FastTextModel::new(FastTextConfig {
        dim: 64,
        buckets: 50_000,
        ..FastTextConfig::default()
    })?;
    let trained_words = train_on_corpus(&mut model, &corpus, &TrainingConfig::default())?;
    println!("trained vectors for {trained_words} vocabulary words");

    // 2. The clean reference catalogue: one canonical name per concept.
    let catalogue: Vec<String> = clusters.iter().map(|c| c.base.clone()).collect();

    // 3. A dirty feed sampled from the same clusters (misspellings, plurals,
    //    synonyms) — the ground-truth cluster of each entry is known, so we
    //    can measure how well the join cleans the data.
    let (dirty_feed, truth) = words.sample_strings(&clusters, 60);

    // 4. Context-enhanced join: dirty feed ⋈ catalogue, top-1 per entry.
    let join = PrefetchNlJoin::new(NljConfig::default().with_threads(2));
    let result = join.join(
        &model,
        &dirty_feed,
        &catalogue,
        SimilarityPredicate::TopK(1),
    )?;

    // 5. Report the cleaned assignments and the accuracy against ground truth.
    let mut correct = 0usize;
    println!(
        "\n{:<18} -> {:<14} {:>6}",
        "dirty entry", "canonical", "sim"
    );
    println!("{}", "-".repeat(44));
    for pair in &result.pairs {
        let ok = pair.right == truth[pair.left];
        correct += usize::from(ok);
        if pair.left < 15 {
            println!(
                "{:<18} -> {:<14} {:>6.3} {}",
                dirty_feed[pair.left],
                catalogue[pair.right],
                pair.score,
                if ok { "" } else { "  (MISMATCH)" }
            );
        }
    }
    println!("{}", "-".repeat(44));
    println!(
        "cleaned {} entries, {} correct ({:.1}%), {} model calls",
        result.len(),
        correct,
        100.0 * correct as f64 / result.len() as f64,
        result.stats.model_calls,
    );
    Ok(())
}
