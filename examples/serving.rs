//! Serving: a multi-client TCP front end over one shared session.
//!
//! Boots a `cej-server` on a loopback port, then acts as three clients of
//! it: one prepares and repeatedly runs a semantic join (plan-once /
//! execute-many — the warm runs reuse the shared embedding cache), one
//! re-binds the similarity threshold without replanning, and one sends
//! ad-hoc probe text through a prepared probe template (the "user query
//! string" path).  Finishes with the server's `STATS` line: admission
//! counters, latency percentiles, and the persistent worker pool's
//! task/steal metrics.
//!
//! Run with:
//! ```sh
//! cargo run --release --example serving
//! ```

use cej::core::{ContextJoinSession, JoinStrategy, TensorJoinConfig};
use cej::embedding::{FastTextConfig, FastTextModel};
use cej::server::{Client, Response, Server, ServerConfig};
use cej::storage::TableBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A session with a photo table, a product table, and a model —
    //    exactly the quickstart setup, but served.
    let mut session = ContextJoinSession::new();
    session.register_table(
        "photos",
        TableBuilder::new()
            .int64("photo_id", vec![1, 2, 3, 4])
            .utf8(
                "caption",
                vec![
                    "grilling burgers on the barbecue".into(),
                    "laptop on a conference table".into(),
                    "sunset over the beach".into(),
                    "database systems lecture notes".into(),
                ],
            )
            .build()?,
    );
    session.register_table(
        "products",
        TableBuilder::new()
            .int64("product_id", vec![10, 20, 30])
            .utf8(
                "title",
                vec![
                    "charcoal barbecue grill".into(),
                    "ergonomic laptop stand".into(),
                    "intro to database management".into(),
                ],
            )
            .build()?,
    );
    session.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 64,
            ..FastTextConfig::default()
        })?,
    );
    session.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));

    // 2. Serve it.
    let mut server = Server::start(session, ServerConfig::default())?;
    println!("serving on {}", server.local_addr());

    // 3. Client one: prepare once, run many (warm runs pay zero model calls).
    let mut client = Client::connect(server.local_addr())?;
    client.request("PREPARE match JOIN photos.caption products.title MODEL ft TOPK 1")?;
    for round in 1..=3 {
        if let Response::Rows { lines, checksum } = client.request("RUN match")? {
            println!(
                "round {round}: {} matched rows (checksum {checksum:016x})",
                lines.len() - 1
            );
            if round == 1 {
                for line in &lines[1..] {
                    println!("  {line}");
                }
            }
        }
    }

    // 4. Client two: a threshold join, re-bound without replanning.
    let mut binder = Client::connect(server.local_addr())?;
    binder.request("PREPARE sim JOIN photos.caption products.title MODEL ft SIM 0.9")?;
    binder.request("BIND sim simlo 0.3")?;
    for id in ["sim", "simlo"] {
        if let Response::Rows { lines, .. } = binder.request(&format!("RUN {id}"))? {
            println!("threshold statement {id}: {} pairs", lines.len() - 1);
        }
    }

    // 5. Client three: ad-hoc probe text through a prepared template.
    let mut prober = Client::connect(server.local_addr())?;
    prober.request("PREPARE find PROBE products.title MODEL ft TOPK 2")?;
    if let Response::Rows { lines, .. } =
        prober.request("PROBE find cast iron grill for the garden")?
    {
        println!("probe results:");
        for line in &lines[1..] {
            println!("  {line}");
        }
    }

    // 6. What the server saw.
    if let Response::Ok(stats) = prober.request("STATS")? {
        println!("server stats: {stats}");
    }
    server.shutdown();
    println!("server stopped cleanly");
    Ok(())
}
