//! Quickstart: a declarative context-enhanced join between two tables.
//!
//! A photo table (captions + dates) is joined against a product catalogue on
//! *semantic similarity of the strings*, with an ordinary relational filter
//! on the date column.  The session optimises the plan (pushing the date
//! filter below the embedding operator), prefetches embeddings, picks a
//! physical join operator, and returns a joined table.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cej_core::{sim_gte, ContextJoinSession, JoinStrategy, TensorJoinConfig};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::{col, lit_date};
use cej_storage::{scalar::date, TableBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The embedding model (the paper uses a 100-D FastText model).
    let model = FastTextModel::new(FastTextConfig {
        dim: 100,
        ..FastTextConfig::default()
    })?;

    // 2. Two relational tables with a context-rich string column.
    let photos = TableBuilder::new()
        .int64("photo_id", vec![1, 2, 3, 4, 5])
        .utf8(
            "caption",
            vec![
                "barbecue party in the garden".into(),
                "postgres database migration".into(),
                "new laptop unboxing".into(),
                "family vacation at the beach".into(),
                "grilling bbq ribs".into(),
            ],
        )
        .date(
            "taken",
            vec![
                date::parse_iso("2023-01-02")?,
                date::parse_iso("2023-12-01")?,
                date::parse_iso("2023-12-05")?,
                date::parse_iso("2023-06-15")?,
                date::parse_iso("2023-12-20")?,
            ],
        )
        .build()?;

    let products = TableBuilder::new()
        .int64("product_id", vec![10, 20, 30, 40])
        .utf8(
            "title",
            vec![
                "charcoal barbecues and grills".into(),
                "postgresql administration handbook".into(),
                "lightweight notebooks and laptops".into(),
                "beach vacation packages".into(),
            ],
        )
        .build()?;

    // 3. Register everything in a session.
    let mut session = ContextJoinSession::new();
    session.register_table("photos", photos);
    session.register_table("products", products);
    session.register_model("fasttext", model);
    session.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));

    // 4. A declarative query through the fluent builder: filter photos taken
    //    after Dec 2, join captions against product titles on cosine
    //    similarity >= 0.2.  The bundled model is untrained (seeded hash
    //    n-gram vectors), so absolute cosines run much lower than a
    //    corpus-trained FastText: related sentence pairs here score 0.23-0.38
    //    while unrelated pairs stay below 0.18.  A trained model (see the
    //    data_cleaning example) supports the paper-style 0.5+ thresholds.
    let plan = session
        .query("photos")
        .select(col("taken").gt(lit_date("2023-12-02")?))
        .ejoin("products", ("caption", "title"), "fasttext", sim_gte(0.2))
        .build();

    println!("== Logical plan (as written) ==\n{plan}");

    // 5. Plan once (optimise + lower to a physical plan), inspect the
    //    decision with explain(), then execute.  Registration ran an ANALYZE
    //    pass, so the date filter's cardinality comes from a histogram (2 of
    //    5 photos are after Dec 2 — sel 0.400), not a guessed constant.
    //    `prepared.run()`
    //    can be called again and again — warm runs reuse the optimised plan,
    //    the memoised embeddings, and (for index joins) the persistent HNSW
    //    index.  `session.execute(&plan)` is the one-shot equivalent.
    let prepared = session.prepare(&plan)?;
    println!(
        "== Physical plan (chosen before execution) ==\n{}",
        prepared.explain()
    );

    // 6. EXPLAIN ANALYZE: execute and render estimated vs actual rows per
    //    operator, with q-errors — the feedback loop showing whether the
    //    statistics the plan was costed with still hold.
    let analyzed = prepared.explain_analyze()?;
    println!("== EXPLAIN ANALYZE (estimated vs actual rows) ==\n{analyzed}");
    let report = analyzed.report;
    println!(
        "== Optimised plan (date filter pushed below the join) ==\n{}",
        report.optimized_plan
    );

    // 7. Inspect the result.
    println!(
        "== Result: {} matched pairs, {} model calls, access path {:?} ==",
        report.matched_pairs, report.embedding_stats.model_calls, report.access_path
    );
    let table = &report.table;
    let captions = table.column_by_name("l_caption")?.as_utf8()?;
    let titles = table.column_by_name("r_title")?.as_utf8()?;
    let scores = table.column_by_name("similarity")?.as_float64()?;
    for i in 0..table.num_rows() {
        println!(
            "  {:<35} ~ {:<40} (sim {:.3})",
            captions[i], titles[i], scores[i]
        );
    }
    Ok(())
}
