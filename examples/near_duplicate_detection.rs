//! Near-duplicate detection against a reference database (paper
//! Section II-A-3): batched similarity search as a join.
//!
//! A stream of unlabeled items (here: embedding vectors standing in for any
//! modality — images, documents, audio) is checked against a labelled
//! reference collection.  Doing this one query at a time is a vector search;
//! batching all queries is exactly a context-enhanced join, which lets the
//! engine choose between the exhaustive tensor scan and an HNSW index probe.
//!
//! Run with:
//! ```sh
//! cargo run --release --example near_duplicate_detection
//! ```
//!
//! Cardinalities honour the global `CEJ_SCALE` knob (e.g. `CEJ_SCALE=0.01`
//! for a fast smoke run).

use std::time::Instant;

use cej_core::{
    AccessPath, AccessPathAdvisor, AccessPathQuery, IndexJoin, IndexJoinConfig, TensorJoin,
    TensorJoinConfig,
};
use cej_index::HnswParams;
use cej_relational::SimilarityPredicate;
use cej_workload::{clustered_matrix, scaled};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reference collection: 20k vectors in 64-D, 50 clusters (e.g. known
    // documents); incoming batch: 200 unlabeled items drawn from the same
    // distribution.
    let reference_rows = scaled(20_000);
    let incoming_rows = scaled(200);
    let (reference, _) = clustered_matrix(reference_rows, 64, 50, 0.05, 1);
    let (incoming, _) = clustered_matrix(incoming_rows, 64, 50, 0.05, 2);
    let k = 3;
    println!("reference {reference_rows} x incoming {incoming_rows} (CEJ_SCALE-adjusted)");

    // 1. Ask the cost-based advisor which access path it would pick.
    let advisor = AccessPathAdvisor::default();
    let query = AccessPathQuery {
        outer_rows: incoming.rows(),
        inner_rows: reference.rows(),
        inner_selectivity: 1.0,
        predicate: SimilarityPredicate::TopK(k),
        index_available: true,
    };
    println!(
        "advisor: scan cost {:.2e}, probe cost {:.2e} -> {}",
        advisor.scan_cost(&query),
        advisor.probe_cost(&query),
        advisor.choose(&query).label()
    );

    // 2. Run both physical operators and compare.
    let start = Instant::now();
    let scan = TensorJoin::new(TensorJoinConfig::default()).join_matrices(
        &incoming,
        &reference,
        SimilarityPredicate::TopK(k),
    )?;
    let scan_time = start.elapsed();

    let index_join = IndexJoin::new(IndexJoinConfig {
        params: HnswParams::low_recall(),
        range_probe_k: k,
    });
    let build_start = Instant::now();
    let index = index_join.build_index(&reference)?;
    let build_time = build_start.elapsed();
    let probe_start = Instant::now();
    let probed =
        index_join.probe_join(&incoming, &index, SimilarityPredicate::TopK(k), None, None)?;
    let probe_time = probe_start.elapsed();

    // 3. Recall of the approximate index join against the exact scan.
    let exact: std::collections::HashSet<(usize, usize)> =
        scan.pair_indices().into_iter().collect();
    let hits = probed
        .pair_indices()
        .iter()
        .filter(|p| exact.contains(p))
        .count();
    let recall = hits as f64 / exact.len().max(1) as f64;

    println!(
        "\n{:<22} {:>12} {:>12} {:>10}",
        "operator", "pairs", "time", "recall"
    );
    println!("{}", "-".repeat(60));
    println!(
        "{:<22} {:>12} {:>10.1?} {:>10}",
        AccessPath::TensorScan.label(),
        scan.len(),
        scan_time,
        "exact"
    );
    println!(
        "{:<22} {:>12} {:>10.1?} {:>9.1}%",
        AccessPath::IndexProbe.label(),
        probed.len(),
        probe_time,
        recall * 100.0
    );
    println!(
        "(index build time: {build_time:.1?}, {} graph bytes)",
        index.memory_bytes()
    );
    println!(
        "(probe cost: {} distance computations across {} probes)",
        probed.stats.probe_stats.distance_computations,
        incoming.rows()
    );
    Ok(())
}
