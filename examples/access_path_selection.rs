//! Scan-vs-probe access path selection across selectivities (paper
//! Section VI-E, Figures 15-17, in miniature).
//!
//! A batch of probe vectors joins a large reference collection while a
//! relational predicate on the reference side sweeps from 10 % to 100 %
//! selectivity.  At each point the example measures the pre-filtered tensor
//! scan and the pre-filtered HNSW index probe, and shows what the cost-based
//! advisor would have chosen.
//!
//! Run with:
//! ```sh
//! cargo run --release --example access_path_selection
//! ```
//!
//! Cardinalities honour the global `CEJ_SCALE` knob (e.g. `CEJ_SCALE=0.01`
//! for a fast smoke run).

use std::time::Instant;

use cej_core::{
    AccessPathAdvisor, AccessPathQuery, IndexJoin, IndexJoinConfig, TensorJoin, TensorJoinConfig,
};
use cej_index::HnswParams;
use cej_relational::SimilarityPredicate;
use cej_storage::SelectionBitmap;
use cej_workload::{clustered_matrix, scaled, uniform_matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inner_rows = scaled(20_000);
    let outer_rows = scaled(100);
    let dim = 64;
    let k = 1;
    println!("inner {inner_rows} x outer {outer_rows} (CEJ_SCALE-adjusted)");

    let (inner, _) = clustered_matrix(inner_rows, dim, 64, 0.05, 3);
    let outer = uniform_matrix(outer_rows, dim, 4, true);
    // The relational filter column of the inner relation: uniform [0, 100).
    let mut rng = StdRng::seed_from_u64(5);
    let filter_col: Vec<i64> = (0..inner_rows).map(|_| rng.gen_range(0..100)).collect();

    let tensor = TensorJoin::new(TensorJoinConfig::default());
    let index_join = IndexJoin::new(IndexJoinConfig {
        params: HnswParams::low_recall(),
        range_probe_k: k,
    });
    let index = index_join.build_index(&inner)?;
    let advisor = AccessPathAdvisor::default();

    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "selectivity", "scan time", "probe time", "advisor", "measured best"
    );
    for selectivity in [10i64, 25, 50, 75, 100] {
        let bitmap =
            SelectionBitmap::from_bools(filter_col.iter().map(|&v| v < selectivity).collect());

        let start = Instant::now();
        let scan = tensor.join_matrices_filtered(
            &outer,
            &inner,
            SimilarityPredicate::TopK(k),
            None,
            Some(&bitmap),
        )?;
        let scan_time = start.elapsed();

        let start = Instant::now();
        let probed = index_join.probe_join(
            &outer,
            &index,
            SimilarityPredicate::TopK(k),
            None,
            Some(&bitmap),
        )?;
        let probe_time = start.elapsed();

        let query = AccessPathQuery {
            outer_rows,
            inner_rows,
            inner_selectivity: selectivity as f64 / 100.0,
            predicate: SimilarityPredicate::TopK(k),
            index_available: true,
        };
        let choice = advisor.choose(&query);
        let best = if scan_time <= probe_time {
            "tensor-scan"
        } else {
            "index-probe"
        };
        println!(
            "{:>11}% {:>14.2?} {:>14.2?} {:>14} {:>14}",
            selectivity,
            scan_time,
            probe_time,
            choice.label(),
            best
        );
        // keep the optimiser honest: both operators return k pairs per probe
        assert!(scan.len() <= outer_rows * k);
        assert!(probed.len() <= outer_rows * k);
    }
    println!("\n(note: absolute crossover points depend on hardware; the paper reports");
    println!(" 20-30% for top-1 on a 48-thread server against Milvus/HNSW)");
    Ok(())
}
